"""Section 6.1: context-switch costs.

Paper-reported, on the 200 MHz MAP1000:

* voluntary switch:   min 11.5, median 18.3, mean 20.7 us
* involuntary switch: min 16.9, median 28.2, mean 35.0 us
* MPEG + AC3 scenario: ~300 switches/s, ~0.7 % of the CPU

The cost model is calibrated to the paper's statistics by construction;
this bench runs the A/V scenario end-to-end and regenerates the summary
table from the *trace* (sampled costs as actually incurred), then
verifies the derived overhead claim.
"""

import pytest

from repro import units
from repro.bench.workloads import run_av_scenario
from repro.metrics import summarize_switches
from repro.metrics.analysis import overhead_fraction, switches_per_second
from repro.sim.trace import SwitchKind
from repro.viz import format_table

PAPER = {
    SwitchKind.VOLUNTARY: (11.5, 18.3, 20.7),
    SwitchKind.INVOLUNTARY: (16.9, 28.2, 35.0),
}


def test_sec61_context_switch_costs(benchmark, report):
    rd = benchmark.pedantic(run_av_scenario, rounds=1, iterations=1)
    elapsed = units.sec_to_ticks(2)

    rows = []
    for kind in (SwitchKind.VOLUNTARY, SwitchKind.INVOLUNTARY):
        stats = summarize_switches(rd.trace, kind)
        paper_min, paper_med, paper_mean = PAPER[kind]
        assert stats.count > 20
        assert stats.min_us >= paper_min - 0.5
        assert stats.median_us == pytest.approx(paper_med, rel=0.25)
        assert stats.mean_us == pytest.approx(paper_mean, rel=0.25)
        rows.append(
            [
                kind.value,
                stats.count,
                f"{stats.min_us:.1f} ({paper_min})",
                f"{stats.median_us:.1f} ({paper_med})",
                f"{stats.mean_us:.1f} ({paper_mean})",
            ]
        )

    rate = switches_per_second(rd.trace, 0, elapsed)
    frac = overhead_fraction(rd.trace, 0, elapsed)
    assert 100 <= rate <= 1200  # paper estimates ~300/s for this class
    assert frac < 0.04  # well inside the interrupt reserve; paper ~0.7 %

    table = format_table(
        ["kind", "count", "min us (paper)", "median us (paper)", "mean us (paper)"],
        rows,
        title="Section 6.1 — context-switch costs, measured (paper)",
    )
    table += (
        f"\n\nswitches/second: {rate:.0f}   (paper estimate ~300)"
        f"\nswitch overhead: {frac:.2%} of the CPU   (paper ~0.7 %)"
        f"\ndeadline misses: {len(rd.trace.misses())}"
    )
    report("sec61_context_switch", table)
