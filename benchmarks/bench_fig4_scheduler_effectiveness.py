"""Figure 4: scheduler effectiveness (producers + spinning data threads).

Regenerates the schedule snapshot one-third of a second into the run
and verifies the paper's observations: thread 7 receives unused time
(light lines) but is preempted at new periods and still receives its
guaranteed allocation (dark lines); thread 9 completes each period;
the data-management threads spin (the application bug).
"""

from repro import MachineConfig, SimConfig, SporadicServer, units
from repro.core.distributor import ResourceDistributor
from repro.sim.trace import SegmentKind
from repro.tasks.producer_consumer import Figure4Workload
from repro.viz import render_gantt


def run(seed=44):
    rd = ResourceDistributor(machine=MachineConfig(), sim=SimConfig(seed=seed))
    server = SporadicServer(rd, greedy=True)
    workload = Figure4Workload(fixed=False)
    threads = dict(
        zip(["p7", "dm8", "p9", "dm10"], (rd.admit(d) for d in workload.definitions()))
    )
    rd.run_for(units.sec_to_ticks(0.4))
    return rd, server, workload, threads


def test_fig4_scheduler_effectiveness(benchmark, report):
    rd, server, workload, threads = benchmark.pedantic(run, rounds=1, iterations=1)

    assert not rd.trace.misses()
    p7 = threads["p7"]
    overtime = sum(
        s.length
        for s in rd.trace.segments_for(p7.tid)
        if s.kind is SegmentKind.OVERTIME
    )
    assert overtime > 0
    for outcome in rd.trace.deadlines_for(p7.tid):
        assert outcome.delivered == outcome.granted
    for outcome in rd.trace.deadlines_for(threads["p9"].tid):
        assert outcome.delivered == outcome.granted
    assert workload.stats.spin_ticks > 0

    one_third = units.sec_to_ticks(1 / 3)
    names = {t.tid: name for name, t in threads.items()}
    names[server.thread.tid] = "SporadicServer"
    gantt = render_gantt(
        rd.trace, names, one_third, one_third + 2 * 900_000, width=96
    )
    summary = (
        f"{gantt}\n\n"
        f"thread 7 unused time received: {units.ticks_to_ms(overtime):.1f} ms "
        f"over 400 ms\n"
        f"data-thread spin time (the bug): "
        f"{units.ticks_to_ms(workload.stats.spin_ticks):.1f} ms\n"
        f"deadline misses: {len(rd.trace.misses())}"
    )
    report("fig4_scheduler_effectiveness", summary)
