"""Cluster placement policies on one seeded overload workload.

The same rack (3 nodes) and the same arrival script (MPEG decoders with
the real Table 2 multi-level resource list) are run once per placement
policy.  Two workload regimes:

* ``overload`` — more decoders than the rack's minima can hold, so the
  broker must deny some.  Every decoder has the *same* minimum entry,
  so the rack packs the same total count whatever the placement order:
  AIMD must admit at least as many as first-fit.
* ``imbalance`` — the rack can hold everyone, but first-fit crams node
  zero while feedback-weighted placement spreads the load; the grant
  sets then deliver visibly different aggregate QOS.

Timing (pytest-benchmark) covers the pure policy-ordering step — the
per-admission cost the broker adds on top of the node's own O(1)
admission test.

The summary dict is written to ``BENCH_cluster.json`` at the repo root
by the conftest's session hook.
"""

from __future__ import annotations

import pytest

from repro import units
from repro.cluster import BrokerConfig, ClusterSimulation, NodeView, make_policy
from repro.cluster.report import cluster_metrics
from repro.config import ContextSwitchCosts, MachineConfig
from repro.tasks.mpeg import MpegDecoder

from benchmarks.conftest import CLUSTER_SUMMARY

POLICIES = ("first-fit", "best-fit", "aimd")
QUIET = MachineConfig(switch_costs=ContextSwitchCosts.zero())


def run_rack(policy: str, decoders: int, seed: int = 7) -> dict:
    sim = ClusterSimulation(
        node_count=3,
        seed=seed,
        policy=policy,
        horizon=units.ms_to_ticks(500),
        epoch_ticks=units.ms_to_ticks(50),
        machine=QUIET,
        broker_config=BrokerConfig(migrate=False),
    )
    stagger = units.ms_to_ticks(4)
    for i in range(decoders):
        decoder = MpegDecoder(f"mpeg{i:02d}")
        sim.submit_at(units.ms_to_ticks(1) + i * stagger, decoder.name, decoder.definition())
    sim.run_until(sim.horizon)
    doc = cluster_metrics(sim)
    return {
        "policy": policy,
        "submitted": doc["broker"]["submitted"],
        "admitted": doc["broker"]["admitted"],
        "denied": doc["broker"]["denied"],
        "admission_rate": doc["broker"]["admission_rate"],
        "delivered_qos": doc["cluster"]["delivered_qos"],
        "migrations": doc["broker"]["migrations_completed"],
        "per_node": {name: n["admitted"] for name, n in doc["nodes"].items()},
        "sanitizers_ok": doc["cluster"]["sanitizers_ok"],
    }


@pytest.fixture(scope="module")
def results() -> dict:
    if not CLUSTER_SUMMARY:
        CLUSTER_SUMMARY["workloads"] = {
            # 18 decoders: minima alone want 18 x 16.7% = 3.0 racks'
            # worth on 3 x 96% of capacity — genuine overload.
            "overload": {p: run_rack(p, decoders=18) for p in POLICIES},
            # 12 decoders fit, but only if placement spreads them.
            "imbalance": {p: run_rack(p, decoders=12) for p in POLICIES},
        }
    return CLUSTER_SUMMARY["workloads"]


def test_cluster_overload_admission(results, report):
    overload = results["overload"]
    lines = ["Cluster placement — overload workload (18 decoders, 3 nodes)", ""]
    for policy in POLICIES:
        r = overload[policy]
        lines.append(
            f"  {policy:>9}: admitted {r['admitted']:2d}/{r['submitted']} "
            f"({r['admission_rate']:.0%}), qos {r['delivered_qos']:.1%}, "
            f"spread {sorted(r['per_node'].values())}"
        )
    report("cluster_overload_admission", "\n".join(lines))
    for policy in POLICIES:
        assert overload[policy]["sanitizers_ok"]
        assert overload[policy]["denied"] > 0  # genuinely overloaded
    # Uniform minima: feedback-weighted placement never packs worse than
    # first-fit — the acceptance bar for the AIMD policy.
    assert overload["aimd"]["admitted"] >= overload["first-fit"]["admitted"]


def test_cluster_imbalance_qos(results, report):
    imbalance = results["imbalance"]
    lines = ["Cluster placement — imbalance workload (12 decoders, 3 nodes)", ""]
    for policy in POLICIES:
        r = imbalance[policy]
        lines.append(
            f"  {policy:>9}: admitted {r['admitted']:2d}/{r['submitted']} "
            f"({r['admission_rate']:.0%}), qos {r['delivered_qos']:.1%}, "
            f"spread {sorted(r['per_node'].values())}"
        )
    report("cluster_imbalance_qos", "\n".join(lines))
    for policy in POLICIES:
        assert imbalance[policy]["admitted"] == 12  # everyone fits somewhere
    # Spreading the decoders leaves more nodes able to grant above the
    # minimum entry: AIMD's delivered QOS dominates first-fit's.
    assert imbalance["aimd"]["delivered_qos"] >= imbalance["first-fit"]["delivered_qos"]
    assert imbalance["aimd"]["admitted"] >= imbalance["first-fit"]["admitted"]


def test_policy_ordering_cost(benchmark, results):
    """The broker-side cost per admission: ranking the node views."""
    views = [
        NodeView(name=f"node{i:02d}", index=i, capacity=0.96, headroom=0.96 - 0.01 * i)
        for i in range(32)
    ]
    policy = make_policy("aimd")
    benchmark(lambda: policy.order(views, 0.167))
    CLUSTER_SUMMARY["order_cost_us_32_nodes"] = benchmark.stats.stats.mean * 1e6
