"""Extension bench: Data Streamer bandwidth as a managed resource (§7).

The paper's future work, implemented: admission and grant control run
over (CPU, bandwidth) vectors.  This bench sweeps the Data Streamer
capacity and regenerates the resulting QOS frontier for three
DMA-heavy tasks — CPU sits mostly idle, yet grants degrade exactly as
the bandwidth budget tightens, and nobody ever misses a deadline.
"""

import pytest

from repro import ContextSwitchCosts, MachineConfig, SimConfig, TaskDefinition, units
from repro.core.distributor import ResourceDistributor
from repro.core.resource_list import ResourceList, ResourceListEntry
from repro.viz import format_table
from repro.workloads import grant_follower

BW_SWEEP = [1.0, 0.8, 0.6, 0.4]

_ROWS = []


def dma_task(name):
    period = units.ms_to_ticks(10)
    levels = [(0.20, 0.30), (0.15, 0.20), (0.10, 0.10), (0.05, 0.02)]
    return TaskDefinition(
        name=name,
        resource_list=ResourceList(
            [
                ResourceListEntry(
                    period,
                    round(period * rate),
                    grant_follower,
                    label=f"{int(bw * 100)}%bw",
                    bandwidth=bw,
                )
                for rate, bw in levels
            ]
        ),
    )


def run(bw_capacity, seed=70):
    rd = ResourceDistributor(
        machine=MachineConfig(
            switch_costs=ContextSwitchCosts.zero(),
            bandwidth_capacity=bw_capacity,
        ),
        sim=SimConfig(seed=seed),
    )
    threads = [rd.admit(dma_task(f"dma{i}")) for i in range(3)]
    rd.run_for(units.ms_to_ticks(100))
    return rd, threads


@pytest.mark.parametrize("bw_capacity", BW_SWEEP)
def test_ext_bandwidth_frontier(benchmark, report, bw_capacity):
    rd, threads = benchmark.pedantic(lambda: run(bw_capacity), rounds=1, iterations=1)
    gs = rd.current_grant_set
    assert gs.total_bandwidth <= bw_capacity + 1e-9
    assert not rd.trace.misses()
    _ROWS.append(
        [
            f"{bw_capacity:.0%}",
            f"{gs.total_rate:.0%}",
            f"{gs.total_bandwidth:.0%}",
            " / ".join(f"{t.grant.entry.bandwidth:.0%}" for t in threads),
            len(rd.trace.misses()),
        ]
    )

    if bw_capacity == BW_SWEEP[-1] and len(_ROWS) == len(BW_SWEEP):
        # Tightening bandwidth monotonically lowers granted bandwidth.
        totals = [float(r[2].rstrip("%")) for r in _ROWS]
        assert totals == sorted(totals, reverse=True)
        report(
            "ext_bandwidth_frontier",
            format_table(
                ["streamer capacity", "CPU granted", "bandwidth granted", "per-task bw", "misses"],
                _ROWS,
                title="Extension — bandwidth-constrained grant sets "
                "(3 DMA tasks, 60% CPU / 90% bandwidth offered)",
            ),
        )
