"""Section 4.2's latency bound: 2*period - 2*CPU, measured.

"The maximum guaranteed latency for a task is twice its period minus
twice its CPU requirement."  This bench runs a probe task against
adversarial interference (an earlier-deadline greedy task phased to
push the probe's grant as late as possible) and regenerates the
observed completion-gap distribution against the bound.
"""

import pytest

from repro import MachineConfig, SimConfig, units
from repro.core.distributor import ResourceDistributor
from repro.metrics import latency_stats
from repro.viz import format_table
from repro.workloads import single_entry_definition

CASES = [
    # (probe period ms, probe rate, noise period ms, noise rate)
    (10, 0.3, 7, 0.6),
    (20, 0.2, 9, 0.7),
    (30, 0.4, 11, 0.5),
]

_ROWS = []


def run(case, seed=46):
    probe_period, probe_rate, noise_period, noise_rate = case
    rd = ResourceDistributor(machine=MachineConfig.ideal(), sim=SimConfig(seed=seed))
    probe = rd.admit(single_entry_definition("probe", probe_period, probe_rate))
    rd.admit(single_entry_definition("noise", noise_period, noise_rate, greedy=True))
    rd.run_for(units.ms_to_ticks(100 * probe_period))
    return rd, probe


@pytest.mark.parametrize("case", CASES, ids=[f"P{c[0]}ms" for c in CASES])
def test_latency_bound(benchmark, report, case):
    rd, probe = benchmark.pedantic(lambda: run(case), rounds=1, iterations=1)
    probe_period, probe_rate, *_ = case
    period = units.ms_to_ticks(probe_period)
    cpu = round(period * probe_rate)
    stats = latency_stats(rd.trace, probe.tid, period, cpu)
    assert stats is not None
    assert stats.within_bound
    assert not rd.trace.misses(probe.tid)
    _ROWS.append(
        [
            f"{probe_period} ms / {probe_rate:.0%}",
            stats.completions,
            f"{units.ticks_to_ms(stats.max_service_gap):.2f}",
            f"{units.ticks_to_ms(stats.bound):.2f}",
            f"{stats.bound_utilization:.0%}",
        ]
    )
    if len(_ROWS) == len(CASES):
        report(
            "latency_bound",
            format_table(
                ["probe", "completions", "max service gap ms", "bound 2P-2C ms", "of bound"],
                _ROWS,
                title="Section 4.2 — worst observed service gap vs the "
                "guaranteed-latency bound",
            ),
        )
