"""Columnar-arena overhead: per-event obs cost at ≤ 0.5x the eager path.

The pipeline's tentpole claim is that recording through
``PipelineObsSession`` — one scalar append per field into a
struct-of-arrays arena, no event object, no subscriber fan-out —
costs at most **half** of what the eager ``ObsSession`` pays per
event.  This bench measures exactly that, on the kernel's hot-site
mix (switch-heavy, with period closes and activations sprinkled in)
via the shared ``repro.bench.workloads.run_obs_emit`` builder — the
same workload ``repro bench --suite obs`` times as
``obs.pipeline_overhead`` / ``obs.emit_eager``.

The emit loop is identical for both variants, so loop and dispatch
cost cancel; only the per-event storage path differs.  Runs are
interleaved so clock drift and thermal effects hit both alike, and
the gate compares medians.
"""

import statistics
import time

from repro.bench.workloads import run_obs_emit
from repro.viz import format_table

EVENTS = 30000
REPEATS = 7
BUDGET = 0.5  # columnar per-event cost may be at most 0.5x eager

VARIANTS = {
    "eager (ObsSession: object + fan-out)": "session",
    "pipeline (ArenaBus: columnar append)": "pipeline",
}


def run_once(variant: str) -> float:
    start = time.perf_counter()
    run_obs_emit(obs=variant, events=EVENTS)
    return time.perf_counter() - start


def interleaved_medians() -> dict[str, float]:
    for variant in VARIANTS.values():
        run_once(variant)  # warm-up: imports, allocator, caches
    samples: dict[str, list[float]] = {name: [] for name in VARIANTS}
    for _ in range(REPEATS):
        for name, variant in VARIANTS.items():
            samples[name].append(run_once(variant))
    return {name: statistics.median(times) for name, times in samples.items()}


def test_pipeline_per_event_cost_within_half_of_eager(report):
    medians = interleaved_medians()
    eager = medians["eager (ObsSession: object + fan-out)"]
    pipeline = medians["pipeline (ArenaBus: columnar append)"]
    rows = [
        [
            name,
            f"{median * 1e3:.1f}",
            f"{median / EVENTS * 1e9:.0f}",
            f"{median / eager:.2f}x",
        ]
        for name, median in medians.items()
    ]
    table = format_table(
        [
            "configuration",
            f"median of {REPEATS} runs (ms)",
            "per event (ns)",
            "vs eager",
        ],
        rows,
        title=f"repro.obs.pipeline overhead — {EVENTS} hot-site events",
    )
    report("pipeline_overhead", table)

    ratio = pipeline / eager
    assert ratio <= BUDGET, (
        f"columnar per-event cost is {ratio:.2f}x the eager path "
        f"(budget {BUDGET:.1f}x): the arena fast paths are no longer cheap"
    )
