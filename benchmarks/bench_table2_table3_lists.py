"""Tables 2 and 3: the MPEG and 3D graphics resource lists.

Regenerates both tables from the task models and benchmarks
resource-list construction/validation (the admission-request fast path
an application pays when it asks for guarantees).
"""

from repro.tasks.graphics3d import Renderer3D
from repro.tasks.mpeg import MpegDecoder

PAPER_TABLE2 = [
    (900_000, 300_000, 33.3, "FullDecompress"),
    (3_600_000, 900_000, 25.0, "Drop_B_in_4"),
    (2_700_000, 600_000, 22.2, "Drop_B_in_3"),
    (3_600_000, 600_000, 16.7, "Drop_2B_in_4"),
]

PAPER_TABLE3 = [
    (2_700_000, 2_160_000, 80.0, "Render3DFrame"),
    (2_700_000, 1_080_000, 40.0, "Render3DFrame"),
    (2_700_000, 540_000, 20.0, "Render3DFrame"),
    (2_700_000, 270_000, 10.0, "Render3DFrame"),
]


def test_table2_mpeg_resource_list(benchmark, report):
    decoder = MpegDecoder()
    resource_list = benchmark(decoder.resource_list)
    rows = [
        (e.period, e.cpu_ticks, round(e.rate * 100, 1), e.label) for e in resource_list
    ]
    assert rows == PAPER_TABLE2
    report("table2_mpeg_resource_list", resource_list.describe())


def test_table3_graphics_resource_list(benchmark, report):
    renderer = Renderer3D()
    resource_list = benchmark(renderer.resource_list)
    rows = [
        (e.period, e.cpu_ticks, round(e.rate * 100, 1), e.label) for e in resource_list
    ]
    assert rows == PAPER_TABLE3
    report("table3_graphics_resource_list", resource_list.describe())
