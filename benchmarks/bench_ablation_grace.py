"""Ablation: grace-period length (the paper's open question).

"It remains a matter of further study to determine the optimal grace
period length."  The tension: a long grace period lets slow-checking
tasks yield voluntarily (cheap switches) but postpones the next task;
a short one bounds the postponement but forces involuntary switches.

This sweep runs a controlled-preemption task whose check interval is
150 us against grace periods from 50 to 800 us and reports the switch
mix, overhead, and the victim task's outcome.
"""

import pytest

from repro import MachineConfig, SimConfig, TaskDefinition, units
from repro.core.distributor import ResourceDistributor
from repro.core.resource_list import ResourceList, ResourceListEntry
from repro.sim.trace import SwitchKind
from repro.tasks.base import Compute, PreemptionConfig
from repro.viz import format_table
from repro.workloads import single_entry_definition

GRACE_SWEEP_US = [50, 100, 200, 400, 800]
CHECK_INTERVAL_US = 150

_ROWS = []


def greedy(ctx):
    while True:
        yield Compute(units.us_to_ticks(50))


def run(grace_us, seed=88):
    machine = MachineConfig(grace_period_ticks=units.us_to_ticks(grace_us))
    rd = ResourceDistributor(machine=machine, sim=SimConfig(seed=seed))
    rd.admit(
        TaskDefinition(
            name="bulk",
            resource_list=ResourceList(
                [
                    ResourceListEntry(
                        units.ms_to_ticks(30), units.ms_to_ticks(12), greedy, "bulk"
                    )
                ]
            ),
            preemption=PreemptionConfig(
                check_interval=units.us_to_ticks(CHECK_INTERVAL_US)
            ),
        )
    )
    rd.admit(single_entry_definition("victim", 10, 0.3))
    rd.run_for(units.sec_to_ticks(1))
    return rd


@pytest.mark.parametrize("grace_us", GRACE_SWEEP_US)
def test_ablation_grace_period(benchmark, report, grace_us):
    rd = benchmark.pedantic(lambda: run(grace_us), rounds=1, iterations=1)
    voluntary = rd.trace.switch_count(SwitchKind.VOLUNTARY)
    involuntary = rd.trace.switch_count(SwitchKind.INVOLUNTARY)
    cost = units.ticks_to_us(rd.trace.switch_cost_ticks())
    victim_misses = len(rd.trace.misses())
    _ROWS.append([f"{grace_us} us", voluntary, involuntary, f"{cost:,.0f}", victim_misses])

    if grace_us == GRACE_SWEEP_US[-1] and len(_ROWS) == len(GRACE_SWEEP_US):
        # Grace >= check interval converts the switches to voluntary.
        short = next(r for r in _ROWS if r[0] == "100 us")
        long = next(r for r in _ROWS if r[0] == "200 us")
        assert long[2] < short[2]  # fewer involuntary switches
        report(
            "ablation_grace_period",
            format_table(
                ["grace", "voluntary", "involuntary", "switch cost (us)", "victim misses"],
                _ROWS,
                title=(
                    f"Ablation — grace-period sweep (task checks every "
                    f"{CHECK_INTERVAL_US} us)"
                ),
            ),
        )
