"""Figure 3: the EDF schedule for the Table 4 grant set.

Runs the modem/3D/MPEG trio for half a second and regenerates the
schedule as an ASCII Gantt chart.  Shape checks: every grant delivered
every period, MPEG preempted (its 30 ms period wraps the other tasks'
10 ms periods), modem (smallest requirement) never preempted.
"""

from repro import units
from repro.sim.trace import SegmentKind

from benchmarks.bench_table4_grant_set import build


def _run():
    rd, threads = build()
    rd.run_for(units.sec_to_ticks(0.5))
    return rd, threads


def _split_periods(rd, thread):
    by_period = {}
    for seg in rd.trace.segments_for(thread.tid):
        if seg.kind is SegmentKind.GRANTED:
            by_period.setdefault(seg.period_index, 0)
            by_period[seg.period_index] += 1
    return sum(1 for c in by_period.values() if c > 1)


def test_fig3_edf_schedule(benchmark, report):
    rd, threads = benchmark.pedantic(_run, rounds=3, iterations=1)
    assert not rd.trace.misses()
    assert _split_periods(rd, threads["MPEG"]) > 0
    assert _split_periods(rd, threads["Modem"]) == 0
    from repro.viz import render_gantt

    gantt = render_gantt(
        rd.trace,
        {t.tid: name for name, t in threads.items()},
        0,
        units.ms_to_ticks(60),
        width=96,
    )
    report("fig3_edf_schedule", gantt)
