"""Table 5: the example Policy Box.

Loads the paper's seven policies over four tasks, regenerates the
table, and benchmarks policy resolution — the lookup the Resource
Manager performs on every overload decision.
"""

import pytest

from repro.core.policy_box import PolicyBox

PAPER_TABLE5 = {
    frozenset({1, 2}): {1: 10, 2: 85},
    frozenset({1, 3}): {1: 20, 3: 75},
    frozenset({1, 4}): {1: 10, 4: 85},
    frozenset({1, 2, 3}): {1: 10, 2: 50, 3: 35},
    frozenset({1, 2, 4}): {1: 10, 2: 35, 4: 50},
    frozenset({1, 3, 4}): {1: 10, 3: 35, 4: 50},
    frozenset({1, 2, 3, 4}): {1: 5, 2: 35, 3: 20, 4: 35},
}


def build_table5():
    box = PolicyBox(capacity=0.96)
    for i in range(1, 5):
        box.register_task(f"Task {i}")
    for rankings in PAPER_TABLE5.values():
        box.set_default(dict(rankings))
    return box


def test_table5_policy_box(benchmark, report):
    box = build_table5()

    def resolve_all():
        return [box.resolve(key) for key in PAPER_TABLE5]

    policies = benchmark(resolve_all)
    for key, policy in zip(PAPER_TABLE5, policies):
        assert not policy.invented
        for pid, pct in PAPER_TABLE5[key].items():
            assert policy.shares[pid] == pytest.approx(pct / 100)
    report("table5_policy_box", box.describe())


def test_table5_fallback_invention(benchmark, report):
    """A set with no matching policy gets the invented 1/N split."""
    box = build_table5()
    box.register_task("Task 5")
    key = {box.policy_id("Task 1"), box.policy_id("Task 5")}
    policy = benchmark(lambda: box.resolve(key))
    assert policy.invented
    assert sum(policy.shares.values()) == pytest.approx(0.96)
    report(
        "table5_invented_policy",
        f"unmatched set {sorted(key)} -> invented shares "
        f"{ {pid: round(s, 3) for pid, s in policy.shares.items()} } "
        f"(exclusive resources to task {policy.exclusive_preference})",
    )
