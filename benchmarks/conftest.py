"""Benchmark harness helpers.

Every bench regenerates one of the paper's tables or figures, writes
the rendered artifact to ``benchmarks/out/<id>.txt``, prints it (visible
with ``pytest -s``), and asserts the *shape* the paper reports.  Timing
comes from pytest-benchmark; absolute numbers are host-dependent and
not compared against the MAP1000.
"""

from __future__ import annotations

import json
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: Filled in by bench_cluster_placement.py; flushed to BENCH_cluster.json
#: at the repo root when the session ends (only if the bench ran).
CLUSTER_SUMMARY: dict = {}


def pytest_sessionfinish(session, exitstatus):
    if not CLUSTER_SUMMARY:
        return
    path = pathlib.Path(__file__).resolve().parent.parent / "BENCH_cluster.json"
    path.write_text(
        json.dumps(CLUSTER_SUMMARY, indent=2, sort_keys=True) + "\n"
    )


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def report(report_dir, capsys):
    """Write an artifact file and echo it to the real terminal."""

    def _report(artifact_id: str, text: str) -> None:
        path = report_dir / f"{artifact_id}.txt"
        path.write_text(text + "\n")
        with capsys.disabled():
            print(f"\n--- {artifact_id} ({path}) ---")
            print(text)

    return _report
