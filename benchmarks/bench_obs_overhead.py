"""Observability overhead: instrumented-but-unsinked must be near-free.

The tentpole claim for ``repro.obs`` is that instrumentation is off by
default and costs next to nothing until a sink subscribes: every hook
site is one attribute read plus a falsy branch when ``obs is None``,
and — because hot sites guard with ``if self.obs:`` and a bus with no
subscribers is falsy — *zero* event constructions when a bus is
attached with nobody listening.  This bench measures that claim on the
Figure 5 load-shedding scenario (five busy loops — context-switch
heavy, so the hottest hook dominates) and fails if the
enabled-but-no-sink configuration costs more than 5 % over the
uninstrumented baseline.

Baseline and candidate runs are interleaved so clock drift and thermal
effects hit both alike; the gate compares medians.  The scenario itself
is the shared ``repro.bench.workloads.run_figure5`` builder — the same
workload the ``repro bench --suite obs`` runner times.
"""

import statistics
import time

from repro.bench.workloads import run_figure5
from repro.viz import format_table

HORIZON_MS = 400
REPEATS = 7
BUDGET = 0.05  # enabled-but-no-sink may cost at most 5 % over baseline

VARIANTS = {
    "disabled (obs=None)": "disabled",
    "no-sink (ObsBus, 0 subscribers)": "no-sink",
    "full session (collector + metrics)": "session",
}


def run_once(variant: str) -> float:
    start = time.perf_counter()
    run_figure5(obs=variant, ms=HORIZON_MS, seed=11)
    return time.perf_counter() - start


def interleaved_medians() -> dict[str, float]:
    for variant in VARIANTS.values():
        run_once(variant)  # warm-up: imports, allocator, caches
    samples: dict[str, list[float]] = {name: [] for name in VARIANTS}
    for _ in range(REPEATS):
        for name, variant in VARIANTS.items():
            samples[name].append(run_once(variant))
    return {name: statistics.median(times) for name, times in samples.items()}


def test_obs_disabled_overhead_within_budget(report):
    medians = interleaved_medians()
    baseline = medians["disabled (obs=None)"]
    rows = [
        [name, f"{median * 1e3:.1f}", f"{median / baseline - 1:+.1%}"]
        for name, median in medians.items()
    ]
    table = format_table(
        ["configuration", f"median of {REPEATS} runs (ms)", "vs disabled"],
        rows,
        title=f"repro.obs overhead — figure5, {HORIZON_MS} ms simulated",
    )
    report("obs_overhead", table)

    no_sink = medians["no-sink (ObsBus, 0 subscribers)"]
    overhead = no_sink / baseline - 1
    assert overhead <= BUDGET, (
        f"enabled-but-no-sink costs {overhead:+.1%} over the uninstrumented "
        f"baseline (budget {BUDGET:.0%}): the hook sites are no longer cheap"
    )
