"""Observability overhead: instrumented-but-unsinked must be near-free.

The tentpole claim for ``repro.obs`` is that instrumentation is off by
default and costs next to nothing until a sink subscribes: every hook
site is one attribute read plus a falsy branch when ``obs is None``,
and one event construction plus a length check when a bus is attached
with no subscribers.  This bench measures that claim on the Figure 5
load-shedding scenario (five busy loops — context-switch heavy, so the
hottest hook dominates) and fails if the enabled-but-no-sink
configuration costs more than 5 % over the uninstrumented baseline.

Baseline and candidate runs are interleaved so clock drift and thermal
effects hit both alike; the gate compares medians.
"""

import statistics
import time

from repro import units
from repro.obs.events import ObsBus
from repro.obs.session import ObsSession
from repro.scenarios import figure5
from repro.viz import format_table

HORIZON_MS = 400
REPEATS = 7
BUDGET = 0.05  # enabled-but-no-sink may cost at most 5 % over baseline


def run_once(obs) -> float:
    start = time.perf_counter()
    figure5(seed=11, obs=obs).run_for(units.ms_to_ticks(HORIZON_MS))
    return time.perf_counter() - start


def interleaved_medians() -> dict[str, float]:
    variants = {
        "disabled (obs=None)": lambda: None,
        "no-sink (ObsBus, 0 subscribers)": ObsBus,
        "full session (collector + metrics)": ObsSession,
    }
    for make in variants.values():
        run_once(make())  # warm-up: imports, allocator, caches
    samples: dict[str, list[float]] = {name: [] for name in variants}
    for _ in range(REPEATS):
        for name, make in variants.items():
            samples[name].append(run_once(make()))
    return {name: statistics.median(times) for name, times in samples.items()}


def test_obs_disabled_overhead_within_budget(report):
    medians = interleaved_medians()
    baseline = medians["disabled (obs=None)"]
    rows = [
        [name, f"{median * 1e3:.1f}", f"{median / baseline - 1:+.1%}"]
        for name, median in medians.items()
    ]
    table = format_table(
        ["configuration", f"median of {REPEATS} runs (ms)", "vs disabled"],
        rows,
        title=f"repro.obs overhead — figure5, {HORIZON_MS} ms simulated",
    )
    report("obs_overhead", table)

    no_sink = medians["no-sink (ObsBus, 0 subscribers)"]
    overhead = no_sink / baseline - 1
    assert overhead <= BUDGET, (
        f"enabled-but-no-sink costs {overhead:+.1%} over the uninstrumented "
        f"baseline (budget {BUDGET:.0%}): the hook sites are no longer cheap"
    )
