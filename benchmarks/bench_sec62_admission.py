"""Section 6.2: admissions control is computed in constant time.

"A running sum of the resources used for each thread's minimum
resource list entry is maintained.  When a new thread requests
admittance, the resources of its minimum resource list entry are added
to the running total and compared to what is available."

The paper reports 150-200 us on the 200 MHz MAP1000.  We do not compare
absolute host time against the MAP1000; the reproduced *shape* is the
O(1) scaling: admission cost must not grow with the number of already
admitted threads.
"""

import pytest

from repro.core.admission import AdmissionController

POPULATIONS = [10, 100, 1_000, 10_000]

_RESULTS: dict[int, float] = {}


@pytest.mark.parametrize("population", POPULATIONS)
def test_sec62_admission_is_constant_time(benchmark, report, population):
    ac = AdmissionController(capacity=0.96)
    # Fill with `population` tiny commitments.
    rate = 0.5 / population
    for tid in range(population):
        ac.admit(tid, rate)

    probe_tid = population + 1

    def admit_release():
        ac.admit(probe_tid, 0.001)
        ac.release(probe_tid)

    benchmark(admit_release)
    _RESULTS[population] = benchmark.stats.stats.mean

    if population == POPULATIONS[-1] and len(_RESULTS) == len(POPULATIONS):
        base = _RESULTS[POPULATIONS[0]]
        lines = ["Section 6.2 — admission cost vs admitted-thread count (O(1))", ""]
        for n in POPULATIONS:
            mean = _RESULTS[n]
            lines.append(
                f"  N={n:>6,d}: {mean * 1e6:8.3f} us/admission "
                f"({mean / base:4.2f}x of N={POPULATIONS[0]})"
            )
        # Constant time: 1000x more threads must not cost 3x more.
        assert _RESULTS[POPULATIONS[-1]] < 3.0 * base + 1e-6
        lines.append("")
        lines.append("paper: 150-200 us on the 200 MHz MAP1000, independent of N")
        report("sec62_admission_scaling", "\n".join(lines))
