"""Profiler overhead: the instrumenting tier must stay under 10 %.

The tentpole claim for ``repro.obs.prof`` mirrors the obs one: every
hook site is one attribute read plus a falsy branch when ``prof is
None`` (unprofiled must be indistinguishable from before the hooks
existed), and when a :class:`PhaseProfiler` *is* attached, the full
begin/end bookkeeping across kernel, scheduler, resource manager, grant
control, and bus may cost at most 10 % over the unprofiled run — the
gate the ``prof-smoke`` CI job enforces.

Baseline and candidate runs are interleaved so clock drift and thermal
effects hit both alike; the gate compares per-variant minima — the
``timeit`` rationale: the minimum is the least-contended measurement of
the same deterministic work, so scheduler and cache noise (which only
ever adds time) cancels out of the ratio.  Medians are reported
alongside for context.  The scenario is the shared
``repro.bench.workloads.run_figure5`` builder — the same workload the
``repro bench --suite obs`` runner times as ``obs.prof_overhead``.
"""

import gc
import statistics
import time

from repro.bench.workloads import run_figure5
from repro.viz import format_table

HORIZON_MS = 400
REPEATS = 9
BUDGET = 0.10  # a live PhaseProfiler may cost at most 10 % over unprofiled

VARIANTS = {
    "unprofiled (prof=None)": False,
    "profiled (PhaseProfiler attached)": True,
}


def run_once(prof: bool) -> float:
    start = time.perf_counter()
    run_figure5(obs="disabled", ms=HORIZON_MS, seed=11, prof=prof)
    return time.perf_counter() - start


def interleaved_samples() -> dict[str, list[float]]:
    for prof in VARIANTS.values():
        run_once(prof)  # warm-up: imports, allocator, caches
    samples: dict[str, list[float]] = {name: [] for name in VARIANTS}
    # Collector pauses land on random runs and this gate has single-digit
    # margins, so time with gc off (each run allocates, none of it cyclic).
    gc.collect()
    gc.disable()
    try:
        for _ in range(REPEATS):
            for name, prof in VARIANTS.items():
                samples[name].append(run_once(prof))
    finally:
        gc.enable()
    return samples


def test_prof_overhead_within_budget(report):
    samples = interleaved_samples()
    best = {name: min(times) for name, times in samples.items()}
    baseline = best["unprofiled (prof=None)"]
    profiled = best["profiled (PhaseProfiler attached)"]
    if profiled / baseline - 1 > BUDGET:
        # A regression must survive a second sampling window before it
        # fails the gate: a burst of background load (CI runners share
        # hardware) can inflate every sample in one window, and minima
        # only cancel noise *within* a window.  Merging the windows
        # keeps the per-variant minimum honest across both.
        for name, times in interleaved_samples().items():
            samples[name].extend(times)
        best = {name: min(times) for name, times in samples.items()}
    baseline = best["unprofiled (prof=None)"]
    runs = len(samples["unprofiled (prof=None)"])
    rows = [
        [
            name,
            f"{best[name] * 1e3:.1f}",
            f"{statistics.median(times) * 1e3:.1f}",
            f"{best[name] / baseline - 1:+.1%}",
        ]
        for name, times in samples.items()
    ]
    table = format_table(
        [
            "configuration",
            f"best of {runs} runs (ms)",
            "median (ms)",
            "vs unprofiled",
        ],
        rows,
        title=f"repro.obs.prof overhead — figure5, {HORIZON_MS} ms simulated",
    )
    report("prof_overhead", table)

    profiled = best["profiled (PhaseProfiler attached)"]
    overhead = profiled / baseline - 1
    assert overhead <= BUDGET, (
        f"a live PhaseProfiler costs {overhead:+.1%} over the unprofiled "
        f"baseline (budget {BUDGET:.0%}): begin/end bookkeeping got heavy"
    )
