"""Section 6.4: the cost of managing preemption.

"The cost of a managed preemption is potentially much less than the
cost of an involuntary context switch."  A task doing controlled
preemptions converts its involuntary (16.9/28.2/35.0 us) switches into
voluntary ones (11.5/18.3/20.7 us) at the price of a short grace-period
overrun charged to itself.

Reproduced shape: with controlled preemption registered, (a) forced
preemptions become voluntary, and (b) total switch overhead drops.
"""

import pytest

from repro import MachineConfig, SimConfig, TaskDefinition, units
from repro.core.distributor import ResourceDistributor
from repro.core.resource_list import ResourceList, ResourceListEntry
from repro.sim.trace import SwitchKind
from repro.tasks.base import Compute, PreemptionConfig
from repro.viz import format_table
from repro.workloads import single_entry_definition


def greedy(ctx):
    while True:
        yield Compute(units.us_to_ticks(50))


def run(controlled: bool, seed=64):
    rd = ResourceDistributor(machine=MachineConfig(), sim=SimConfig(seed=seed))
    rd.admit(
        TaskDefinition(
            name="bulk",
            resource_list=ResourceList(
                [ResourceListEntry(units.ms_to_ticks(30), units.ms_to_ticks(12), greedy, "bulk")]
            ),
            preemption=(
                PreemptionConfig(check_interval=units.us_to_ticks(100))
                if controlled
                else None
            ),
        )
    )
    rd.admit(single_entry_definition("short", 10, 0.3))
    rd.run_for(units.sec_to_ticks(1))
    return rd


def test_sec64_managed_preemption(benchmark, report):
    controlled = benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)
    uncontrolled = run(False)

    rows = []
    stats = {}
    for label, rd in (("controlled", controlled), ("normal", uncontrolled)):
        vol = rd.trace.switch_count(SwitchKind.VOLUNTARY)
        invol = rd.trace.switch_count(SwitchKind.INVOLUNTARY)
        cost_us = units.ticks_to_us(rd.trace.switch_cost_ticks())
        stats[label] = (vol, invol, cost_us)
        rows.append([label, vol, invol, f"{cost_us:,.0f}"])

    # The controlled task eliminates (nearly all) involuntary switches
    # and lowers total switch overhead.
    assert stats["controlled"][1] < stats["normal"][1] / 4
    assert stats["controlled"][2] < stats["normal"][2]
    assert not controlled.trace.misses()

    table = format_table(
        ["mode", "voluntary", "involuntary", "total cost (us)"],
        rows,
        title="Section 6.4 — managed vs normal preemption (1 s, 12 ms/30 ms bulk task)",
    )
    report("sec64_managed_preemption", table)
