"""Table 4: the grant set for modem + 3D graphics + MPEG decompression.

Regenerates the table (rates 10 % / 52 % / 33 %) and benchmarks the
Resource Manager's full admit-three-tasks path, including grant-set
computation.
"""

import pytest

from repro import MachineConfig, SimConfig, TaskDefinition
from repro.core.distributor import ResourceDistributor
from repro.core.resource_list import ResourceList, ResourceListEntry
from repro.workloads import grant_follower, greedy_worker


def build():
    rd = ResourceDistributor(machine=MachineConfig.ideal(), sim=SimConfig(seed=4))
    specs = [
        ("Modem", 270_000, 27_000, grant_follower),
        ("3D", 275_300, 143_156, greedy_worker),
        ("MPEG", 810_000, 270_000, grant_follower),
    ]
    threads = {}
    for name, period, cpu, fn in specs:
        threads[name] = rd.admit(
            TaskDefinition(
                name=name,
                resource_list=ResourceList(
                    [ResourceListEntry(period, cpu, fn, name)]
                ),
            )
        )
    return rd, threads


def test_table4_grant_set(benchmark, report):
    rd, threads = benchmark(build)
    gs = rd.current_grant_set
    assert gs[threads["Modem"].tid].rate == pytest.approx(0.10)
    assert gs[threads["3D"].tid].rate == pytest.approx(0.52, abs=0.001)
    assert gs[threads["MPEG"].tid].rate == pytest.approx(1 / 3)
    assert gs.total_rate == pytest.approx(0.953, abs=0.001)
    report("table4_grant_set", gs.describe())
