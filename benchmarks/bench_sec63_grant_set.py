"""Section 6.3: the cost of determining a grant set.

Paper: "The cost of determining a grant set is a function of (1)
whether the system is in overload, and (2) the number of threads
admitted to the system."  Underload short-circuits (everyone gets the
maximum); overload consults the Policy Box and correlates in O(N)
passes.

Reproduced shape: the underload path is substantially cheaper than the
overload path at equal N, and the overload path scales linearly —
doubling N roughly doubles time, never quadratically.  (The paper's
underload check is O(1) against running sums maintained inside the
Resource Manager; this implementation recomputes the sum, so both paths
are Theta(N) with very different constants — documented in
EXPERIMENTS.md.)
"""

import pytest

from repro.bench.workloads import build_grant_requests

POPULATIONS = [4, 16, 64, 256]

_TIMES: dict[tuple[str, int], float] = {}


@pytest.mark.parametrize("regime", ["underload", "overload"])
@pytest.mark.parametrize("population", POPULATIONS)
def test_sec63_grant_set_cost(benchmark, report, regime, population):
    controller, requests = build_grant_requests(
        population, overload=(regime == "overload")
    )
    result = benchmark(lambda: controller.compute(requests))
    if regime == "underload":
        assert result.passes == 0
    else:
        assert result.passes >= 1
    _TIMES[(regime, population)] = benchmark.stats.stats.mean

    if len(_TIMES) == 2 * len(POPULATIONS):
        lines = ["Section 6.3 — grant-set computation cost", ""]
        for reg in ("underload", "overload"):
            for n in POPULATIONS:
                lines.append(f"  {reg:>9} N={n:>4d}: {_TIMES[(reg, n)] * 1e6:9.2f} us")
        lines.append("")
        # Overload costs more than underload at equal N.
        for n in POPULATIONS:
            assert _TIMES[("overload", n)] > _TIMES[("underload", n)]
        # Linear, not quadratic: 64x threads < ~200x time.
        growth = _TIMES[("overload", POPULATIONS[-1])] / _TIMES[("overload", POPULATIONS[0])]
        ratio = POPULATIONS[-1] / POPULATIONS[0]
        assert growth < ratio * 3.5
        lines.append(
            f"overload growth N x{ratio:.0f} -> time x{growth:.1f} (linear, O(N))"
        )
        lines.append("paper: O(1) underload fast path; O(N) policy correlation")
        report("sec63_grant_set_cost", "\n".join(lines))
