"""Sections 3.4/3.5: the comparative claims, quantified.

One overload — three tasks each wanting 50 % of a 10 ms period, each
able to shed in 10 % steps — run under the Resource Distributor and the
four baseline schedulers.  Regenerates the qualitative comparison as a
measured table: admissions, miss rates, useful utilization, and the
per-system failure mode.
"""

import pytest

from repro import AdmissionError, MachineConfig, SimConfig, units
from repro.baselines import (
    NaiveEdfSystem,
    RateMonotonicSystem,
    ReservesSystem,
    RialtoSystem,
    SmartSystem,
)
from repro.core.distributor import ResourceDistributor
from repro.metrics import miss_rate
from repro.tasks.busyloop import busyloop_definition
from repro.viz import format_table
from repro.workloads import single_entry_definition

DURATION = units.ms_to_ticks(400)


def run_all(seed=33):
    results = {}

    rd = ResourceDistributor(machine=MachineConfig(), sim=SimConfig(seed=seed))
    rd_threads = [rd.admit(busyloop_definition(f"t{i}")) for i in range(3)]
    rd.run_for(DURATION)
    useful = sum(rd.trace.busy_ticks(t.tid) for t in rd_threads) / DURATION
    results["ResourceDistributor"] = (3, miss_rate(rd.trace), useful)

    for cls in (
        NaiveEdfSystem,
        SmartSystem,
        ReservesSystem,
        RialtoSystem,
        RateMonotonicSystem,
    ):
        system = cls(machine=MachineConfig(), sim=SimConfig(seed=seed))
        threads = []
        for i in range(3):
            try:
                threads.append(
                    system.admit(single_entry_definition(f"t{i}", 10, 0.5))
                )
            except AdmissionError:
                pass
        system.run_for(DURATION)
        useful = sum(system.trace.busy_ticks(t.tid) for t in threads) / DURATION
        results[cls.__name__] = (len(threads), miss_rate(system.trace), useful)
    return results


def test_claims_baseline_comparison(benchmark, report):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    admitted, misses, useful = results["ResourceDistributor"]
    assert admitted == 3 and misses == 0.0 and useful > 0.85

    assert results["NaiveEdfSystem"][1] > 0.3  # cascading misses
    assert results["SmartSystem"][1] > 0.5  # fair share starves frames
    assert results["ReservesSystem"][0] < 3  # admission denied
    assert results["RialtoSystem"][1] == 0.0  # no misses, but...
    assert results["RialtoSystem"][2] < 0.7  # ...a denied task idles
    assert results["RateMonotonicSystem"][0] == 1  # LL bound denies 2 of 3

    notes = {
        "ResourceDistributor": "policy-directed discrete shedding",
        "NaiveEdfSystem": "domino misses in overload",
        "SmartSystem": "fair share misses every frame",
        "ReservesSystem": "over-reservation denies admission",
        "RialtoSystem": "victim picked by request timing",
        "RateMonotonicSystem": "utilization bound under-admits",
    }
    rows = [
        [name, a, f"{m:.0%}", f"{u:.0%}", notes[name]]
        for name, (a, m, u) in results.items()
    ]
    report(
        "claims_baseline_comparison",
        format_table(
            ["scheduler", "admitted", "miss rate", "useful CPU", "behaviour"],
            rows,
            title="Offered load: 3 tasks x 50% @ 10 ms (150% of the machine), 400 ms",
        ),
    )
