"""Table 6 + Figure 5: staggered admissions and load shedding.

Five Table-6 BusyLoop threads started 20 ms apart beside a greedy
Sporadic Server.  Regenerates Figure 5's series for thread 2 — the
per-period CPU allocation staircase 9 -> 4 -> 3 -> 2 -> 2 ms — and
verifies the paper's surrounding observations.
"""

from repro import ContextSwitchCosts, MachineConfig, SimConfig, SporadicServer, units
from repro.core.distributor import ResourceDistributor
from repro.metrics import allocation_series
from repro.tasks.busyloop import busyloop_definition


def ms(x):
    return units.ms_to_ticks(x)


def run(seed=55):
    rd = ResourceDistributor(
        machine=MachineConfig(switch_costs=ContextSwitchCosts.zero()),
        sim=SimConfig(seed=seed),
    )
    server = SporadicServer(rd, greedy=True)
    threads = []

    def admit(name):
        threads.append(rd.admit(busyloop_definition(name)))

    admit("thread2")
    for i in range(1, 5):
        rd.at(ms(20 * i), lambda n=f"thread{i + 2}": admit(n))
    rd.run_for(ms(150))
    return rd, server, threads


def test_fig5_load_shedding(benchmark, report):
    rd, server, threads = benchmark.pedantic(run, rounds=1, iterations=1)

    series = [
        round(units.ticks_to_ms(v)) for _, v in allocation_series(rd.trace, threads[0].tid)
    ]
    assert series[:8] == [9, 9, 4, 4, 3, 3, 2, 2]
    assert all(v == 2 for v in series[8:])
    assert not rd.trace.misses()

    # The Sporadic Server runs at least every 10 ms.
    segs = rd.trace.segments_for(server.thread.tid)
    max_gap = max((b.start - a.end) for a, b in zip(segs, segs[1:]))
    assert max_gap <= ms(10)

    lines = ["Figure 5 — thread 2 allocation per 10 ms period:", ""]
    lines.append("   t(ms)  alloc(ms)   " + "paper: 9,9,4,4,3,3,2,2,2,...")
    for start, ticks in allocation_series(rd.trace, threads[0].tid):
        bar = "#" * round(units.ticks_to_ms(ticks))
        lines.append(
            f"  {units.ticks_to_ms(start):6.0f}  {units.ticks_to_ms(ticks):9.1f}   {bar}"
        )
    lines.append("")
    lines.append(
        "final rates: "
        + ", ".join(f"{t.name}={t.grant.rate:.0%}" for t in threads)
    )
    lines.append(f"max Sporadic Server gap: {units.ticks_to_ms(max_gap):.2f} ms (<= 10)")
    report("fig5_load_shedding", "\n".join(lines))
