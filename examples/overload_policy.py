#!/usr/bin/env python3
"""Policy Box in action: who sheds load is the *user's* decision.

The paper's example: video should generally degrade before audio — but
in a loud environment the clicks and pops of poor audio vanish into the
noise, so the user reverses the preference.  This example runs one
overload (MPEG video + AC3 audio + a 9-level background compute task)
twice and shows the grant sets differ exactly as the policy says,
independent of timing accidents or admission order.

Run:  python examples/overload_policy.py
"""

from repro import ResourceDistributor, units
from repro.tasks.ac3 import Ac3Decoder
from repro.tasks.busyloop import busyloop_definition
from repro.tasks.mpeg import MpegDecoder


def build(loud_environment: bool):
    rd = ResourceDistributor()
    mpeg = MpegDecoder("video")
    ac3 = Ac3Decoder("audio")

    vid = rd.policy_box.register_task("video")
    aud = rd.policy_box.register_task("audio")
    bg = rd.policy_box.register_task("background")

    # Designer default: audio is precious (full 12 %), video may shed.
    rd.policy_box.set_default({vid: 24, aud: 12, bg: 60})
    if loud_environment:
        # The user reverses it: keep video sharp, let audio downmix.
        rd.policy_box.set_override({vid: 34, aud: 6, bg: 56})

    threads = {
        "video": rd.admit(mpeg.definition()),
        "audio": rd.admit(ac3.definition()),
        "background": rd.admit(busyloop_definition("background")),
    }
    rd.run_for(units.sec_to_ticks(1))
    return rd, threads, mpeg, ac3


def describe(rd, threads, mpeg, ac3):
    for name, thread in threads.items():
        grant = thread.grant
        print(
            f"  {name:>10}: entry #{grant.entry_index} "
            f"({grant.entry.label or 'level'}) at {grant.rate:5.1%}"
        )
    print(f"  audio frames downmixed: {ac3.stats.frames_downmixed}")
    print(f"  video B frames shed:    {mpeg.stats.dropped['B']}")
    print(f"  deadline misses:        {len(rd.trace.misses())}")


def main() -> None:
    print("Offered load: video 33 % + audio 12 % + background up to 90 %\n")

    print("=== Designer default: degrade video before audio ===")
    rd, threads, mpeg, ac3 = build(loud_environment=False)
    describe(rd, threads, mpeg, ac3)

    print("\n=== User override (loud room): degrade audio before video ===")
    rd, threads, mpeg, ac3 = build(loud_environment=True)
    describe(rd, threads, mpeg, ac3)

    print(
        "\nSame machine, same tasks, same overload — but the QOS tradeoff"
        "\nfollowed the user's policy, not an accident of timing.  Every"
        "\nadmitted task kept its per-period guarantee in both runs."
    )


if __name__ == "__main__":
    main()
