#!/usr/bin/env python3
"""Head-to-head: the Resource Distributor vs the section 3.4 baselines.

One overload (three tasks, each wanting 50 % of the CPU at 10 ms, each
able to shed in 10 % steps) run under five schedulers.  The table shows
each system's characteristic behaviour: the RD degrades per policy with
zero misses; naive EDF cascades; SMART fair-shares everyone into
missing; Reserves refuses admission; Rialto denies whoever asked last.

Run:  python examples/scheduler_faceoff.py
"""

from repro import AdmissionError, MachineConfig, SimConfig, units
from repro.baselines import NaiveEdfSystem, ReservesSystem, RialtoSystem, SmartSystem
from repro.core.distributor import ResourceDistributor
from repro.metrics import miss_rate, utilization
from repro.tasks.busyloop import busyloop_definition
from repro.viz import format_table
from repro.workloads import single_entry_definition

DURATION = units.ms_to_ticks(500)


def run_rd():
    rd = ResourceDistributor(sim=SimConfig(seed=1))
    threads = [rd.admit(busyloop_definition(f"t{i}")) for i in range(3)]
    rd.run_for(DURATION)
    admitted = len(threads)
    useful = sum(rd.trace.busy_ticks(t.tid) for t in threads) / DURATION
    return admitted, miss_rate(rd.trace), useful, "policy box picks who sheds"


def run_baseline(cls, note):
    system = cls(sim=SimConfig(seed=1))
    threads = []
    denied = 0
    for i in range(3):
        try:
            threads.append(system.admit(single_entry_definition(f"t{i}", 10, 0.5)))
        except AdmissionError:
            denied += 1
    system.run_for(DURATION)
    useful = sum(system.trace.busy_ticks(t.tid) for t in threads) / DURATION
    return len(threads), miss_rate(system.trace), useful, note


def main() -> None:
    rows = []
    admitted, misses, useful, note = run_rd()
    rows.append(["ETI Resource Distributor", admitted, f"{misses:.0%}", f"{useful:.0%}", note])

    for cls, note in [
        (NaiveEdfSystem, "domino misses in overload"),
        (SmartSystem, "fair share starves every frame"),
        (ReservesSystem, "over-reservation denies admission"),
        (RialtoSystem, "victim picked by arrival order"),
    ]:
        admitted, misses, useful, _ = run_baseline(cls, note)
        rows.append([cls.__name__.replace("System", ""), admitted, f"{misses:.0%}", f"{useful:.0%}", note])

    print("Offered load: 3 tasks x 50 % @ 10 ms (150 % of the machine)\n")
    print(
        format_table(
            ["Scheduler", "Admitted", "Miss rate", "Useful CPU", "Failure mode"],
            rows,
        )
    )
    print(
        "\nOnly the Resource Distributor combines full admission, zero"
        "\nmisses, and near-full useful utilization — by shedding load in"
        "\nthe discrete steps the applications themselves declared."
    )


if __name__ == "__main__":
    main()
