#!/usr/bin/env python3
"""The paper's section 5.3 scenario: DVD study session + teleconference.

A user studies multimedia data from a DVD while waiting for a
teleconferencing call.  Until the phone rings, the full machine belongs
to the DVD; afterwards the modem, teleconferencing renderer, and DVD
share, with the DVD shedding load.  The quiescent-task model makes this
work in any start order and without terminating anything.

Run:  python examples/settop_box.py
"""

from repro import ResourceDistributor, units
from repro.core.threads import ThreadState
from repro.metrics import qos_timeline
from repro.tasks.ac3 import Ac3Decoder
from repro.tasks.graphics3d import Renderer3D
from repro.tasks.modem import Modem
from repro.tasks.mpeg import MpegDecoder
from repro.viz import render_gantt

RING_MS = 300


def main() -> None:
    rd = ResourceDistributor()
    mpeg = MpegDecoder("DVD-video")
    ac3 = Ac3Decoder("DVD-audio")
    renderer = Renderer3D("Teleconf", use_scaler=False)
    modem = Modem("Modem")

    video = rd.admit(mpeg.definition())
    audio = rd.admit(ac3.definition())
    teleconf = rd.admit(renderer.definition())
    phone = rd.admit(modem.definition(start_quiescent=True))  # waiting...

    names = {
        video.tid: "DVD-video",
        audio.tid: "DVD-audio",
        teleconf.tid: "Teleconf",
        phone.tid: "Modem",
    }

    print("Before the call (modem admitted but quiescent):")
    print(rd.current_grant_set.describe())

    rd.at(units.ms_to_ticks(RING_MS), lambda: rd.wake(phone.tid), "phone rings")
    rd.run_for(units.sec_to_ticks(1))

    print(f"\nPhone rang at t = {RING_MS} ms; modem state: {phone.state.value}")
    print("\nAfter the call (everyone shares; DVD shed load):")
    print(rd.current_grant_set.describe())

    print(f"\nDeadline misses across the whole run: {len(rd.trace.misses())}")
    print(f"I frames lost by the DVD: {mpeg.stats.i_frames_lost} (must be 0)")
    print(f"B frames shed by the DVD: {mpeg.stats.dropped['B']}")

    print("\nDVD-video QOS timeline (time, resource-list entry, rate):")
    for time, entry, rate in qos_timeline(rd.trace, video.tid):
        print(f"  t={units.ticks_to_ms(time):7.1f} ms  entry #{entry}  {rate:5.1%}")

    window = units.ms_to_ticks(100)
    ring = units.ms_to_ticks(RING_MS)
    print("\nSchedule around the phone call:")
    print(render_gantt(rd.trace, names, ring - window // 2, ring + window, width=90))


if __name__ == "__main__":
    main()
