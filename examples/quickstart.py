#!/usr/bin/env python3
"""Quickstart: admit two multimedia tasks and inspect the schedule.

Demonstrates the core loop of the library: build task definitions with
resource lists (discrete QOS levels), admit them through the Resource
Distributor, run the simulation, and read the trace.

Run:  python examples/quickstart.py
"""

from repro import ResourceDistributor, units
from repro.metrics import miss_rate, utilization
from repro.tasks.ac3 import Ac3Decoder
from repro.tasks.mpeg import MpegDecoder
from repro.viz import render_gantt


def main() -> None:
    rd = ResourceDistributor()  # simulated MAP1000, paper-calibrated costs

    # Two real applications from the paper: an MPEG video decoder
    # (Table 2's resource list) and an AC3 audio decoder (~12 % CPU).
    mpeg = MpegDecoder("MPEG")
    ac3 = Ac3Decoder("AC3")
    video = rd.admit(mpeg.definition())
    audio = rd.admit(ac3.definition())

    print("Admitted grant set:")
    print(rd.current_grant_set.describe())

    rd.run_for(units.sec_to_ticks(1))

    print(f"\nSimulated 1 s — now t = {units.ticks_to_ms(rd.now):.0f} ms")
    print(f"deadline misses: {len(rd.trace.misses())} (admitted == guaranteed)")
    print(f"miss rate:       {miss_rate(rd.trace):.1%}")
    print(f"frames decoded:  {mpeg.stats.total_decoded} video, "
          f"{ac3.stats.total_decoded if hasattr(ac3.stats, 'total_decoded') else ac3.stats.total} audio")

    print("\nCPU utilization (thread id -> share):")
    for tid, share in utilization(rd.trace).items():
        name = {video.tid: "MPEG", audio.tid: "AC3", -1: "switch overhead", 0: "idle"}.get(
            tid, f"thread {tid}"
        )
        print(f"  {name:>16}: {share:6.1%}")

    print("\nFirst 100 ms of the schedule:")
    print(
        render_gantt(
            rd.trace,
            {video.tid: "MPEG", audio.tid: "AC3"},
            0,
            units.ms_to_ticks(100),
            width=90,
        )
    )


if __name__ == "__main__":
    main()
