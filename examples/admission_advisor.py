#!/usr/bin/env python3
"""What-if admission analysis: preview before you commit.

A set-top box is decoding a DVD (video + audio) when the user asks to
start a game (a heavy 3D task).  Before admitting it, the installer
previews the consequences with ``admission_preview`` — who would shed
load, to which level — and cross-checks the schedulability math from
``repro.analysis``.  Then it admits for real and shows the prediction
coming true.

Run:  python examples/admission_advisor.py
"""

from repro import ResourceDistributor, units
from repro.analysis import (
    PeriodicTask,
    admission_preview,
    edf_feasible,
    rm_feasible_exact,
    utilization_of,
)
from repro.tasks.ac3 import Ac3Decoder
from repro.tasks.graphics3d import Renderer3D
from repro.tasks.mpeg import MpegDecoder


def main() -> None:
    rd = ResourceDistributor()
    mpeg = MpegDecoder("DVD-video")
    ac3 = Ac3Decoder("DVD-audio")
    video = rd.admit(mpeg.definition())
    audio = rd.admit(ac3.definition())
    rd.run_for(units.ms_to_ticks(200))

    game = Renderer3D("Game", use_scaler=False)
    game_def = game.definition()

    print("Currently running:")
    print(rd.current_grant_set.describe())

    preview = admission_preview(rd, game_def)
    print(f"\nPreview of admitting {game_def.name!r}:")
    print(f"  admissible: {preview.admissible}")
    print(
        f"  newcomer would start at entry #{preview.newcomer_index} "
        f"({preview.newcomer_rate:.1%})"
    )
    for change in preview.changes:
        arrow = "↓" if change.degraded else "="
        print(
            f"  {change.name:>10}: {change.current_rate:6.1%} {arrow} "
            f"{change.predicted_rate:6.1%}"
        )

    # Cross-check with the schedulability math on the predicted grants.
    tasks = [
        PeriodicTask(period=900_000, cpu=300_000, name="video-max"),
        PeriodicTask(period=units.ms_to_ticks(32), cpu=round(units.ms_to_ticks(32) * 0.12)),
        PeriodicTask(period=2_700_000, cpu=1_080_000, name="game-40%"),
    ]
    print(
        f"\nOffline check: utilization of the predicted set = "
        f"{utilization_of(tasks):.1%}, EDF feasible: {edf_feasible(tasks)}, "
        f"RM feasible (exact): {rm_feasible_exact(tasks)}"
    )

    thread = rd.admit(game_def)
    rd.run_for(units.sec_to_ticks(1))
    print("\nAfter admitting for real:")
    print(rd.current_grant_set.describe())
    match = thread.grant.entry_index == preview.newcomer_index
    print(f"\nprediction held: {match};  deadline misses: {len(rd.trace.misses())}")


if __name__ == "__main__":
    main()
