#!/usr/bin/env python3
"""Two live MPEG transport streams (sections 3.1 + 5.4, end to end).

The first stream's TCI clock *is* the scheduling timebase, so its
decoder needs no synchronization.  A second stream arrives on its own
crystal, drifting 2000 ppm fast; its decoder declares a conservative
period and phase-locks with measured InsertIdleCycles, so its bounded
frame buffer never overflows — and no I frame is ever lost.  An
unsynchronized control decoder on the same drift overflows its buffer
and drops whole frames — run long enough, one of them is an I frame
("a half-second loss of video is noticeable and unacceptable").

Run:  python examples/dual_stream.py
"""

from repro import ResourceDistributor, units
from repro.config import MachineConfig, SimConfig
from repro.tasks.mpeg import MpegDecoder
from repro.tasks.stream import LiveMpegDecoder, TransportStream

HORIZON_SEC = 20.0
SKEW_PPM = 20_000.0  # the second stream's crystal runs 2 % fast


def main() -> None:
    rd = ResourceDistributor(
        machine=MachineConfig.ideal(), sim=SimConfig(seed=12)
    )
    horizon = units.sec_to_ticks(HORIZON_SEC)

    # Stream 1: the timebase itself (the paper "partially finessed" the
    # problem by scheduling on this clock).
    primary = MpegDecoder("stream1")
    rd.admit(primary.definition())

    # Stream 2, synchronized in software.
    stream_sync = TransportStream("stream2", skew_ppm=SKEW_PPM, buffer_capacity=4)
    decoder_sync = LiveMpegDecoder(stream_sync, synchronize=True, max_skew_ppm=25_000)
    rd.admit(decoder_sync.definition())
    stream_sync.attach(rd.kernel, horizon)

    # Stream 3: identical drift, no synchronization (the control).
    stream_raw = TransportStream("stream3", skew_ppm=SKEW_PPM, buffer_capacity=4)
    decoder_raw = LiveMpegDecoder(stream_raw, synchronize=False)
    rd.admit(decoder_raw.definition())
    stream_raw.attach(rd.kernel, horizon)

    rd.run_until(horizon)

    print(f"After {HORIZON_SEC:.0f} s with the second/third crystals "
          f"{SKEW_PPM:.0f} ppm fast:\n")
    for label, stream, decoder in (
        ("synchronized", stream_sync, decoder_sync),
        ("unsynchronized", stream_raw, decoder_raw),
    ):
        print(f"  {label} decoder:")
        print(f"    frames delivered : {stream.stats.delivered}")
        print(f"    decoded          : {decoder.stats.total_decoded}")
        print(f"    buffer overflows : {stream.stats.total_overflow}")
        print(f"    I frames lost    : {stream.stats.overflow_dropped['I']}")
        print(f"    max buffer depth : {decoder.stats.max_depth_seen}")
    print(f"\n  stream 1 (timebase) decoded {primary.stats.total_decoded} frames, "
          f"lost {primary.stats.i_frames_lost} I frames")
    print(f"  deadline misses across all three: {len(rd.trace.misses())}")


if __name__ == "__main__":
    main()
