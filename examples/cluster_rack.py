#!/usr/bin/env python3
"""A rack of set-top boxes behind one admission broker.

Four Resource Distributor nodes run in lockstep; a cluster broker
places each set-top-box session (MPEG video + AC-3 audio) on a node,
adjusts per-node weights from periodic load reports, and migrates a
task if a node stays overloaded.  The message layer between broker and
nodes has configurable latency and (optionally) drops, yet the run is
fully deterministic: the same seed always produces byte-identical
metrics JSON — the CI determinism gate runs this script twice and
compares the bytes.

Run:  python examples/cluster_rack.py [--seed N] [--drop-rate R] [--json]
      python examples/cluster_rack.py --obs-out /tmp/rack-obs
"""

import argparse

from repro.cluster import cluster_metrics_json, cluster_report
from repro.obs.session import ObsSession
from repro.scenarios import cluster_rack


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--policy", default="aimd")
    parser.add_argument("--drop-rate", type=float, default=0.1)
    parser.add_argument(
        "--json", action="store_true", help="emit canonical metrics JSON only"
    )
    parser.add_argument(
        "--obs-out",
        metavar="DIR",
        help="write events.jsonl / metrics.prom / trace.perfetto.json to DIR",
    )
    args = parser.parse_args()

    session = ObsSession() if args.obs_out else None
    sim = cluster_rack(
        seed=args.seed,
        nodes=args.nodes,
        policy=args.policy,
        drop_rate=args.drop_rate,
        obs=session,
    )
    sim.run_until(sim.horizon)

    if session is not None:
        for path in session.write(args.obs_out, sim.now).values():
            print(f"wrote {path}")
        print(session.summary())

    if args.json:
        print(cluster_metrics_json(sim), end="")
    else:
        print(cluster_report(sim))
    return 0 if all(
        node.rd.sanitizer is None or node.rd.sanitizer.ok
        for node in sim.nodes.values()
    ) else 1


if __name__ == "__main__":
    raise SystemExit(main())
