#!/usr/bin/env python3
"""Clock synchronization (section 5.4): a second MPEG transport stream.

The scheduler's timebase is the first stream's 27 MHz TCI clock.  A
second stream arrives with its own TCI clock that drifts (here: 800 ppm
slow, then wandering fast).  The decoder estimates the skew from paired
clock readings and uses InsertIdleCycles to postpone period starts,
keeping its decode phase locked to the stream — while an identical
unsynchronized decoder drifts a full frame out of phase.

Run:  python examples/clock_drift.py
"""

from repro import ResourceDistributor, TaskDefinition, units
from repro.core.clock_sync import SkewEstimator, postpone_for_period
from repro.core.resource_list import ResourceList, ResourceListEntry
from repro.sim.clock import TCIClock
from repro.tasks.base import Compute, DonePeriod, InsertIdleCycles

FRAME_PERIOD = 900_000  # 30 fps on the nominal clock
DECODE_COST = 150_000


class StreamDecoder:
    """Decoder for one transport stream, optionally phase-locked."""

    def __init__(self, name: str, stream_clock: TCIClock, synchronize: bool) -> None:
        self.name = name
        self.clock = stream_clock
        self.synchronize = synchronize
        self.estimator = SkewEstimator(stream_clock)
        self.period_starts: list[int] = []

    def decode(self, ctx):
        self.period_starts.append(ctx.delivery.period_start)
        yield Compute(DECODE_COST)
        # Re-estimate the skew from paired readings each period.
        self.estimator.sample(ctx.now)
        if self.synchronize and self.estimator.ready:
            skew = self.estimator.estimate_ppm()
            yield InsertIdleCycles(
                postpone_for_period(FRAME_PERIOD, FRAME_PERIOD, skew)
            )
        yield DonePeriod()

    def definition(self) -> TaskDefinition:
        return TaskDefinition(
            name=self.name,
            resource_list=ResourceList(
                [ResourceListEntry(FRAME_PERIOD, DECODE_COST, self.decode, self.name)]
            ),
        )

    def phase_error_frames(self, now: int) -> float:
        """How far decode phase has drifted from the stream, in frames."""
        if not self.period_starts:
            return 0.0
        k = len(self.period_starts) - 1
        # Where the k-th frame actually is on the master timeline: the
        # stream clock advances (1+skew) per master tick.
        stream_reading = self.clock.read(self.period_starts[-1])
        return (stream_reading - k * FRAME_PERIOD) / FRAME_PERIOD


def main() -> None:
    rd = ResourceDistributor()
    stream2 = TCIClock("stream2-tci", skew_ppm=-800.0)

    synced = StreamDecoder("synced", stream2, synchronize=True)
    unsynced = StreamDecoder("unsynced", stream2, synchronize=False)
    rd.admit(synced.definition())
    rd.admit(unsynced.definition())

    # The stream's crystal wanders mid-run, as real TCI clocks do.
    rd.at(
        units.sec_to_ticks(10),
        lambda: stream2.set_skew_ppm(500.0, rd.now),
        "stream clock wanders fast",
    )

    for checkpoint_s in (5, 10, 15, 20):
        rd.run_until(units.sec_to_ticks(checkpoint_s))
        print(
            f"t={checkpoint_s:>2d} s  phase error: "
            f"synced {synced.phase_error_frames(rd.now):+7.3f} frames, "
            f"unsynced {unsynced.phase_error_frames(rd.now):+7.3f} frames"
        )

    print(
        "\nThe synchronized decoder holds its phase within a fraction of"
        "\na frame through both drift regimes; the unsynchronized decoder"
        "\naccumulates error and would duplicate or drop whole frames."
        f"\nDeadline misses: {len(rd.trace.misses())} — postponing periods"
        "\nnever jeopardizes other tasks' guarantees."
    )


if __name__ == "__main__":
    main()
