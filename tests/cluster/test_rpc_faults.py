"""RPC fault paths with telemetry attached: retry exhaustion, duplicate
delivery (idempotency), jitter=0 determinism, exactly-once event counts."""

from collections import Counter

from repro import units
from repro.cluster import ClusterSimulation
from repro.cluster.broker import BROKER, ClusterBroker
from repro.cluster.node import ClusterNode
from repro.cluster.placement import make_policy
from repro.config import ContextSwitchCosts, MachineConfig, SimConfig
from repro.obs.session import ObsSession
from repro.sim.messages import MessageBus
from repro.sim.rng import RngRegistry
from repro.workloads import single_entry_definition


def ms(x):
    return units.ms_to_ticks(x)


QUIET = MachineConfig(switch_costs=ContextSwitchCosts.zero())


def definition(name="a", period_ms=30, rate=0.3):
    return single_entry_definition(name, period_ms, rate)


def rpc_actions(session, kind="admit"):
    """action -> count over the session's RPC events of one message kind."""
    return Counter(
        e.action for e in session.collector.of_type("rpc") if e.kind == kind
    )


class TestRetryBudget:
    def make_broker(self, nodes=2):
        """A broker wired to a bus nobody drains: every RPC times out."""
        session = ObsSession()
        bus = MessageBus(RngRegistry(7).stream("bus"), latency_ticks=27)
        bus.obs = session.bus
        broker = ClusterBroker(
            bus,
            {f"node{i:02d}": 0.96 for i in range(nodes)},
            make_policy("first-fit"),
            obs=session,
        )
        return session, bus, broker

    def drain_timeouts(self, broker):
        now = 0
        while not broker.idle:
            now = broker.next_deadline()
            broker.check_timeouts(now)
        return now

    def test_exhausted_budget_fails_over_then_denies(self):
        session, bus, broker = self.make_broker(nodes=2)
        broker.submit("a", definition("a"), 0)
        self.drain_timeouts(broker)
        # 3 transmissions per node (1 original + 2 retries), both nodes
        # tried, then a cluster-wide denial.
        assert broker.stats.retries >= 4
        assert broker.stats.timeouts >= 2
        assert broker.stats.denied == 1
        assert broker.denials == [("a", "no candidate nodes")]
        assert broker.node_of("a") is None

    def test_retry_and_timeout_telemetry_matches_the_stats(self):
        session, bus, broker = self.make_broker(nodes=2)
        broker.submit("a", definition("a"), 0)
        self.drain_timeouts(broker)
        events = session.collector.of_type("rpc")
        assert Counter(e.action for e in events)["retry"] == broker.stats.retries
        assert Counter(e.action for e in events)["timeout"] == broker.stats.timeouts
        admit = rpc_actions(session, "admit")
        # Per node: attempts 2 and 3 are retries, then one timeout.
        assert admit["retry"] == 4
        assert admit["timeout"] == 2
        retry_attempts = sorted(
            e.attempt for e in events if e.action == "retry" and e.kind == "admit"
        )
        assert retry_attempts == [2, 2, 3, 3]

    def test_failed_operation_is_one_span_tree(self):
        """Both node attempts hang off the single place:a root span, so
        the fail-over chain renders as one causal tree."""
        session, bus, broker = self.make_broker(nodes=2)
        broker.submit("a", definition("a"), 0)
        end = self.drain_timeouts(broker)
        (root,) = [s for s in session.spans.roots() if s.name == "place:a"]
        assert root.status == "failed"
        children = session.spans.children_of(root)
        assert [s.name for s in children] == ["admit:node00", "admit:node01"]
        assert all(s.status == "timeout" for s in children)
        assert {s.trace_id for s in children} == {root.trace_id}
        session.spans.finish_open(end)  # cleanup removes never finish
        # Every bus send of this operation carries the attempt's trace id.
        sends = [
            e
            for e in session.collector.of_type("rpc")
            if e.action == "send" and e.kind == "admit"
        ]
        assert sends and all(e.trace_id == root.trace_id for e in sends)


class TestDuplicateDelivery:
    def make_node(self):
        session = ObsSession()
        node = ClusterNode(
            "node00",
            machine=QUIET,
            sim=SimConfig(horizon=ms(300), seed=1),
            sanitize=False,
            obs=session.scoped("node00"),
        )
        return session, node

    def test_duplicate_admit_is_served_from_the_reply_cache(self):
        """A broker retry after a lost *reply* re-delivers the same
        request id; the node must not admit twice."""
        session, node = self.make_node()
        payload = {"request_id": "admit:a:1", "task": "a", "definition": definition("a")}
        first = node.handle("admit", payload, now=ms(1))
        duplicate = node.handle("admit", payload, now=ms(6))
        assert duplicate == first
        assert duplicate[1]["ok"] is True
        # One admission side effect, not two.
        assert len(node.rd.resource_manager.admitted_ids()) == 1
        admissions = session.collector.of_type("admission")
        assert len(admissions) == 1

    def test_dedup_telemetry_fires_once_per_duplicate(self):
        session, node = self.make_node()
        payload = {"request_id": "admit:a:1", "task": "a", "definition": definition("a")}
        node.handle("admit", payload, now=ms(1))
        node.handle("admit", payload, now=ms(6))
        node.handle("admit", payload, now=ms(11))
        dedups = [
            e for e in session.collector.of_type("rpc") if e.action == "dedup"
        ]
        assert [e.time for e in dedups] == [ms(6), ms(11)]
        assert all(e.request_id == "admit:a:1" for e in dedups)
        assert all(e.node == "node00" for e in dedups)

    def test_duplicate_remove_is_idempotent_too(self):
        session, node = self.make_node()
        node.handle(
            "admit",
            {"request_id": "admit:a:1", "task": "a", "definition": definition("a")},
            now=ms(1),
        )
        remove = {"request_id": "remove:a:2", "task": "a"}
        first = node.handle("remove", remove, now=ms(40))
        duplicate = node.handle("remove", remove, now=ms(45))
        assert duplicate == first
        assert not node.has_task("a")


class TestExactlyOnce:
    def run_cluster(self, seed=7, drop_rate=0.0, jitter_ticks=0):
        session = ObsSession()
        sim = ClusterSimulation(
            node_count=2,
            seed=seed,
            policy="aimd",
            horizon=ms(300),
            machine=QUIET,
            jitter_ticks=jitter_ticks,
            drop_rate=drop_rate,
            obs=session,
        )
        for i in range(4):
            sim.submit_at(ms(1 + 3 * i), f"t{i}", definition(f"t{i}"))
        sim.run_until(sim.horizon)
        return session, sim

    def test_fault_free_run_sends_each_logical_rpc_once(self):
        session, sim = self.run_cluster(drop_rate=0.0)
        events = session.collector.of_type("rpc")
        assert not [e for e in events if e.action in ("retry", "timeout", "dedup", "drop")]
        for kind in ("admit", "admit-reply"):
            per_request = Counter(
                e.request_id for e in events if e.kind == kind and e.action == "send"
            )
            assert per_request  # the workload exercised this kind
            assert set(per_request.values()) == {1}
            received = Counter(
                e.request_id for e in events if e.kind == kind and e.action == "receive"
            )
            assert received == per_request

    def test_faulty_run_accounts_every_transmission(self):
        """With drops, send = receive + drop per message kind, and every
        duplicate admission is absorbed — never a double admit."""
        session, sim = self.run_cluster(seed=3, drop_rate=0.25)
        events = session.collector.of_type("rpc")
        actions = Counter(e.action for e in events)
        assert actions["drop"] > 0
        # Anything neither received nor dropped is still queued at the
        # horizon (sent but not yet due).
        assert actions["send"] == actions["receive"] + actions["drop"] + len(sim.bus)
        assert sim.broker.stats.admitted == 4
        for i in range(4):
            holders = [n for n in sim.nodes.values() if n.has_task(f"t{i}")]
            assert len(holders) == 1

    def test_jitter_zero_same_seed_runs_are_byte_identical(self):
        def artifacts(seed):
            session, sim = self.run_cluster(seed=seed, drop_rate=0.1, jitter_ticks=0)
            return (
                session.events_jsonl(),
                session.metrics_prom(),
                session.perfetto_json(sim.now),
            )

        assert artifacts(7) == artifacts(7)
        # Different seed, different fault pattern — the artifacts differ.
        assert artifacts(7)[0] != artifacts(8)[0]
