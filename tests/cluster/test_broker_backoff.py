"""Broker retry backoff (opt-in) and idempotency-token exception safety."""

import random

import pytest

from repro import units
from repro.cluster.broker import BrokerConfig, ClusterBroker
from repro.cluster.placement import make_policy
from repro.errors import SimulationError
from repro.obs.session import ObsSession
from repro.sim.messages import MessageBus
from repro.sim.rng import RngRegistry
from repro.workloads import single_entry_definition


def make_broker(config=None, retry_rng=None, nodes=1):
    """A broker over a bus nobody drains, so every RPC times out."""
    session = ObsSession()
    bus = MessageBus(RngRegistry(7).stream("bus"), latency_ticks=27)
    bus.obs = session.bus
    broker = ClusterBroker(
        bus,
        {f"node{i:02d}": 0.96 for i in range(nodes)},
        make_policy("first-fit"),
        config,
        obs=session,
        retry_rng=retry_rng,
    )
    return session, bus, broker


def retry_times(session, broker, kind="admit"):
    """Drive the timeout loop; return the time of each admit retransmission.

    The exhausted admit triggers a cleanup ``remove`` RPC with its own
    retries, so the schedule is read from telemetry filtered to one kind
    rather than inferred from the aggregate retry counter.
    """
    while not broker.idle:
        broker.check_timeouts(broker.next_deadline())
    return [
        e.time
        for e in session.collector.of_type("rpc")
        if e.kind == kind and e.action == "retry"
    ]


class TestRetryBackoff:
    def test_default_config_keeps_the_fixed_cadence(self):
        timeout = units.ms_to_ticks(5)
        session, bus, broker = make_broker(BrokerConfig(max_attempts_per_node=4))
        broker.submit("a", single_entry_definition("a", 30, 0.3), 0)
        times = retry_times(session, broker)
        # 3 retries (4 transmissions), each exactly one timeout apart.
        assert times == [timeout, 2 * timeout, 3 * timeout]

    def test_backoff_factor_spreads_the_retries(self):
        timeout = units.ms_to_ticks(5)
        config = BrokerConfig(max_attempts_per_node=4, retry_backoff_factor=2.0)
        session, bus, broker = make_broker(config)
        broker.submit("a", single_entry_definition("a", 30, 0.3), 0)
        times = retry_times(session, broker)
        # Delays 1t, 2t, 4t after transmissions 1, 2, 3.
        assert times == [timeout, 3 * timeout, 7 * timeout]

    def test_backoff_cap_bounds_the_gap(self):
        timeout = units.ms_to_ticks(5)
        config = BrokerConfig(
            max_attempts_per_node=5,
            retry_backoff_factor=2.0,
            retry_backoff_cap_ticks=2 * timeout,
        )
        session, bus, broker = make_broker(config)
        broker.submit("a", single_entry_definition("a", 30, 0.3), 0)
        times = retry_times(session, broker)
        # Delays 1t, 2t, then capped at 2t.
        assert times == [timeout, 3 * timeout, 5 * timeout, 7 * timeout]

    def test_jittered_retries_are_reproducible_from_the_seed(self):
        config = BrokerConfig(
            max_attempts_per_node=4,
            retry_backoff_factor=2.0,
            retry_jitter_ticks=units.ms_to_ticks(1),
        )

        def run():
            session, bus, broker = make_broker(
                config, retry_rng=RngRegistry(13).stream("cluster.broker.retry")
            )
            broker.submit("a", single_entry_definition("a", 30, 0.3), 0)
            return retry_times(session, broker)

        first, second = run(), run()
        assert first == second
        # The jitter actually moved at least one retry off the fixed grid.
        timeout = units.ms_to_ticks(5)
        assert first != [timeout, 3 * timeout, 7 * timeout]

    def test_jitter_without_a_stream_is_rejected_at_first_retry(self):
        config = BrokerConfig(retry_jitter_ticks=10)
        session, bus, broker = make_broker(config)
        with pytest.raises(SimulationError):
            broker.submit("a", single_entry_definition("a", 30, 0.3), 0)


class TestTransmitExceptionSafety:
    def test_raising_send_releases_the_admit_token(self):
        session, bus, broker = make_broker()
        with pytest.raises(SimulationError):
            # A negative send time makes MessageBus.send raise after the
            # token was registered; the broker must unwind it.
            broker.submit("a", single_entry_definition("a", 30, 0.3), -1)
        assert broker.idle
        assert broker.next_deadline() is None

    def test_raising_send_releases_the_remove_token(self):
        session, bus, broker = make_broker()
        broker.submit("a", single_entry_definition("a", 30, 0.3), 0)
        # Resolve the admission by hand so a placement exists.
        request_id = next(iter(broker._pending))
        pending = broker._pending[request_id]
        broker._admit_succeeded(pending, 0)
        del broker._pending[request_id]
        with pytest.raises(SimulationError):
            broker.withdraw("a", -1)
        assert broker.idle
