"""Placement policies: pure ordering logic over broker node views."""

import pytest

from repro.cluster import POLICY_NAMES, NodeView, make_policy
from repro.errors import ReproError


def views(*specs):
    """specs: (name, headroom, weight) with capacity fixed at 0.96."""
    return [
        NodeView(name=name, index=i, capacity=0.96, headroom=headroom, weight=weight)
        for i, (name, headroom, weight) in enumerate(specs)
    ]


class TestFirstFit:
    def test_orders_by_index_regardless_of_load(self):
        policy = make_policy("first-fit")
        order = policy.order(
            views(("a", 0.1, 1.0), ("b", 0.9, 2.0), ("c", 0.5, 0.1)), 0.3
        )
        assert order == ["a", "b", "c"]


class TestBestFit:
    def test_tightest_fitting_node_first(self):
        policy = make_policy("best-fit")
        order = policy.order(
            views(("a", 0.9, 1.0), ("b", 0.35, 1.0), ("c", 0.5, 1.0)), 0.3
        )
        # b leaves 0.05 residual, c leaves 0.2, a leaves 0.6.
        assert order == ["b", "c", "a"]

    def test_non_fitting_nodes_rank_last_but_stay_candidates(self):
        policy = make_policy("best-fit")
        order = policy.order(
            views(("a", 0.1, 1.0), ("b", 0.35, 1.0), ("c", 0.2, 1.0)), 0.3
        )
        # The broker's view may be stale, so a/c are still tried — after
        # every node believed to fit, roomiest first.
        assert order == ["b", "c", "a"]


class TestAimd:
    def test_highest_weight_first(self):
        policy = make_policy("aimd")
        order = policy.order(
            views(("a", 0.5, 0.2), ("b", 0.5, 1.5), ("c", 0.5, 0.9)), 0.1
        )
        assert order == ["b", "c", "a"]

    def test_headroom_breaks_weight_ties(self):
        policy = make_policy("aimd")
        order = policy.order(
            views(("a", 0.2, 1.0), ("b", 0.7, 1.0), ("c", 0.4, 1.0)), 0.1
        )
        assert order == ["b", "c", "a"]


class TestRegistry:
    def test_policy_names_cover_the_three_policies(self):
        assert POLICY_NAMES == ("aimd", "best-fit", "first-fit")

    def test_unknown_policy_raises(self):
        with pytest.raises(ReproError, match="unknown placement policy"):
            make_policy("round-robin")

    def test_cli_choices_match_registry(self):
        from repro.cli import build_parser

        parser = build_parser()
        text = parser.format_help()
        # The cluster subcommand exists; its --policy choices are the
        # registry's names (checked via a parse round-trip).
        args = parser.parse_args(["cluster", "--policy", "best-fit"])
        assert args.policy == "best-fit"
        for name in POLICY_NAMES:
            assert parser.parse_args(["cluster", "--policy", name]).policy == name
        assert "cluster" in text
