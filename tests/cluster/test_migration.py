"""Migration: sustained overload moves a task; never-terminated holds."""

from repro import units
from repro.cluster import BrokerConfig, ClusterSimulation
from repro.config import ContextSwitchCosts, MachineConfig
from repro.tasks.mpeg import MpegDecoder

QUIET = MachineConfig(switch_costs=ContextSwitchCosts.zero())


def ms(x):
    return units.ms_to_ticks(x)


def overloaded_sim(
    migrate=True, nodes=2, decoders=4, seed=7, latency_ticks=None, **broker_kwargs
):
    """node00 packed with multi-level MPEG decoders, node01 empty.

    Four decoders want 4 x 33.3% maxima on a 96% node, so grant control
    pins some at a degraded entry — the sustained-overload signal."""
    sim = ClusterSimulation(
        node_count=nodes,
        seed=seed,
        policy="first-fit",
        horizon=ms(800),
        epoch_ticks=ms(50),
        latency_ticks=latency_ticks,
        machine=QUIET,
        broker_config=BrokerConfig(migrate=migrate, **broker_kwargs),
    )
    for i in range(decoders):
        decoder = MpegDecoder(f"mpeg{i}")
        sim.submit_at(ms(1 + i), decoder.name, decoder.definition())
    return sim


class TestMigrationTrigger:
    def test_sustained_overload_migrates_a_task(self):
        sim = overloaded_sim()
        sim.run_until(sim.horizon)
        stats = sim.broker.stats
        assert stats.migrations_started >= 1
        assert stats.migrations_completed >= 1
        moved = [t for t, p in sim.broker.placements.items() if p.migrations]
        assert moved
        # The overload resolved: the 4 decoders end up spread over both
        # nodes (2+2 is the stable split), books matching reality.
        per_node = {name: 0 for name in sim.nodes}
        for task, placed in sim.broker.placements.items():
            per_node[placed.node] += 1
            assert sim.nodes[placed.node].has_task(task)
        assert per_node == {"node00": 2, "node01": 2}

    def test_migration_master_switch(self):
        sim = overloaded_sim(migrate=False)
        sim.run_until(sim.horizon)
        assert sim.broker.stats.migrations_started == 0
        # Degradation still resolved the overload locally: everything
        # stays admitted on node00.
        assert all(p.node == "node00" for p in sim.broker.placements.values())

    def test_transient_overload_does_not_migrate(self):
        """The overload streak resets on a healthy report, so a node must
        stay overloaded for overload_epochs consecutive reports."""
        sim = overloaded_sim(overload_epochs=1000)
        sim.run_until(sim.horizon)
        assert sim.broker.stats.migrations_started == 0


class TestNeverTerminated:
    def test_migrated_task_never_misses_a_period(self):
        """The old grant stays live until the new node admits: across the
        move, every period of every task still delivers its grant."""
        sim = overloaded_sim()
        sim.run_until(sim.horizon)
        assert sim.broker.stats.migrations_completed >= 1
        for node in sim.nodes.values():
            assert node.rd.trace.misses() == []
            assert node.rd.sanitizer is not None and node.rd.sanitizer.ok

    def test_source_keeps_task_until_target_confirms(self):
        """With bus latency, there is a window where *both* nodes hold
        the task (target admitted, source remove still in flight) — and
        never a window where neither does."""
        sim = overloaded_sim(latency_ticks=ms(4))
        holders_per_check = []
        step = ms(1)
        for _ in range(800):
            sim.run_for(step)
            placed = set(sim.broker.placements)
            for task in placed:
                holders = [n.name for n in sim.nodes.values() if n.has_task(task)]
                holders_per_check.append((task, holders))
        assert sim.broker.stats.migrations_completed >= 1
        # A placed task is always on at least one node; transiently on two.
        assert all(holders for _, holders in holders_per_check)
        assert any(len(holders) == 2 for _, holders in holders_per_check)


class TestDegradePreferred:
    def test_no_migration_when_no_node_has_headroom(self):
        """Every node overloaded and no viable target: tasks stay
        degraded (degrade > migrate > deny) and nothing is denied."""
        sim = ClusterSimulation(
            node_count=2,
            seed=7,
            policy="first-fit",
            horizon=ms(600),
            epoch_ticks=ms(50),
            machine=QUIET,
        )
        # 5 decoders per node: committed 5 x 16.7% = 83.5%, headroom
        # 12.5% < the 16.7% minimum any migration would need.
        for n in range(2):
            for i in range(5):
                decoder = MpegDecoder(f"n{n}-mpeg{i}")
                sim.submit_at(ms(1 + i), decoder.name, decoder.definition())
        sim.run_until(sim.horizon)
        assert sim.broker.stats.denied == 0
        assert sim.broker.stats.migrations_started == 0
        for node in sim.nodes.values():
            snapshot = node.rd.capacity_snapshot()
            assert snapshot.degraded > 0  # overloaded, but everyone admitted
            assert node.rd.trace.misses() == []
