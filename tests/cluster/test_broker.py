"""ClusterBroker: placement, denial fail-over, withdrawal, RPC retries."""

from repro import units
from repro.cluster import ClusterSimulation
from repro.config import ContextSwitchCosts, MachineConfig
from repro.workloads import single_entry_definition


def ms(x):
    return units.ms_to_ticks(x)


#: Paper interrupt reserve, deterministic (free) context switches: with
#: stochastic switch costs a grant can legitimately come up a few ticks
#: short, which the strict per-node sanitizer would flag.
QUIET = MachineConfig(switch_costs=ContextSwitchCosts.zero())


def sim_with(policy="first-fit", nodes=2, seed=7, **kwargs):
    return ClusterSimulation(
        node_count=nodes,
        seed=seed,
        policy=policy,
        horizon=ms(300),
        machine=QUIET,
        **kwargs,
    )


def submit(sim, name, rate, at_ms=1, period_ms=30):
    sim.submit_at(ms(at_ms), name, single_entry_definition(name, period_ms, rate))


class TestPlacement:
    def test_first_fit_fills_node_zero_first(self):
        sim = sim_with("first-fit")
        for i in range(3):
            submit(sim, f"t{i}", 0.3, at_ms=1 + i)
        sim.run_for(ms(50))
        assert sim.broker.node_of("t0") == "node00"
        assert sim.broker.node_of("t1") == "node00"
        assert sim.broker.node_of("t2") == "node00"

    def test_aimd_spreads_across_nodes(self):
        sim = sim_with("aimd")
        for i in range(4):
            submit(sim, f"t{i}", 0.3, at_ms=1 + i)
        sim.run_for(ms(50))
        nodes = {sim.broker.node_of(f"t{i}") for i in range(4)}
        assert nodes == {"node00", "node01"}

    def test_denied_node_fails_over_to_next_candidate(self):
        """Two 0.6 tasks submitted the same tick: the broker's optimistic
        view sends both to node00; the second is denied there and must
        win admission on node01 instead."""
        sim = sim_with("first-fit")
        submit(sim, "big0", 0.6, at_ms=1)
        submit(sim, "big1", 0.6, at_ms=1)
        sim.run_for(ms(50))
        assert sim.broker.node_of("big0") == "node00"
        assert sim.broker.node_of("big1") == "node01"
        assert sim.broker.stats.denied == 0

    def test_cluster_wide_denial_when_every_node_is_full(self):
        sim = sim_with("first-fit")
        submit(sim, "a", 0.6, at_ms=1)
        submit(sim, "b", 0.6, at_ms=5)
        submit(sim, "c", 0.6, at_ms=10)  # 0.6+0.6 > 0.96 on both nodes
        sim.run_for(ms(50))
        assert sim.broker.stats.admitted == 2
        assert sim.broker.stats.denied == 1
        assert [task for task, _ in sim.broker.denials] == ["c"]
        assert sim.broker.node_of("c") is None

    def test_placements_match_node_task_maps(self):
        sim = sim_with("best-fit", nodes=3)
        for i in range(6):
            submit(sim, f"t{i}", 0.25, at_ms=1 + 2 * i)
        sim.run_until(sim.horizon)
        for task, placed in sim.broker.placements.items():
            assert sim.nodes[placed.node].has_task(task)


class TestWithdrawal:
    def test_withdraw_frees_capacity_for_later_arrivals(self):
        sim = sim_with("first-fit", nodes=1)
        submit(sim, "a", 0.6, at_ms=1)
        sim.withdraw_at(ms(100), "a")
        submit(sim, "b", 0.6, at_ms=150)
        sim.run_until(sim.horizon)
        assert sim.broker.stats.withdrawals == 1
        assert sim.broker.node_of("a") is None
        assert sim.broker.node_of("b") == "node00"
        assert sim.broker.stats.denied == 0

    def test_withdrawn_task_exits_at_its_period_boundary(self):
        """exit honours the per-period guarantee: no miss is recorded for
        the withdrawn task's final period."""
        sim = sim_with("first-fit", nodes=1)
        submit(sim, "a", 0.4, at_ms=1)
        sim.withdraw_at(ms(95), "a")
        sim.run_until(sim.horizon)
        node = sim.nodes["node00"]
        assert not node.has_task("a")
        assert node.rd.trace.misses() == []


class TestRetries:
    def test_drops_trigger_retries_not_double_admission(self):
        sim = sim_with("aimd", nodes=2, drop_rate=0.25)
        for i in range(4):
            submit(sim, f"t{i}", 0.3, at_ms=1 + 3 * i)
        sim.run_until(sim.horizon)
        stats = sim.broker.stats
        assert stats.retries > 0
        assert stats.admitted == 4
        # Idempotency: each task lives on exactly one node.
        for i in range(4):
            holders = [n for n in sim.nodes.values() if n.has_task(f"t{i}")]
            assert len(holders) == 1

    def test_fault_free_run_needs_no_retries(self):
        sim = sim_with("aimd", nodes=2, drop_rate=0.0)
        for i in range(4):
            submit(sim, f"t{i}", 0.3, at_ms=1 + 3 * i)
        sim.run_until(sim.horizon)
        assert sim.broker.stats.retries == 0
        assert sim.broker.stats.timeouts == 0


class TestLoadReports:
    def test_views_track_node_headroom_after_reports(self):
        sim = sim_with("first-fit", nodes=2)
        submit(sim, "a", 0.5, at_ms=1)
        sim.run_for(ms(120))  # at least two epochs of reports
        view = sim.broker.views["node00"]
        assert view.report is not None
        assert view.headroom == view.report.snapshot.headroom
        assert abs(view.headroom - (0.96 - 0.5)) < 1e-9
        assert sim.broker.views["node01"].headroom == 0.96
