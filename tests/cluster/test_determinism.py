"""Cluster determinism: same seed => byte-identical metrics, even lossy."""

import json

from repro import units
from repro.cluster import cluster_metrics, cluster_metrics_json, cluster_report
from repro.scenarios import cluster_rack


def run(seed=7, drop_rate=0.0, **kwargs):
    sim = cluster_rack(
        seed=seed, nodes=3, drop_rate=drop_rate, horizon_sec=0.5, **kwargs
    )
    sim.run_until(sim.horizon)
    return sim


class TestDeterminism:
    def test_same_seed_is_byte_identical(self):
        exports = [cluster_metrics_json(run(seed=7)) for _ in range(2)]
        assert exports[0] == exports[1]

    def test_same_seed_is_byte_identical_under_drops(self):
        exports = [cluster_metrics_json(run(seed=7, drop_rate=0.15)) for _ in range(2)]
        assert exports[0] == exports[1]

    def test_different_seeds_differ(self):
        assert cluster_metrics_json(run(seed=7, drop_rate=0.15)) != cluster_metrics_json(
            run(seed=8, drop_rate=0.15)
        )

    def test_export_is_valid_sorted_json(self):
        text = cluster_metrics_json(run(seed=7))
        doc = json.loads(text)
        assert json.dumps(doc, indent=2, sort_keys=True) + "\n" == text


class TestLossyGuarantees:
    def test_drops_cause_retries_but_no_broken_guarantees(self):
        """The acceptance bar: with drop-rate > 0 the broker retries (or
        times out), yet every admitted task still receives its grant in
        every period — the per-node sanitizers stay clean."""
        sim = run(seed=7, drop_rate=0.2)
        doc = cluster_metrics(sim)
        assert sim.bus.stats.dropped > 0
        assert sim.broker.stats.retries > 0
        assert doc["cluster"]["sanitizers_ok"] is True
        assert doc["cluster"]["total_misses"] == 0
        for node in sim.nodes.values():
            assert node.rd.sanitizer is not None
            assert node.rd.sanitizer.ok
            assert node.rd.trace.misses() == []

    def test_no_task_is_ever_double_placed(self):
        sim = run(seed=11, drop_rate=0.2)
        for task, placed in sim.broker.placements.items():
            holders = [n.name for n in sim.nodes.values() if n.has_task(task)]
            assert placed.node in holders

    def test_report_renders_under_loss(self):
        text = cluster_report(run(seed=7, drop_rate=0.2))
        assert "Cluster run report" in text
        assert "retries" in text
