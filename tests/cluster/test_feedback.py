"""Load feedback: AIMD weight dynamics driven by node reports."""

from repro import units
from repro.cluster import BrokerConfig, ClusterSimulation
from repro.config import ContextSwitchCosts, MachineConfig
from repro.tasks.mpeg import MpegDecoder
from repro.workloads import single_entry_definition

QUIET = MachineConfig(switch_costs=ContextSwitchCosts.zero())


def ms(x):
    return units.ms_to_ticks(x)


class TestAimdDynamics:
    def test_overloaded_node_loses_weight_idle_node_gains(self):
        sim = ClusterSimulation(
            node_count=2,
            seed=7,
            policy="first-fit",
            horizon=ms(400),
            epoch_ticks=ms(50),
            machine=QUIET,
            broker_config=BrokerConfig(migrate=False),
        )
        for i in range(4):
            decoder = MpegDecoder(f"mpeg{i}")
            sim.submit_at(ms(1 + i), decoder.name, decoder.definition())
        sim.run_until(sim.horizon)
        weights = sim.broker.weights()
        # node00 reported degraded QOS every epoch (multiplicative
        # decrease); node01 reported healthy (additive increase).
        assert weights["node00"] < 1.0
        assert weights["node01"] > 1.0

    def test_weights_stay_within_configured_bounds(self):
        config = BrokerConfig(
            migrate=False, ai_step=5.0, md_factor=0.01, weight_min=0.2, weight_max=2.0
        )
        sim = ClusterSimulation(
            node_count=2,
            seed=7,
            policy="first-fit",
            horizon=ms(600),
            epoch_ticks=ms(50),
            machine=QUIET,
            broker_config=config,
        )
        for i in range(4):
            decoder = MpegDecoder(f"mpeg{i}")
            sim.submit_at(ms(1 + i), decoder.name, decoder.definition())
        sim.run_until(sim.horizon)
        weights = sim.broker.weights()
        assert weights["node00"] == 0.2  # clamped at weight_min
        assert weights["node01"] == 2.0  # clamped at weight_max

    def test_low_headroom_counts_as_overload_without_degradation(self):
        """A node packed with single-entry tasks never degrades, but its
        headroom sits under the threshold — AIMD still sheds it."""
        sim = ClusterSimulation(
            node_count=2,
            seed=7,
            policy="first-fit",
            horizon=ms(300),
            epoch_ticks=ms(50),
            machine=QUIET,
            broker_config=BrokerConfig(overload_headroom=0.10, migrate=False),
        )
        sim.submit_at(ms(1), "big", single_entry_definition("big", 30, 0.9))
        sim.run_until(sim.horizon)
        weights = sim.broker.weights()
        assert weights["node00"] < 1.0  # headroom 0.06 < 0.10 threshold
        assert weights["node01"] > 1.0

    def test_recovery_restores_weight_additively(self):
        """After the load departs, healthy reports rebuild the weight one
        additive step per epoch."""
        config = BrokerConfig(migrate=False, ai_step=0.1, md_factor=0.5)
        sim = ClusterSimulation(
            node_count=1,
            seed=7,
            policy="first-fit",
            horizon=ms(800),
            epoch_ticks=ms(50),
            machine=QUIET,
            broker_config=config,
        )
        for i in range(4):
            decoder = MpegDecoder(f"mpeg{i}")
            sim.submit_at(ms(1 + i), decoder.name, decoder.definition())
        sim.run_for(ms(300))
        depressed = sim.broker.weights()["node00"]
        assert depressed < 1.0
        for i in range(4):
            sim.withdraw_at(sim.now + ms(1 + i), f"mpeg{i}")
        sim.run_until(sim.horizon)
        recovered = sim.broker.weights()["node00"]
        assert recovered > depressed
