"""Machine and simulation configuration validation."""

import pytest

from repro import ContextSwitchCosts, MachineConfig, SimConfig
from repro import units


class TestMachineConfig:
    def test_defaults_match_the_paper(self):
        machine = MachineConfig()
        assert machine.interrupt_reserve == 0.04
        assert machine.schedulable_capacity == pytest.approx(0.96)
        assert machine.grace_period_ticks == units.us_to_ticks(200)
        assert "ffu.video_scaler" in machine.exclusive_units

    def test_ideal_machine_is_frictionless(self):
        machine = MachineConfig.ideal()
        assert machine.interrupt_reserve == 0.0
        assert machine.switch_costs.is_zero
        assert machine.overlap_override_ticks == 0

    def test_reserve_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(interrupt_reserve=1.0)
        with pytest.raises(ValueError):
            MachineConfig(interrupt_reserve=-0.01)

    def test_negative_ticks_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(overlap_override_ticks=-1)
        with pytest.raises(ValueError):
            MachineConfig(grace_period_ticks=-1)

    def test_bandwidth_capacity_validated(self):
        with pytest.raises(ValueError):
            MachineConfig(bandwidth_capacity=0.0)
        with pytest.raises(ValueError):
            MachineConfig(bandwidth_capacity=1.5)

    def test_frozen(self):
        with pytest.raises(Exception):
            MachineConfig().interrupt_reserve = 0.1


class TestSwitchCosts:
    def test_lognormal_requires_mean_at_least_median(self):
        from repro.machine.cpu import _ShiftedLognormal

        with pytest.raises(ValueError):
            _ShiftedLognormal(10.0, 20.0, 15.0)

    def test_degenerate_constant_model(self):
        import random

        from repro.machine.cpu import _ShiftedLognormal

        dist = _ShiftedLognormal(10.0, 10.0, 10.0)
        assert dist.sample_us(random.Random(0)) == 10.0


class TestSimConfig:
    def test_defaults(self):
        sim = SimConfig()
        assert sim.horizon == units.sec_to_ticks(1)
        assert sim.seed == 0

    def test_horizon_validation(self):
        with pytest.raises(ValueError):
            SimConfig(horizon=0)
