"""BENCH.json schema: shape, versioning, and the committed baseline."""

import json
from pathlib import Path

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    BenchFormatError,
    bench_entry,
    load_baseline,
    validate_payload,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_payload(**overrides):
    payload = {
        "schema_version": SCHEMA_VERSION,
        "suites": ["core"],
        "repetitions": 5,
        "calibration_s": 0.02,
        "benches": {
            "core.example": {
                "median_s": 0.1,
                "normalized": 5.0,
                "ops_per_s": 100.0,
                "samples_s": [0.1, 0.1, 0.1],
                "suite": "core",
                "ops": 10,
            }
        },
    }
    payload.update(overrides)
    return payload


class TestValidatePayload:
    def test_well_formed_passes_and_chains(self):
        payload = make_payload()
        assert validate_payload(payload) is payload

    def test_rejects_non_dict(self):
        with pytest.raises(BenchFormatError, match="must be an object"):
            validate_payload([1, 2, 3])

    def test_rejects_wrong_schema_version(self):
        with pytest.raises(BenchFormatError, match="schema_version"):
            validate_payload(make_payload(schema_version=SCHEMA_VERSION + 1))

    def test_rejects_missing_schema_version(self):
        payload = make_payload()
        del payload["schema_version"]
        with pytest.raises(BenchFormatError, match="schema_version"):
            validate_payload(payload)

    @pytest.mark.parametrize(
        "key", ["suites", "repetitions", "calibration_s", "benches"]
    )
    def test_rejects_missing_top_level_key(self, key):
        payload = make_payload()
        del payload[key]
        with pytest.raises(BenchFormatError, match=key):
            validate_payload(payload)

    @pytest.mark.parametrize("key", ["median_s", "normalized", "ops_per_s"])
    def test_rejects_bad_bench_number(self, key):
        payload = make_payload()
        payload["benches"]["core.example"][key] = "fast"
        with pytest.raises(BenchFormatError, match=key):
            validate_payload(payload)
        payload["benches"]["core.example"][key] = -1.0
        with pytest.raises(BenchFormatError, match=key):
            validate_payload(payload)


class TestLoadBaseline:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps(make_payload()))
        loaded = load_baseline(str(path))
        assert loaded["benches"]["core.example"]["normalized"] == 5.0

    def test_invalid_json_is_a_format_error(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text("{not json")
        with pytest.raises(BenchFormatError, match="not valid JSON"):
            load_baseline(str(path))


class TestCommittedBaseline:
    def test_repo_baseline_is_valid_and_covers_every_suite(self):
        from repro.bench import REGISTRY

        payload = load_baseline(str(REPO_ROOT / "BENCH.json"))
        assert sorted(payload["suites"]) == [
            "cluster",
            "core",
            "fuzz",
            "obs",
            "serve",
        ]
        assert set(payload["benches"]) == set(REGISTRY)


class TestBenchEntry:
    def test_median_and_ops(self):
        entry = bench_entry([0.2, 0.1, 0.4], ops=50, calibration_s=0.05)
        assert entry["median_s"] == pytest.approx(0.2)
        assert entry["ops_per_s"] == pytest.approx(250.0)
        assert entry["samples_s"] == [0.2, 0.1, 0.4]

    def test_normalization_divides_by_calibration(self):
        entry = bench_entry([0.3], ops=1, calibration_s=0.03)
        assert entry["normalized"] == pytest.approx(10.0)
        # The same bench on a machine 2x slower: both the sample and the
        # calibration loop double, so the normalized cost is unchanged.
        slower = bench_entry([0.6], ops=1, calibration_s=0.06)
        assert slower["normalized"] == pytest.approx(entry["normalized"])

    def test_rejects_empty_samples_and_bad_calibration(self):
        with pytest.raises(ValueError, match="at least one sample"):
            bench_entry([], ops=1, calibration_s=0.05)
        with pytest.raises(ValueError, match="calibration"):
            bench_entry([0.1], ops=1, calibration_s=0.0)
