"""The regression gate: tolerance comparison against a baseline."""

import pytest

from repro.bench import SCHEMA_VERSION, compare


def payload(benches, suites=("core",)):
    return {
        "schema_version": SCHEMA_VERSION,
        "suites": list(suites),
        "repetitions": 5,
        "calibration_s": 0.02,
        "benches": {
            name: {
                "median_s": normalized * 0.02,
                "normalized": normalized,
                "ops_per_s": 100.0,
                "suite": name.split(".")[0],
            }
            for name, normalized in benches.items()
        },
    }


class TestCompare:
    def test_identical_payloads_are_ok(self):
        base = payload({"core.a": 2.0, "core.b": 0.5})
        report = compare(base, base, tolerance=0.25)
        assert report.ok
        assert [d.status for d in report.deltas] == ["ok", "ok"]

    def test_synthetic_2x_slowdown_fails_the_gate(self):
        base = payload({"core.a": 2.0, "core.b": 0.5})
        slow = payload({"core.a": 4.0, "core.b": 1.0})
        report = compare(slow, base, tolerance=0.25)
        assert not report.ok
        assert {d.name for d in report.regressions} == {"core.a", "core.b"}
        assert all(d.ratio == pytest.approx(2.0) for d in report.regressions)
        assert "REGRESSION" in report.summary()

    def test_within_tolerance_is_ok(self):
        base = payload({"core.a": 1.0})
        report = compare(payload({"core.a": 1.24}), base, tolerance=0.25)
        assert report.ok
        report = compare(payload({"core.a": 1.26}), base, tolerance=0.25)
        assert not report.ok

    def test_improvement_is_flagged_but_ok(self):
        base = payload({"core.a": 2.0})
        report = compare(payload({"core.a": 0.5}), base, tolerance=0.25)
        assert report.ok
        assert report.deltas[0].status == "improvement"

    def test_missing_bench_fails_the_gate(self):
        base = payload({"core.a": 1.0, "core.b": 1.0})
        report = compare(payload({"core.a": 1.0}), base, tolerance=0.25)
        assert not report.ok
        assert report.missing == ["core.b"]
        assert "MISSING" in report.summary()

    def test_other_suites_in_baseline_are_ignored(self):
        base = payload(
            {"core.a": 1.0, "cluster.rack": 3.0}, suites=("core", "cluster")
        )
        current = payload({"core.a": 1.0}, suites=("core",))
        report = compare(current, base, tolerance=0.25)
        assert report.ok
        assert [d.name for d in report.deltas] == ["core.a"]
        assert report.missing == []

    def test_new_bench_without_baseline_is_extra_not_failure(self):
        base = payload({"core.a": 1.0})
        current = payload({"core.a": 1.0, "core.new": 9.0})
        report = compare(current, base, tolerance=0.25)
        assert report.ok
        assert report.extra == ["core.new"]

    def test_negative_tolerance_rejected(self):
        base = payload({"core.a": 1.0})
        with pytest.raises(ValueError, match="tolerance"):
            compare(base, base, tolerance=-0.1)
