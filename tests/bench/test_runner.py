"""The bench runner: registry, scripted-clock timing, and the CLI."""

import json

import pytest

from repro.bench import (
    REGISTRY,
    SCHEMA_VERSION,
    SUITES,
    benches_for,
    calibration_loop,
    measure_calibration,
    run_suites,
    validate_payload,
)
from repro.bench.runner import run_bench


class ScriptedTimer:
    """A fake perf_counter advancing a fixed step per call, so timing
    math is exact and no real clock is consulted."""

    def __init__(self, step_s: float) -> None:
        self.now = 0.0
        self.step = step_s

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestRegistry:
    def test_every_bench_lives_in_a_known_suite(self):
        for bench in REGISTRY.values():
            assert bench.suite in SUITES
            assert bench.name.startswith(bench.suite + ".")
            assert bench.ops > 0

    def test_benches_for_partitions_the_registry(self):
        names = [b.name for suite in SUITES for b in benches_for(suite)]
        assert sorted(names) == sorted(REGISTRY)

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown suite"):
            benches_for("warp")

    def test_core_suite_covers_the_hot_paths(self):
        names = {b.name for b in benches_for("core")}
        assert {
            "core.av_pipeline",
            "core.grant_underload",
            "core.grant_overload",
            "core.admission_burst",
            "core.admission_burst_batched",
        } <= names


class TestCalibration:
    def test_loop_is_deterministic(self):
        assert calibration_loop(1000) == calibration_loop(1000)

    def test_measure_uses_the_injected_timer(self):
        # Each sample is exactly one timer step; median of equal samples
        # is the step.
        assert measure_calibration(repetitions=3, timer=ScriptedTimer(0.5)) == 0.5


class TestRunBench:
    def test_scripted_timer_yields_exact_entries(self):
        bench = next(iter(benches_for("core")))
        entry = run_bench(bench, repetitions=4, calibration_s=0.25, timer=ScriptedTimer(0.5))
        assert entry["median_s"] == 0.5
        assert entry["normalized"] == 2.0
        assert entry["ops_per_s"] == bench.ops / 0.5
        assert len(entry["samples_s"]) == 4
        assert entry["suite"] == bench.suite


class TestRunSuites:
    def test_payload_validates_and_names_every_core_bench(self):
        payload = run_suites(["core"], repetitions=1, timer=ScriptedTimer(0.01))
        validate_payload(payload)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert set(payload["benches"]) == {b.name for b in benches_for("core")}

    def test_progress_callback_sees_each_bench(self):
        seen = []
        run_suites(
            ["obs"], repetitions=1, timer=ScriptedTimer(0.01), progress=seen.append
        )
        assert seen == [b.name for b in benches_for("obs")]


class TestCli:
    def test_bench_command_emits_valid_json_and_gates(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "BENCH.json"
        assert (
            main(
                [
                    "bench",
                    "--suite",
                    "obs",
                    "--repetitions",
                    "1",
                    "--json",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        payload = validate_payload(json.loads(out.read_text()))
        capsys.readouterr()
        # Self-comparison passes the gate ...
        assert (
            main(
                [
                    "bench",
                    "--suite",
                    "obs",
                    "--repetitions",
                    "1",
                    "--check-against",
                    str(out),
                    "--tolerance",
                    "5.0",
                ]
            )
            == 0
        )
        assert "bench gate: OK" in capsys.readouterr().out
        # ... and a synthetic 2x slowdown of the baseline-relative cost
        # (halve every baseline normalized cost) fails it.
        for entry in payload["benches"].values():
            entry["normalized"] /= 1000.0
        out.write_text(json.dumps(payload))
        assert (
            main(
                [
                    "bench",
                    "--suite",
                    "obs",
                    "--repetitions",
                    "1",
                    "--check-against",
                    str(out),
                    "--tolerance",
                    "0.25",
                ]
            )
            == 1
        )
        assert "REGRESSION" in capsys.readouterr().out
