"""Golden determinism: identical seeds produce identical runs.

Every stochastic element draws from named, seeded streams, so a run is
a pure function of (machine config, scenario, seed).  These tests hash
whole traces to catch any accidental nondeterminism (dict ordering,
id()-based tie-breaks, hidden globals) that per-field comparisons might
miss.
"""

import hashlib

import pytest

from repro import units
from repro.metrics import trace_to_json
from repro.scenarios import av_pipeline, figure4, figure5, settop, table4_trio


def fingerprint(scenario, duration_ms):
    scenario.rd.run_for(units.ms_to_ticks(duration_ms))
    return hashlib.sha256(trace_to_json(scenario.trace).encode()).hexdigest()


BUILDERS = {
    "table4": (lambda seed: table4_trio(seed=seed), 200),
    "figure4": (lambda seed: figure4(seed=seed), 200),
    "figure5": (lambda seed: figure5(seed=seed), 150),
    "settop": (lambda seed: settop(seed=seed), 400),
    "av": (lambda seed: av_pipeline(seed=seed), 300),
}


class TestSameSeedSameTrace:
    @pytest.mark.parametrize("name", sorted(BUILDERS))
    def test_repeat_runs_identical(self, name):
        builder, duration = BUILDERS[name]
        a = fingerprint(builder(5), duration)
        b = fingerprint(builder(5), duration)
        assert a == b


class TestSeedSensitivity:
    def test_calibrated_machine_runs_differ_across_seeds(self):
        # With stochastic switch costs, different seeds must actually
        # change the trace (the RNG is wired in, not ignored).
        builder, duration = BUILDERS["settop"]
        a = fingerprint(builder(1), duration)
        b = fingerprint(builder(2), duration)
        assert a != b

    def test_ideal_machine_runs_identical_across_seeds(self):
        # With no stochastic elements, the seed is irrelevant: the
        # schedule is pure arithmetic.
        a = fingerprint(table4_trio(seed=1), 200)
        b = fingerprint(table4_trio(seed=2), 200)
        assert a == b
