"""CLI: every command runs, prints the right artifact, and exits 0."""

import pytest

from repro.cli import main


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "FullDecompress" in out
        assert "Table 4" in out and "52.0%" in out
        assert "Table 5" in out
        assert "Table 6" in out

    def test_figure3(self, capsys):
        assert main(["figure3", "--duration-ms", "100"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "misses: 0" in out

    def test_figure4(self, capsys):
        assert main(["figure4", "--duration-ms", "400"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "spin time" in out
        assert "misses: 0" in out

    def test_figure5(self, capsys):
        assert main(["figure5", "--duration-ms", "150"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "#########" in out  # the 9 ms first step
        assert "misses: 0" in out

    def test_faceoff(self, capsys):
        assert main(["faceoff", "--duration-ms", "300"]) == 0
        out = capsys.readouterr().out
        assert "ResourceDistributor" in out
        assert "RateMonotonicSystem" in out

    def test_settop(self, capsys):
        assert main(["settop"]) == 0
        out = capsys.readouterr().out
        assert "I frames lost: 0" in out

    def test_validate(self, capsys):
        assert main(["validate", "--seed", "3", "--duration-ms", "200"]) == 0
        out = capsys.readouterr().out
        assert "trace audit: OK" in out

    def test_export_segments_csv(self, capsys):
        assert main(["export", "--duration-ms", "100"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("thread_id,start,end,kind")

    def test_export_json(self, capsys):
        import json

        assert main(["export", "--format", "json", "--duration-ms", "100"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "segments" in doc and "deadlines" in doc

    def test_export_deadlines(self, capsys):
        assert main(["export", "--format", "deadlines", "--duration-ms", "100"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("thread_id,period_index")

    def test_report_settop(self, capsys):
        assert main(["report", "--scenario", "settop", "--duration-ms", "400"]) == 0
        out = capsys.readouterr().out
        assert "run report" in out
        assert "trace audit: OK" in out

    def test_report_unknown_scenario(self, capsys):
        assert main(["report", "--scenario", "nope"]) == 2


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])

    def test_seed_changes_runs_deterministically(self, capsys):
        main(["figure4", "--seed", "1", "--duration-ms", "400"])
        first = capsys.readouterr().out
        main(["figure4", "--seed", "1", "--duration-ms", "400"])
        second = capsys.readouterr().out
        assert first == second


class TestObsAnalysisCli:
    @pytest.fixture(scope="class")
    def obs_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("obs") / "run"
        assert main(["run", "--scenario", "figure5", "--seed", "11",
                     "--duration-ms", "200", "--obs-out", str(out)]) == 0
        return out

    def test_report_renders_markdown(self, obs_dir, capsys):
        assert main(["obs", "report", str(obs_dir)]) == 0
        out = capsys.readouterr().out
        assert "# Observability report" in out
        assert "## Grant delivery per task" in out

    def test_report_is_byte_deterministic(self, obs_dir, tmp_path, capsys):
        for fmt in ("markdown", "json"):
            a, b = tmp_path / f"a.{fmt}", tmp_path / f"b.{fmt}"
            assert main(["obs", "report", str(obs_dir), "--format", fmt,
                         "--out", str(a)]) == 0
            assert main(["obs", "report", str(obs_dir), "--format", fmt,
                         "--out", str(b)]) == 0
            assert a.read_bytes() == b.read_bytes()
        capsys.readouterr()

    def test_report_json_parses(self, obs_dir, capsys):
        import json

        assert main(["obs", "report", str(obs_dir), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert all(t["delivery_ratio"] == 1.0 for t in payload["tasks"])

    def test_check_passes_on_the_committed_slos(self, obs_dir, capsys):
        assert main(["obs", "check", str(obs_dir), "--slo", "slo.toml"]) == 0
        out = capsys.readouterr().out
        assert "0 violation(s)" in out
        assert "VIOLATED" not in out

    def test_check_fails_on_a_violated_objective(self, obs_dir, tmp_path, capsys):
        slo = tmp_path / "impossible.toml"
        slo.write_text(
            '[[slo]]\nname = "impossible"\nmetric = "deadline_misses"\n'
            'per = "fleet"\nop = ">="\nthreshold = 1.0\n',
            encoding="utf-8",
        )
        assert main(["obs", "check", str(obs_dir), "--slo", str(slo)]) == 1
        out = capsys.readouterr().out
        assert "VIOLATED" in out
        assert "1 violation(s)" in out

    def test_report_with_slo_section(self, obs_dir, capsys):
        assert main(["obs", "report", str(obs_dir), "--slo", "slo.toml"]) == 0
        out = capsys.readouterr().out
        assert "## Service-level objectives" in out

    def test_obs_without_subcommand_describes_the_taxonomy(self, capsys):
        assert main(["obs"]) == 0
        out = capsys.readouterr().out
        assert "Event taxonomy" in out
        assert "slo-alert" in out


class TestObsPipelineCli:
    @pytest.fixture(scope="class")
    def pipeline_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("pipeline") / "run"
        assert main(["run", "--scenario", "cluster_rack", "--seed", "7",
                     "--duration-ms", "200", "--obs-out", str(out),
                     "--obs-pipeline"]) == 0
        return out

    def test_pipeline_writes_the_columnar_artifacts(self, pipeline_dir):
        for name in ("events.col.json", "pipeline.json", "pipeline.prom"):
            assert (pipeline_dir / name).is_file(), name

    def test_cluster_pipeline_without_obs_out_is_refused(self, capsys):
        assert main(["cluster", "--nodes", "2", "--duration-ms", "200",
                     "--obs-pipeline"]) == 2
        assert "--obs-out" in capsys.readouterr().out

    def test_query_filters_and_is_deterministic(self, pipeline_dir, capsys):
        args = ["obs", "query", str(pipeline_dir), "--kind", "context-switch",
                "--node", "node00", "--window", "0:5000000"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first
        assert "matched" in first

    def test_query_count_only(self, pipeline_dir, capsys):
        assert main(["obs", "query", str(pipeline_dir), "--kind", "admission",
                     "--count"]) == 0
        out = capsys.readouterr().out
        assert out.strip().endswith("event(s) matched")
        assert "admission:" not in out

    def test_query_rejects_bad_kind_and_window(self, pipeline_dir, capsys):
        assert main(["obs", "query", str(pipeline_dir),
                     "--kind", "nope"]) == 2
        assert "unknown event kind" in capsys.readouterr().out
        assert main(["obs", "query", str(pipeline_dir),
                     "--window", "oops"]) == 2
        assert "LO:HI" in capsys.readouterr().out

    def test_explain_names_known_tasks_on_a_bad_task(self, pipeline_dir, capsys):
        assert main(["obs", "explain", str(pipeline_dir),
                     "--task", "nope"]) == 2
        assert "no task 'nope' in this event stream" in capsys.readouterr().out


class TestFuzzCli:
    def test_campaign_is_clean_and_summarized(self, tmp_path, capsys):
        assert main(
            ["fuzz", "--budget", "3", "--seed", "1", "--out", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "fuzz[core] seed=1: 3 scenarios" in out
        assert "clean" in out

    def test_injected_campaign_fails_and_writes_reproducers(
        self, tmp_path, capsys
    ):
        code = main(
            [
                "fuzz", "--budget", "3", "--seed", "2",
                "--inject", "edf-invert", "--out", str(tmp_path),
            ]
        )
        assert code == 1
        assert "failing scenario" in capsys.readouterr().out
        assert list(tmp_path.glob("*.trace.json"))

    def test_replay_corpus_directory(self, capsys):
        from pathlib import Path

        corpus = Path(__file__).parent / "fuzz" / "corpus"
        assert main(["fuzz", "replay", str(corpus)]) == 0
        out = capsys.readouterr().out
        assert "0 diverged" in out

    def test_replay_divergence_exits_nonzero(self, tmp_path, capsys):
        from repro.fuzz import TraceFile, generate, write_trace

        spec = generate(1)
        path = write_trace(
            tmp_path / "lie.trace.json",
            TraceFile(spec=spec, expect="invariant:edf-order"),
        )
        assert main(["fuzz", "replay", str(path)]) == 1
        assert "DIVERGED" in capsys.readouterr().out

    def test_replay_empty_directory_is_an_error(self, tmp_path, capsys):
        assert main(["fuzz", "replay", str(tmp_path)]) == 2
        assert "no *.trace.json" in capsys.readouterr().out

    def test_sweep_renders_and_appends_to_bench(self, tmp_path, capsys):
        import json

        bench = tmp_path / "BENCH.json"
        bench.write_text(json.dumps({"schema_version": 1, "results": []}))
        assert main(
            [
                "fuzz", "sweep", "--mixes", "1", "--iterations", "4",
                "--append-bench", str(bench),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "admission-threshold sweep" in out
        payload = json.loads(bench.read_text())
        assert payload["fuzz_thresholds"]["mixes"]
