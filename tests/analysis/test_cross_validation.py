"""Cross-validation: the analysis predicts what the simulator does.

For random task sets, the offline schedulability verdict must agree
with an actual simulation: EDF-feasible sets run without misses on the
Resource Distributor's enforcing EDF core; RM-feasible-by-analysis sets
run without misses under the Rate-Monotonic baseline; sets the analysis
rejects produce misses.
"""

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import MachineConfig, SimConfig, units
from repro.analysis import PeriodicTask, edf_feasible, rm_feasible_exact, utilization_of
from repro.baselines import NaiveEdfSystem
from repro.baselines.rate_monotonic import RateMonotonicSystem
from repro.workloads import single_entry_definition

PERIOD_CHOICES_MS = [4, 5, 8, 10, 16, 20, 25, 40]


@st.composite
def task_sets(draw):
    count = draw(st.integers(min_value=2, max_value=5))
    tasks = []
    for _ in range(count):
        period_ms = draw(st.sampled_from(PERIOD_CHOICES_MS))
        rate = draw(st.floats(min_value=0.05, max_value=0.5))
        tasks.append((period_ms, rate))
    return tasks


def to_analysis(tasks):
    out = []
    for period_ms, rate in tasks:
        period = units.ms_to_ticks(period_ms)
        out.append(PeriodicTask(period=period, cpu=max(1, round(period * rate))))
    return out


def simulate(system_cls, tasks, duration_ms=400):
    system = system_cls(machine=MachineConfig.ideal(), sim=SimConfig(seed=3))
    for i, (period_ms, rate) in enumerate(tasks):
        system.admit(single_entry_definition(f"t{i}", period_ms, rate))
    system.run_for(units.ms_to_ticks(duration_ms))
    return system


class RmNoAdmission(RateMonotonicSystem):
    """RM scheduling without the utilization-bound gate, so the exact
    analysis (not the bound) is what gets cross-validated."""

    def _admission_check(self, thread, grant):
        return


class TestEdfCrossValidation:
    @given(task_sets())
    @settings(
        max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_edf_verdict_matches_simulation(self, tasks):
        analysis = to_analysis(tasks)
        feasible = edf_feasible(analysis)
        system = simulate(NaiveEdfSystem, tasks)
        missed = bool(system.trace.misses())
        if feasible:
            assert not missed, "analysis said feasible but the sim missed"
        else:
            assert missed, "analysis said infeasible but the sim ran clean"


class TestRmCrossValidation:
    @given(task_sets())
    @settings(
        max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_rm_exact_analysis_matches_simulation(self, tasks):
        analysis = to_analysis(tasks)
        if utilization_of(analysis) > 1.0:
            return  # response-time analysis assumes U <= 1 to terminate
        feasible = rm_feasible_exact(analysis)
        system = simulate(RmNoAdmission, tasks)
        missed = bool(system.trace.misses())
        if feasible:
            assert not missed, "RM analysis said feasible but the sim missed"
        else:
            assert missed, "RM analysis said infeasible but the sim ran clean"
