"""What-if admission previews against a live distributor."""

import pytest

from repro import units
from repro.analysis import admission_preview
from repro.tasks.busyloop import busyloop_definition
from repro.workloads import single_entry_definition

from tests.conftest import admit_simple


def ms(x):
    return units.ms_to_ticks(x)


class TestAdmissible:
    def test_underload_preview_predicts_max_grant(self, ideal_rd):
        admit_simple(ideal_rd, "existing", period_ms=10, rate=0.3)
        preview = admission_preview(
            ideal_rd, single_entry_definition("newcomer", 10, 0.3)
        )
        assert preview.admissible
        assert preview.newcomer_index == 0
        assert preview.newcomer_rate == pytest.approx(0.3)
        assert not preview.anyone_degraded

    def test_overload_preview_predicts_degradations(self, ideal_rd):
        ideal_rd.admit(busyloop_definition("existing"))
        ideal_rd.run_for(ms(20))  # let the first grant activate
        preview = admission_preview(ideal_rd, busyloop_definition("newcomer"))
        assert preview.admissible
        assert preview.anyone_degraded
        existing = preview.changes[0]
        assert existing.current_rate == pytest.approx(0.9)
        assert existing.predicted_rate < 0.9

    def test_preview_is_side_effect_free(self, ideal_rd):
        existing = ideal_rd.admit(busyloop_definition("existing"))
        ideal_rd.run_for(ms(20))
        before = existing.grant.rate
        admission_preview(ideal_rd, busyloop_definition("newcomer"))
        ideal_rd.run_for(ms(20))
        assert existing.grant.rate == before
        assert len(list(ideal_rd.resource_manager.admitted_ids())) == 1

    def test_preview_matches_reality(self, ideal_rd):
        """What the preview predicts is what admission then does."""
        ideal_rd.admit(busyloop_definition("existing"))
        ideal_rd.run_for(ms(20))
        newcomer_def = busyloop_definition("newcomer")
        preview = admission_preview(ideal_rd, newcomer_def)
        newcomer = ideal_rd.admit(newcomer_def)
        ideal_rd.run_for(ms(30))
        assert newcomer.grant.entry_index == preview.newcomer_index


class TestInadmissible:
    def test_cpu_denial_predicted(self, ideal_rd):
        admit_simple(ideal_rd, "hog", period_ms=10, rate=0.9)
        preview = admission_preview(
            ideal_rd, single_entry_definition("too-big", 10, 0.2)
        )
        assert not preview.admissible
        assert "does not fit" in preview.reason

    def test_exclusive_minimum_rejected(self, ideal_rd):
        from repro import TaskDefinition
        from repro.core.resource_list import ResourceList, ResourceListEntry
        from repro.workloads import grant_follower

        bad = TaskDefinition(
            name="bad",
            resource_list=ResourceList(
                [
                    ResourceListEntry(
                        ms(10), ms(1), grant_follower,
                        exclusive=frozenset({"data_streamer"}),
                    )
                ]
            ),
        )
        preview = admission_preview(ideal_rd, bad)
        assert not preview.admissible
