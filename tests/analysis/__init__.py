"""Test package."""
