"""Schedulability analysis: known results and edge cases."""

import pytest

from repro.analysis import (
    PeriodicTask,
    demand_bound,
    edf_feasible,
    edf_processor_demand_feasible,
    hyperperiod,
    rm_feasible_exact,
    rm_response_times,
    utilization_of,
)


def task(period, cpu, deadline=None):
    return PeriodicTask(period=period, cpu=cpu, deadline=deadline)


class TestBasics:
    def test_utilization(self):
        tasks = [task(10, 5), task(20, 5)]
        assert utilization_of(tasks) == pytest.approx(0.75)

    def test_hyperperiod(self):
        assert hyperperiod([task(10, 1), task(15, 1), task(6, 1)]) == 30
        assert hyperperiod([]) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            task(0, 1)
        with pytest.raises(ValueError):
            task(10, 0)
        with pytest.raises(ValueError):
            PeriodicTask(period=10, cpu=1, deadline=0)


class TestEdf:
    def test_full_utilization_is_feasible(self):
        assert edf_feasible([task(10, 5), task(20, 10)])

    def test_over_unity_is_not(self):
        assert not edf_feasible([task(10, 6), task(20, 10)])

    def test_capacity_parameter(self):
        tasks = [task(10, 5)]
        assert edf_feasible(tasks, capacity=0.5)
        assert not edf_feasible(tasks, capacity=0.49)

    def test_rejects_constrained_deadlines(self):
        with pytest.raises(ValueError):
            edf_feasible([task(10, 2, deadline=5)])


class TestProcessorDemand:
    def test_dbf_counts_whole_jobs(self):
        tasks = [task(10, 3)]
        assert demand_bound(tasks, 9) == 0
        assert demand_bound(tasks, 10) == 3
        assert demand_bound(tasks, 20) == 6

    def test_constrained_deadline_infeasible_set_detected(self):
        # Two tasks fine on utilization (0.8) but impossible by t=5:
        # both must finish 4 units within 5.
        tasks = [task(10, 4, deadline=5), task(10, 4, deadline=5)]
        assert not edf_processor_demand_feasible(tasks)

    def test_constrained_feasible_set(self):
        tasks = [task(10, 2, deadline=5), task(10, 3, deadline=9)]
        assert edf_processor_demand_feasible(tasks)

    def test_implicit_deadline_agrees_with_utilization_test(self):
        tasks = [task(12, 4), task(8, 4)]
        assert edf_processor_demand_feasible(tasks) == edf_feasible(tasks)

    def test_empty_set(self):
        assert edf_processor_demand_feasible([])

    def test_rejects_deadline_beyond_period(self):
        with pytest.raises(ValueError):
            edf_processor_demand_feasible([task(10, 1, deadline=12)])


class TestResponseTime:
    def test_textbook_example(self):
        # T=(7,2), (12,3), (20,5): iterate R3 = 5 + ceil(R/7)*2 +
        # ceil(R/12)*3: 5 -> 10 -> 12 -> 12 (fixed point).
        tasks = [task(7, 2), task(12, 3), task(20, 5)]
        r = rm_response_times(tasks)
        assert r[0] == 2
        assert r[1] == 5
        assert r[2] == 12
        assert rm_feasible_exact(tasks)

    def test_divergent_set_reports_infinity(self):
        tasks = [task(10, 6), task(14, 7)]
        r = rm_response_times(tasks)
        assert r[1] == float("inf")
        assert not rm_feasible_exact(tasks)

    def test_order_of_input_preserved(self):
        tasks = [task(20, 5), task(7, 2)]  # lower priority listed first
        r = rm_response_times(tasks)
        assert r[1] == 2  # the 7-period task's response
        assert r[0] >= 5

    def test_harmonic_set_feasible_to_full_utilization(self):
        # Harmonic periods are RM-schedulable at 100 % — exactly what
        # the Liu-Layland *bound* (82.8 % for n=2) cannot see.
        tasks = [task(10, 5), task(20, 10)]
        assert rm_feasible_exact(tasks)
        from repro.baselines import liu_layland_bound

        assert utilization_of(tasks) > liu_layland_bound(2)
