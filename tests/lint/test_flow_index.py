"""Flow substrate: project index, shared resolver, call graph."""

import ast
from pathlib import Path

from repro.lint import ModuleResolver, collect_files, parse_module
from repro.lint.flow.callgraph import CallGraph, ext
from repro.lint.flow.index import ProjectIndex

FLOWTREE = Path(__file__).parent / "fixtures" / "flowtree"


def build_index(root=FLOWTREE) -> ProjectIndex:
    modules = [parse_module(p) for p in collect_files([root])]
    return ProjectIndex([m for m in modules if not isinstance(m, tuple)])


def parse_source(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(source)
    return parse_module(path)


class TestModuleResolver:
    def test_plain_import_and_alias(self, tmp_path):
        module = parse_source(
            tmp_path, "import time\nimport random as rnd\n"
        )
        resolver = ModuleResolver(module)
        assert resolver.canonical("time.monotonic") == "time.monotonic"
        assert resolver.canonical("rnd.random") == "random.random"

    def test_from_import_resolves_to_dotted_target(self, tmp_path):
        module = parse_source(
            tmp_path, "from time import monotonic\nfrom random import choice as c\n"
        )
        resolver = ModuleResolver(module)
        assert resolver.canonical("monotonic") == "time.monotonic"
        assert resolver.canonical("c") == "random.choice"
        assert "monotonic" in resolver.from_imports
        assert "c" not in resolver.from_imports  # aliased, not bare

    def test_resolve_call_handles_attribute_chains(self, tmp_path):
        module = parse_source(tmp_path, "import time as t\nx = t.monotonic()\n")
        call = next(
            n for n in ast.walk(module.tree) if isinstance(n, ast.Call)
        )
        assert ModuleResolver(module).resolve_call(call) == "time.monotonic"

    def test_unimported_names_pass_through(self, tmp_path):
        module = parse_source(tmp_path, "y = foo.bar()\n")
        resolver = ModuleResolver(module)
        assert resolver.canonical("foo.bar") == "foo.bar"


class TestProjectIndex:
    def test_indexes_functions_and_methods(self):
        index = build_index()
        assert "repro.helpers.util.stamp" in index.functions
        assert "repro.sim.messages.MessageBus.send" in index.functions
        fn = index.functions["repro.sim.messages.MessageBus.send"]
        assert fn.class_name == "MessageBus"
        assert fn.params[:2] == ["src", "dst"]  # self stripped

    def test_resolves_through_from_import(self):
        index = build_index()
        qname = index.resolve_name("repro.cluster.bad_rpc", "MessageBus.send")
        assert qname == "repro.sim.messages.MessageBus.send"

    def test_self_attr_type_from_annotated_param(self):
        index = build_index()
        cls = index.classes["repro.cluster.bad_rpc.MiniBroker"]
        assert cls.attr_types["bus"] == "MessageBus"

    def test_module_level_mutables_collected(self):
        index = build_index()
        table = index.table("repro.cluster.bad_race")
        assert "EPOCH_CACHE" in table.mutable_globals
        assert "TRANSIT_LOG" in index.table("repro.sim.messages").mutable_globals


class TestCallGraph:
    def test_edges_resolve_across_modules(self):
        index = build_index()
        graph = CallGraph(index)
        callees = {s.callee for s in graph.callees("repro.core.bad_reach.activate")}
        assert "repro.helpers.util.stamp" in callees

    def test_external_sinks_get_ext_keys(self):
        index = build_index()
        graph = CallGraph(index)
        callees = {s.callee for s in graph.callees("repro.helpers.util.stamp")}
        assert ext("time.monotonic") in callees

    def test_reaches_returns_shortest_witness(self):
        index = build_index()
        graph = CallGraph(index)
        path = graph.reaches(
            "repro.core.bad_reach.schedule", {ext("time.monotonic")}
        )
        assert path == [
            "repro.core.bad_reach.schedule",
            "repro.helpers.util.chain",
            "repro.helpers.util.stamp",
            "ext:time.monotonic",
        ]

    def test_unreachable_returns_none(self):
        index = build_index()
        graph = CallGraph(index)
        assert (
            graph.reaches("repro.core.good_reach.advance", {ext("time.monotonic")})
            is None
        )

    def test_skip_prunes_paths(self):
        index = build_index()
        graph = CallGraph(index)
        path = graph.reaches(
            "repro.core.bad_reach.schedule",
            {ext("time.monotonic")},
            skip=lambda key: key == "repro.helpers.util.chain",
        )
        assert path is None
