"""Baseline (grandfathered-finding) file behavior."""

import json
from pathlib import Path

import pytest

from repro.lint.baseline import (
    BASELINE_SCHEMA_VERSION,
    BaselineError,
    apply_baseline,
    find_default_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.rules.base import LintViolation


def make_violation(line=10, message="wall-clock read", witness=()):
    return LintViolation(
        path="src/repro/core/clock.py",
        line=line,
        col=4,
        rule_id="determinism-reach",
        message=message,
        witness=tuple(witness),
    )


class TestFingerprint:
    def test_line_and_column_insensitive(self):
        a = make_violation(line=10)
        b = LintViolation(
            path=a.path, line=99, col=0, rule_id=a.rule_id, message=a.message
        )
        assert a.fingerprint() == b.fingerprint()

    def test_witness_is_part_of_identity(self):
        a = make_violation(witness=("f", "g", "time.time"))
        b = make_violation(witness=("f", "h", "time.time"))
        assert a.fingerprint() != b.fingerprint()

    def test_absolute_and_cwd_relative_paths_agree(self):
        rel = make_violation()
        absolute = LintViolation(
            path=str(Path.cwd() / rel.path),
            line=rel.line,
            col=rel.col,
            rule_id=rel.rule_id,
            message=rel.message,
        )
        assert rel.fingerprint() == absolute.fingerprint()


class TestRoundTrip:
    def test_write_then_load_then_apply(self, tmp_path):
        old = make_violation(message="stranded token")
        still_new = make_violation(message="fresh finding")
        path = tmp_path / "lint-baseline.json"

        assert write_baseline(path, [old]) == 1
        baseline = load_baseline(path)
        surviving, stale = apply_baseline([old, still_new], baseline)

        assert surviving == [still_new]
        assert stale == []

    def test_write_dedupes_by_fingerprint(self, tmp_path):
        path = tmp_path / "b.json"
        assert write_baseline(path, [make_violation(10), make_violation(99)]) == 1

    def test_stale_entries_surface(self, tmp_path):
        path = tmp_path / "b.json"
        write_baseline(path, [make_violation(message="since fixed")])
        surviving, stale = apply_baseline([], load_baseline(path))
        assert surviving == []
        assert [e["message"] for e in stale] == ["since fixed"]

    def test_output_is_stable_bytes(self, tmp_path):
        violations = [make_violation(message=m) for m in ("b", "a", "c")]
        first, second = tmp_path / "1.json", tmp_path / "2.json"
        write_baseline(first, violations)
        write_baseline(second, list(reversed(violations)))
        assert first.read_bytes() == second.read_bytes()


class TestLoadErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(BaselineError, match="cannot read"):
            load_baseline(tmp_path / "absent.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text("{not json")
        with pytest.raises(BaselineError, match="invalid JSON"):
            load_baseline(path)

    def test_wrong_schema_version(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"schema_version": 999, "findings": []}))
        with pytest.raises(BaselineError, match="schema_version"):
            load_baseline(path)

    def test_findings_entries_need_fingerprints(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(
            json.dumps(
                {
                    "schema_version": BASELINE_SCHEMA_VERSION,
                    "findings": [{"rule": "tick-units"}],
                }
            )
        )
        with pytest.raises(BaselineError, match="fingerprint"):
            load_baseline(path)


class TestDiscovery:
    def test_finds_nearest_baseline_upward(self, tmp_path):
        (tmp_path / "lint-baseline.json").write_text("{}")
        nested = tmp_path / "pkg" / "sub"
        nested.mkdir(parents=True)
        assert find_default_baseline(nested) == tmp_path / "lint-baseline.json"

    def test_none_when_absent(self, tmp_path):
        assert find_default_baseline(tmp_path) is None

    def test_repo_baseline_matches_current_flow_findings(self):
        """The committed baseline stays in sync with `repro.lint src --flow`."""
        from repro.lint import run_lint

        repo_root = Path(__file__).resolve().parents[2]
        baseline = load_baseline(repo_root / "lint-baseline.json")
        violations = run_lint([repo_root / "src"], flow=True)
        surviving, stale = apply_baseline(violations, baseline)
        assert surviving == [], "new flow findings must be fixed, not baselined"
        assert stale == [], "remove entries for findings that no longer fire"
