"""The repro-lint command line: output formats, flow tier, exit codes."""

import json
from pathlib import Path

from repro.lint.cli import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_VIOLATIONS,
    JSON_SCHEMA_VERSION,
    main,
)
from repro.lint.engine import rule_catalog_hash
from repro.lint.flow import FLOW_RULE_CLASSES
from repro.lint.rules import RULE_CLASSES

TREE = Path(__file__).parent / "fixtures" / "tree"
FLOWTREE = Path(__file__).parent / "fixtures" / "flowtree"
REPO = Path(__file__).parents[2]


class TestTextOutput:
    def test_violations_print_file_line_rule_message(self, capsys):
        code = main([str(TREE / "repro/core/bad_clock.py")])
        out = capsys.readouterr()
        assert code == EXIT_VIOLATIONS
        first = out.out.splitlines()[0]
        path, rest = first.split(" ", 1)
        assert path.endswith("bad_clock.py:8")
        assert rest.startswith("wallclock ")
        assert "violation(s)" in out.err

    def test_clean_tree_exits_zero(self, capsys):
        code = main([str(REPO / "src"), "--config", str(REPO / "pyproject.toml")])
        assert code == EXIT_CLEAN
        assert capsys.readouterr().out == ""


class TestJsonOutput:
    def test_json_format_is_machine_readable(self, capsys):
        code = main([str(TREE / "loose_float.py"), "--format=json"])
        assert code == EXIT_VIOLATIONS
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 4
        assert {v["rule"] for v in payload["violations"]} == {"float-ticks"}
        assert {"path", "line", "col", "rule", "message"} <= set(
            payload["violations"][0]
        )

    def test_json_on_clean_input(self, capsys):
        code = main([str(TREE / "repro/core/clean.py"), "--format=json"])
        assert code == EXIT_CLEAN
        assert json.loads(capsys.readouterr().out)["count"] == 0

    def test_payload_is_self_describing(self, tmp_path, capsys):
        empty = tmp_path / "b.json"
        empty.write_text('{"schema_version": 1, "findings": []}')
        main([str(FLOWTREE), "--flow", "--format=json", "--baseline", str(empty)])
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == JSON_SCHEMA_VERSION
        assert payload["rule_catalog_hash"] == rule_catalog_hash()
        assert payload["flow"] is True
        assert payload["stale_baseline_entries"] == []
        witnessed = [v for v in payload["violations"] if v["witness"]]
        assert witnessed, "flow findings must serialize their witness paths"

    def test_output_is_byte_identical_across_runs(self, capsys):
        main([str(FLOWTREE), "--flow", "--format=json"])
        first = capsys.readouterr().out
        main([str(FLOWTREE), "--flow", "--format=json"])
        second = capsys.readouterr().out
        assert first == second

    def test_violations_arrive_fully_sorted(self, capsys):
        main([str(FLOWTREE), "--flow", "--format=json"])
        payload = json.loads(capsys.readouterr().out)
        keys = [
            (v["path"], v["line"], v["col"], v["rule"], v["message"])
            for v in payload["violations"]
        ]
        assert keys == sorted(keys)


class TestFlowTier:
    def test_flow_flag_surfaces_interprocedural_findings(self, capsys):
        code = main([str(FLOWTREE), "--flow"])
        out = capsys.readouterr().out
        assert code == EXIT_VIOLATIONS
        assert "determinism-reach" in out
        assert "tick-units" in out
        # Text output renders the path witness inline.
        assert "[repro.core.bad_reach.activate -> repro.helpers.util.stamp" in out

    def test_no_flow_overrides_config(self, tmp_path, capsys):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[tool.repro-lint]\nflow = true\n")
        code = main(
            [
                str(FLOWTREE / "repro/core/bad_units.py"),
                "--no-flow",
                "--config",
                str(pyproject),
            ]
        )
        capsys.readouterr()
        assert code == EXIT_CLEAN

    def test_config_can_enable_flow(self, tmp_path, capsys):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[tool.repro-lint]\nflow = true\n")
        code = main([str(FLOWTREE), "--config", str(pyproject)])
        out = capsys.readouterr().out
        assert code == EXIT_VIOLATIONS
        assert "tick-units" in out

    def test_acceptance_repo_src_is_clean_with_flow(self, capsys):
        code = main(
            [
                str(REPO / "src"),
                "--flow",
                "--config",
                str(REPO / "pyproject.toml"),
                "--baseline",
                str(REPO / "lint-baseline.json"),
            ]
        )
        captured = capsys.readouterr()
        assert code == EXIT_CLEAN, captured.out
        assert "stale" not in captured.err


class TestBaselineFlags:
    def test_baseline_subtracts_known_findings(self, tmp_path, capsys):
        target = FLOWTREE / "repro/cluster/bad_rpc.py"
        baseline = tmp_path / "b.json"
        assert main([str(FLOWTREE), "--flow", "--write-baseline",
                     "--baseline", str(baseline)]) == EXIT_CLEAN
        capsys.readouterr()
        code = main([str(FLOWTREE), "--flow", "--baseline", str(baseline)])
        captured = capsys.readouterr()
        assert code == EXIT_CLEAN
        assert captured.out == ""
        assert str(target) not in captured.out

    def _stale_baseline(self, tmp_path, entry_path):
        baseline = tmp_path / "b.json"
        baseline.write_text(
            json.dumps(
                {
                    "schema_version": 1,
                    "findings": [
                        {
                            "fingerprint": "deadbeefdeadbeef",
                            "rule": "tick-units",
                            "path": entry_path,
                            "message": "long since fixed",
                            "witness": [],
                        }
                    ],
                }
            )
        )
        return baseline

    def test_stale_entries_warn_on_stderr(self, tmp_path, capsys):
        baseline = self._stale_baseline(
            tmp_path, str(FLOWTREE / "repro/core/good_units.py")
        )
        code = main(
            [
                str(FLOWTREE / "repro/core/good_units.py"),
                "--flow",
                "--baseline",
                str(baseline),
            ]
        )
        captured = capsys.readouterr()
        assert code == EXIT_CLEAN  # stale entries warn, never fail
        assert "stale baseline entry deadbeefdeadbeef" in captured.err
        assert "remove it from the baseline" in captured.err

    def test_out_of_scope_entries_are_not_stale(self, tmp_path, capsys):
        # A run scoped to a subtree must not condemn baseline entries
        # for files it never scanned.
        baseline = self._stale_baseline(tmp_path, "src/repro/cluster/broker.py")
        code = main(
            [
                str(FLOWTREE / "repro/core/good_units.py"),
                "--flow",
                "--baseline",
                str(baseline),
            ]
        )
        captured = capsys.readouterr()
        assert code == EXIT_CLEAN
        assert "stale" not in captured.err

    def test_malformed_baseline_is_a_usage_error(self, tmp_path, capsys):
        baseline = tmp_path / "b.json"
        baseline.write_text("{broken")
        code = main(
            [str(TREE / "repro/core/clean.py"), "--baseline", str(baseline)]
        )
        assert code == EXIT_ERROR
        assert "baseline error" in capsys.readouterr().err

    def test_baseline_ignored_without_flow(self, capsys):
        # Classic runs must not report flow-tier baseline entries as stale.
        code = main(
            [
                str(REPO / "src"),
                "--no-flow",
                "--config",
                str(REPO / "pyproject.toml"),
            ]
        )
        captured = capsys.readouterr()
        assert code == EXIT_CLEAN
        assert "stale" not in captured.err


class TestListRules:
    def test_catalog_names_every_registered_rule(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for cls in (*RULE_CLASSES, *FLOW_RULE_CLASSES):
            assert cls.id in out


class TestExplain:
    def test_explains_a_flow_rule(self, capsys):
        assert main(["--explain", "tick-units"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "tick-units [flow (whole-program)]" in out
        assert "rationale:" in out

    def test_explains_a_per_module_rule(self, capsys):
        assert main(["--explain", "float-ticks"]) == EXIT_CLEAN
        assert "[per-module]" in capsys.readouterr().out

    def test_unknown_rule_is_a_usage_error(self, capsys):
        assert main(["--explain", "no-such-rule"]) == EXIT_ERROR
        err = capsys.readouterr().err
        assert "unknown rule 'no-such-rule'" in err
        assert "tick-units" in err  # lists the known ids


class TestErrors:
    def test_missing_path_is_a_usage_error(self, capsys):
        assert main(["does/not/exist"]) == EXIT_ERROR
        assert "no such path" in capsys.readouterr().err

    def test_bad_config_is_a_usage_error(self, tmp_path, capsys):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text('[tool.repro-lint]\ndisable = ["no-such-rule"]\n')
        code = main([str(TREE / "suppressed.py"), "--config", str(pyproject)])
        assert code == EXIT_ERROR
        assert "no-such-rule" in capsys.readouterr().err
