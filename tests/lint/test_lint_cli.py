"""The repro-lint command line: output formats and exit codes."""

import json
from pathlib import Path

from repro.lint.cli import EXIT_CLEAN, EXIT_ERROR, EXIT_VIOLATIONS, main
from repro.lint.rules import RULE_CLASSES

TREE = Path(__file__).parent / "fixtures" / "tree"
REPO = Path(__file__).parents[2]


class TestTextOutput:
    def test_violations_print_file_line_rule_message(self, capsys):
        code = main([str(TREE / "repro/core/bad_clock.py")])
        out = capsys.readouterr()
        assert code == EXIT_VIOLATIONS
        first = out.out.splitlines()[0]
        path, rest = first.split(" ", 1)
        assert path.endswith("bad_clock.py:8")
        assert rest.startswith("wallclock ")
        assert "violation(s)" in out.err

    def test_clean_tree_exits_zero(self, capsys):
        code = main([str(REPO / "src"), "--config", str(REPO / "pyproject.toml")])
        assert code == EXIT_CLEAN
        assert capsys.readouterr().out == ""


class TestJsonOutput:
    def test_json_format_is_machine_readable(self, capsys):
        code = main([str(TREE / "loose_float.py"), "--format=json"])
        assert code == EXIT_VIOLATIONS
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 4
        assert {v["rule"] for v in payload["violations"]} == {"float-ticks"}
        assert {"path", "line", "col", "rule", "message"} <= set(
            payload["violations"][0]
        )

    def test_json_on_clean_input(self, capsys):
        code = main([str(TREE / "repro/core/clean.py"), "--format=json"])
        assert code == EXIT_CLEAN
        assert json.loads(capsys.readouterr().out)["count"] == 0


class TestListRules:
    def test_catalog_names_every_registered_rule(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for cls in RULE_CLASSES:
            assert cls.id in out


class TestErrors:
    def test_missing_path_is_a_usage_error(self, capsys):
        assert main(["does/not/exist"]) == EXIT_ERROR
        assert "no such path" in capsys.readouterr().err

    def test_bad_config_is_a_usage_error(self, tmp_path, capsys):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text('[tool.repro-lint]\ndisable = ["no-such-rule"]\n')
        code = main([str(TREE / "suppressed.py"), "--config", str(pyproject)])
        assert code == EXIT_ERROR
        assert "no-such-rule" in capsys.readouterr().err
