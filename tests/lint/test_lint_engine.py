"""Engine plumbing: module names, suppression, parse errors, config."""

import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    LintConfig,
    LintConfigError,
    collect_files,
    load_config,
    module_name,
    run_lint,
)
from repro.lint.rules import RULE_CLASSES

TREE = Path(__file__).parent / "fixtures" / "tree"


class TestModuleName:
    def test_walks_the_init_chain(self):
        assert module_name(TREE / "repro/core/scheduler.py") == "repro.core.scheduler"
        assert module_name(TREE / "repro/sim/rng.py") == "repro.sim.rng"

    def test_init_file_names_the_package(self):
        assert module_name(TREE / "repro/core/__init__.py") == "repro.core"

    def test_loose_file_keeps_its_stem(self):
        assert module_name(TREE / "loose_float.py") == "loose_float"

    def test_real_tree(self):
        src = Path(__file__).parents[2] / "src"
        assert module_name(src / "repro/core/kernel.py") == "repro.core.kernel"


class TestSuppression:
    def test_matching_and_all_suppress_wrong_id_does_not(self):
        violations = run_lint([TREE / "suppressed.py"])
        assert [v.line for v in violations] == [7]
        assert violations[0].rule_id == "float-ticks"

    def test_marker_anywhere_on_a_multiline_statement(self, tmp_path):
        # The violation sits on the argument line; the marker sits on
        # the closing-paren line of the same statement.
        mod = tmp_path / "spread.py"
        mod.write_text(
            "def build():\n"
            "    return validate_period(\n"
            "        1.5,\n"
            "    )  # repro-lint: disable=float-ticks\n"
        )
        assert run_lint([mod]) == []

    def test_marker_on_def_header_covers_decorator_violation(self, tmp_path):
        mod = tmp_path / "decorated.py"
        mod.write_text(
            "@register(period=1.5)\n"
            "def tick():  # repro-lint: disable=float-ticks\n"
            "    return 0\n"
        )
        assert run_lint([mod]) == []

    def test_marker_on_multiline_decorator(self, tmp_path):
        mod = tmp_path / "decorated_spread.py"
        mod.write_text(
            "@register(\n"
            "    period=1.5,\n"
            ")  # repro-lint: disable=float-ticks\n"
            "def tick():\n"
            "    return 0\n"
        )
        assert run_lint([mod]) == []

    def test_marker_on_a_sibling_statement_does_not_leak(self, tmp_path):
        mod = tmp_path / "sibling.py"
        mod.write_text(
            "def f():\n"
            "    x = validate_period(1.5)\n"
            "    return x  # repro-lint: disable=float-ticks\n"
        )
        violations = run_lint([mod])
        assert [v.line for v in violations] == [2]

    def test_marker_in_body_does_not_silence_the_whole_function(self, tmp_path):
        mod = tmp_path / "body.py"
        mod.write_text(
            "def f():\n"
            "    # repro-lint: disable=float-ticks\n"
            "    pass\n"
            "\n"
            "def g():\n"
            "    return validate_period(1.5)\n"
        )
        violations = run_lint([mod])
        assert [v.line for v in violations] == [6]

    def test_flow_violations_honor_suppressions(self, tmp_path):
        pkg = tmp_path / "repro" / "cluster"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "state.py").write_text(
            "CACHE: dict = {}\n"
            "\n"
            "def on_epoch(k, v):\n"
            "    CACHE[k] = v  # repro-lint: disable=shared-state-race\n"
            "\n"
            "def drain():\n"
            "    CACHE.clear()  # repro-lint: disable=all\n"
        )
        assert run_lint([tmp_path], flow=True) == []


class TestParseErrors:
    def test_syntax_error_becomes_a_violation(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        violations = run_lint([bad])
        assert len(violations) == 1
        assert violations[0].rule_id == "parse-error"
        assert "cannot parse" in violations[0].message


class TestCollectFiles:
    def test_directories_recurse_and_dedupe(self):
        files = collect_files([TREE, TREE / "loose_float.py"])
        assert files.count(TREE / "loose_float.py") == 1
        assert TREE / "repro/core/bad_clock.py" in files

    def test_non_python_targets_ignored(self, tmp_path):
        (tmp_path / "notes.txt").write_text("hi")
        assert collect_files([tmp_path / "notes.txt"]) == []


class TestConfig:
    def test_disable_switches_a_rule_off(self):
        config = LintConfig(disable=("float-ticks",))
        assert run_lint([TREE / "loose_float.py"], config=config) == []

    def test_enable_restricts_to_listed_rules(self):
        config = LintConfig(enable=("wallclock",))
        violations = run_lint([TREE / "repro" / "core"], config=config)
        assert violations and all(v.rule_id == "wallclock" for v in violations)

    def test_exclude_skips_matching_paths(self):
        config = LintConfig(exclude=("repro/core",))
        violations = run_lint([TREE], config=config)
        assert all("core" not in Path(v.path).parts for v in violations)

    def test_unknown_rule_id_is_a_config_error(self):
        config = LintConfig(disable=("no-such-rule",))
        with pytest.raises(LintConfigError, match="no-such-rule"):
            config.validate_rule_ids({cls.id for cls in RULE_CLASSES})

    def test_load_config_reads_the_pyproject_table(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            textwrap.dedent(
                """
                [tool.repro-lint]
                disable = ["float-ticks"]
                exclude = ["build"]
                """
            )
        )
        config = load_config(pyproject)
        assert config.disable == ("float-ticks",)
        assert config.path_excluded(Path("build/generated.py"))
        assert not config.path_excluded(Path("src/repro/cli.py"))

    def test_load_config_missing_file_gives_defaults(self, tmp_path):
        config = load_config(tmp_path / "pyproject.toml")
        assert config == LintConfig()

    def test_malformed_table_raises(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[tool.repro-lint]\ndisable = 'oops'\n")
        with pytest.raises(LintConfigError, match="list of strings"):
            load_config(pyproject)

    def test_repo_pyproject_parses(self):
        repo_pyproject = Path(__file__).parents[2] / "pyproject.toml"
        config = load_config(repo_pyproject)
        config.validate_rule_ids({cls.id for cls in RULE_CLASSES})
