"""Fixture: a clean telemetry module — stdlib plus ground modules only."""

import json

from repro.errors import SimulationError


def encode(record: dict) -> str:
    if "time" not in record:
        raise SimulationError("events carry simulated ticks")
    return json.dumps(record, sort_keys=True, separators=(",", ":"))
