"""Fixture: a wall-clock timestamp inside the telemetry layer
(wallclock) — event times must be simulated ticks."""

import time


def stamp_event():
    return {"time": time.time()}
