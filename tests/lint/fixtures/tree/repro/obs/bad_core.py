"""Fixture: the telemetry layer reaching up into core and sim."""

import repro.core.kernel
from repro.sim import messages


def peek():
    return repro.core.kernel, messages
