"""Fixture: the telemetry layer importing the cluster coordinator."""

from repro.cluster import broker


def peek():
    return broker
