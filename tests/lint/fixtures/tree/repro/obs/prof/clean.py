"""Fixture: ``repro.obs.prof`` may read the host wall clock.

The phase profiler's whole job is measuring host wall-clock cost; the
``wallclock`` rule exempts this package (timings land in a separate,
never-byte-compared artifact), while the rest of ``repro.obs`` — see
``repro/obs/bad_clock.py`` — stays in scope.
"""

import time


def stamp() -> int:
    return time.perf_counter_ns()
