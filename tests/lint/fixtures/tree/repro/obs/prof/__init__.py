"""Fixture package: the profiler's sanctioned wall-clock exemption."""
