"""Fixture: the serving layer is in scope for the prof-hook guard too."""


async def read_request(reader, prof):
    head = await reader.readuntil(b"\r\n\r\n")
    prof.begin("serve.http-parse")  # unguarded: unprofiled path pays a call
    return head
