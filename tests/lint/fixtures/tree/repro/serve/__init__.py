"""Fixture package: the serving boundary (wall-clock land)."""
