"""Fixture: everything the serving layer is allowed to do (all
negatives).  It imports freely *downward* (cluster, obs, core) and it
reads the wall clock — the one layer where that is architecture-legal,
because the determinism rules scope their checks to the simulated
packages rather than exempting call sites."""

import time

from repro.cluster.broker import ClusterBroker
from repro.core import grants
from repro.obs.session import ObsSession


def measure():
    started = time.monotonic()  # wall clock: legal at the boundary
    return time.perf_counter() - started


def wire(engine):
    return ClusterBroker, ObsSession, grants
