"""Fixture: the simulation substrate importing the profiler package."""

import repro.obs.prof  # noqa: F401
