"""Fixture: the simulation substrate importing the cluster layer."""

import repro.cluster


def build():
    return repro.cluster
