"""Fixture: the simulation substrate importing the columnar pipeline."""

import repro.obs.pipeline  # noqa: F401
