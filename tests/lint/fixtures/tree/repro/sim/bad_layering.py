"""Fixture: the simulation substrate importing upward (layering)."""

import repro.metrics
from repro.core.kernel import Kernel


def build():
    return Kernel, repro.metrics
