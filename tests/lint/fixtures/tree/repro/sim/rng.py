"""Fixture: the sanctioned RNG funnel is exempt from unseeded-rng."""

import random


def stream(purpose):
    return random.Random()  # flagged anywhere else; exempt here
