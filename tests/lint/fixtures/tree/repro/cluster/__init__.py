"""Fixture package: the cluster coordination layer."""
