"""Fixture: the cluster layer building the shipping tree — allowed.

``repro.obs.pipeline`` is importable from the coordinator layers
(cluster, serve); only core and sim below it are barred."""

from repro.obs.pipeline import ArenaBus


def wire():
    return ArenaBus(capacity=1024)
