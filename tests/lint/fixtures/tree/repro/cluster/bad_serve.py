"""Fixture: the cluster layer importing the serving boundary above it
(layering) — the wall-clock exemption must not leak downward."""

import repro.serve.app


def handle():
    return repro.serve.app
