"""Fixture: the mechanism layer importing the columnar pipeline above it
(layering) — core must never know whether its events land in objects or
columns; the arena bus is injected as an ordinary ObsBus."""

from repro.obs.pipeline import ArenaBus


def build():
    return ArenaBus()
