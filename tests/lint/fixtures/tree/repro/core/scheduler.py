"""Fixture: the Scheduler reaching into the Policy Box (layering)."""

import repro.core.policy_box
from . import policy_box  # noqa: F401


def pick(now):
    return repro.core.policy_box, policy_box
