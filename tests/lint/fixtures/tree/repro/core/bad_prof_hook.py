"""Fixture: profiler hooks without (or with the wrong kind of) guard."""


class Kernel:
    def __init__(self, prof):
        self.prof = prof

    def unguarded_begin(self, now):
        self.prof.begin("kernel.dispatch")  # no guard at all

    def identity_guarded(self, now):
        if self.prof is not None:  # wired-but-disabled profiler is falsy
            self.prof.end("kernel.dispatch")

    def or_is_not_a_guard(self, now, forced):
        if self.prof or forced:  # either side alone reaches the hook
            self.prof.begin("kernel.dispatch")

    def guard_clause_without_exit(self, now):
        prof = self.prof
        if not prof:
            now += 1  # falls through: hook still reachable unprofiled
        prof.end("kernel.dispatch")
