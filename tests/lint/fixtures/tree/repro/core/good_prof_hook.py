"""Fixture: every accepted form of the truthy profiler guard (all
negatives), including the impl-rename wrapper for early-return sites."""


class Kernel:
    def __init__(self, prof):
        self.prof = prof

    def paired_guards(self, policy):
        prof = self.prof
        if prof:
            prof.begin("sched.pick")
        decision = policy.pick()
        if prof:
            prof.end("sched.pick")
        return decision

    def wrapper_pattern(self, task):
        prof = self.prof
        if prof:
            prof.begin("kernel.dispatch")
            try:
                return self._dispatch(task)
            finally:
                prof.end("kernel.dispatch")
        return self._dispatch(task)

    def conjunction_guard(self, observe):
        prof = self.prof
        if prof and observe:
            prof.begin("grant.compute")
        if prof and observe:
            prof.end("grant.compute")

    def guard_clause(self, now):
        if not self.prof:
            return
        self.prof.begin("rm.recompute")
        self.prof.end("rm.recompute")

    def dotted_receiver(self, kernel):
        prof = kernel.prof
        if prof:
            prof.begin("sched.notify")
            prof.end("sched.notify")

    def _dispatch(self, task):
        return task

    def unrelated_begin(self, transaction):
        transaction.begin()  # not a profiler: receiver is not prof-named
