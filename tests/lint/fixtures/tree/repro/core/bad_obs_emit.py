"""Fixture: obs emission without (or with the wrong kind of) bus guard."""


class GrantEvent:
    pass


class Kernel:
    def __init__(self, obs):
        self.obs = obs

    def unguarded(self, now):
        self.obs.emit(GrantEvent())  # no guard at all

    def identity_guarded(self, now):
        if self.obs is not None:  # wired-but-unsinked bus is falsy
            self.obs.emit(GrantEvent())

    def identity_in_conjunction(self, now, missed):
        if self.obs is not None and missed:
            self.obs.emit(GrantEvent())

    def or_is_not_a_guard(self, now, forced):
        if self.obs or forced:  # either side alone reaches the emit
            self.obs.emit(GrantEvent())

    def guard_clause_without_exit(self, now):
        if not self.obs:
            now += 1  # falls through: emit still reachable unsinked
        self.obs.emit(GrantEvent())
