"""Fixture: a core module importing up into presentation (layering)."""

import repro.cli
from repro.metrics.report import run_report
from repro.viz.timeline import plot


def render(trace):
    return plot(run_report(trace)), repro.cli
