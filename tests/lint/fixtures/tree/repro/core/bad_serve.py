"""Fixture: core reaching up into the serving boundary (layering)."""

from repro.serve.engine import ServeEngine


def serve():
    return ServeEngine
