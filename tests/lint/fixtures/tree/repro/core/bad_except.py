"""Fixture: swallowed errors in the core (bare-except, silent-except)."""


def swallow(fn):
    try:
        fn()
    except:  # noqa: E722
        pass


def silent(fn):
    try:
        fn()
    except Exception:
        pass
