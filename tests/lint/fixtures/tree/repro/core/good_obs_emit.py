"""Fixture: every accepted form of the truthy obs guard (all negatives)."""


class SwitchEvent:
    pass


class Kernel:
    def __init__(self, obs):
        self.obs = obs
        self._obs_bus = obs

    def plain_guard(self, now):
        if self.obs:
            self.obs.emit(SwitchEvent())

    def conjunction_guard(self, now, missed):
        if self.obs and missed:
            self.obs.emit(SwitchEvent())

    def guard_clause(self, now):
        if not self._obs_bus:
            return
        self._obs_bus.emit(SwitchEvent())

    def nested_under_guard(self, now, records):
        if self.obs:
            for record in records:
                self.obs.emit(SwitchEvent())

    def local_alias(self, now, kernel):
        obs = kernel.obs
        if obs:
            obs.emit(SwitchEvent())

    def unrelated_emitter(self, signal):
        signal.emit("not an obs bus, not an Event construction")
