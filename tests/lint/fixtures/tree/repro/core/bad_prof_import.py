"""Fixture: the mechanism layer importing the profiler package.

Hook sites hold a duck-typed ``prof`` slot; the profiler is injected
from above (``Distributor.attach_prof``), never imported from below.
"""

from repro.obs.prof import PhaseProfiler  # noqa: F401
