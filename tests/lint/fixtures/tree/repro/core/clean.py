"""Fixture: everything a core module is allowed to do (all negatives)."""

import random

from repro import errors
from repro.core import grants
from repro.metrics.latency import latency_stats  # only metrics.report is off-limits

_STREAM = random.Random(42)  # seeded: fine


def grant_delay(period):
    try:
        return _STREAM.randint(0, period)
    except ValueError:  # narrow catch: fine
        raise errors.ReproError("bad period") from None


def summarize(trace, tid, period, cpu):
    return latency_stats(trace, tid, period, cpu), grants
