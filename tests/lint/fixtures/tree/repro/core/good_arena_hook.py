"""Fixture: every accepted guard form around columnar fast paths."""


class Kernel:
    def __init__(self, obs, arena):
        self.obs = obs
        self.arena = arena

    def guarded_fast_path(self, now, prev, thread):
        if self.obs:
            self.obs.emit_switch(now, prev, thread, "voluntary", 0)

    def conjunction_guard(self, now, pending, missed):
        if self.obs and missed:
            self.obs.emit_activation(now, pending)

    def guard_clause(self, tag, values):
        if not self.arena:
            return
        self.arena.append_row(tag, values)

    def nested_under_guard(self, now, events):
        if self.arena:
            for event in events:
                self.arena.append_event(event)
            self.arena.flush(now)

    def unrelated_flush(self, pipe, now):
        pipe.flush(now)  # not an obs/arena receiver
