"""Fixture: wall-clock reads inside the simulation core (wallclock)."""

import time
from datetime import datetime


def stamp():
    return time.time()


def stamp2():
    return datetime.now()
