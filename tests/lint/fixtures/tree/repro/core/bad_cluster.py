"""Fixture: core reaching up into the cluster coordinator (layering)."""

from repro.cluster.broker import ClusterBroker


def coordinate():
    return ClusterBroker
