"""Fixture: unseeded randomness inside the simulation core (unseeded-rng)."""

import random
from random import choice


def jitter():
    return random.random()


def fresh():
    return random.Random()


def pickone(xs):
    return choice(xs)
