"""Fixture: columnar fast paths without (or with the wrong) bus guard."""


class Kernel:
    def __init__(self, obs, arena):
        self.obs = obs
        self.arena = arena

    def unguarded_fast_path(self, now, prev, thread):
        self.obs.emit_switch(now, prev, thread, "voluntary", 0)

    def identity_guarded_fast_path(self, now, pending):
        if self.obs is not None:  # wired-but-unsinked bus is falsy
            self.obs.emit_activation(now, pending)

    def unguarded_append(self, tag, values):
        self.arena.append_row(tag, values)

    def unguarded_flush(self, now):
        self.arena.flush(now)

    def or_is_not_a_guard(self, event, forced):
        if self.arena or forced:  # either side alone reaches the append
            self.arena.append_event(event)
