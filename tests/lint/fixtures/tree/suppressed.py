"""Fixture: line-level suppression comments."""

from repro.units import ticks_to_ms

A = ticks_to_ms(1.5)  # repro-lint: disable=float-ticks
B = ticks_to_ms(2.5)  # repro-lint: disable=all
C = ticks_to_ms(3.5)  # repro-lint: disable=layering
