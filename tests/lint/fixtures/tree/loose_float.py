"""Fixture: float literals in tick positions (float-ticks)."""

from repro.units import ms_to_ticks, ticks_to_ms

GOOD = ticks_to_ms(270000)
BAD = ticks_to_ms(1.5)


def run(sim, units):
    sim.run(horizon=2.5)
    sim.step(budget_ticks=-0.5)
    sim.run(horizon=ms_to_ticks(10))
    return units.ticks_to_ms(3.5)
