"""Fixture: scoped rules ignore modules outside repro.core / repro.sim."""

import time


def now():
    try:
        return time.time()
    except:  # noqa: E722
        return 0.0
