"""Fixture: the fixed sporadic-jitter arithmetic (clean).

Mirrors :func:`repro.fuzz.generator._sporadic_sources` and
:func:`repro.fuzz.runner.sporadic_arrivals`: jitter is converted to
whole ticks before it ever touches the tick-valued clock, so every
gap is an integer tick count.
"""

from repro.units import ms_to_ticks, us_to_ticks


def source_schedule(start_ticks, horizon, interarrival_ms, jitter_us):
    interarrival_ticks = ms_to_ticks(interarrival_ms)
    jitter_ticks = us_to_ticks(jitter_us)
    time = start_ticks
    arrivals = []
    while time < horizon:
        arrivals.append(time)
        time += max(1, interarrival_ticks + jitter_ticks)
    return arrivals


def next_arrival(now, interarrival_ticks, jitter_ticks):
    return now + interarrival_ticks + jitter_ticks
