"""Fixture: the pre-fix sporadic-jitter bug shape (tick-units).

The fuzz generator once drew inter-arrival jitter in milliseconds and
added it straight onto a tick-valued clock; these functions reproduce
that dimensional mistake so the flow tier proves it would be caught.
"""


def next_arrival(now, interarrival_ticks, jitter_ms):
    # Cross-unit arithmetic: ms jitter onto a ticks gap.
    gap = interarrival_ticks + jitter_ms
    return now + gap


def jitter_window(deadline, jitter_ms):
    # Cross-unit comparison: ms vs ticks.
    return jitter_ms > deadline
