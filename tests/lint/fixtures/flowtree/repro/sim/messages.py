"""Fixture: the mini MessageBus seam.

``TRANSIT_LOG`` is module-level mutable state, but it is only mutated
inside the seam itself (``MessageBus.send``), so the
``shared-state-race`` rule must stay silent about it.
"""

TRANSIT_LOG: list = []


class BusError(Exception):
    pass


class MessageBus:
    def __init__(self) -> None:
        self.endpoints: dict = {}

    def send(self, src, dst, kind, payload, now):
        if dst not in self.endpoints:
            raise BusError(f"unknown endpoint {dst!r}")
        TRANSIT_LOG.append((src, dst, kind))
        return True

    def deliver(self, now):
        return []
