"""Fixture: helpers OUTSIDE the determinism scope.

The direct ``wallclock`` / ``unseeded-rng`` rules do not cover
``repro.helpers`` — that blindness is exactly what the
``determinism-reach`` flow rule exists to close: a scoped caller that
reaches ``stamp``/``jitter``/``chain`` gets flagged with the path
witness.
"""

import random
import time


def stamp():
    return time.monotonic()


def jitter():
    return random.random()


def chain():
    return stamp() + 1


def pure(x):
    return x + 1
