"""Fixture: determinism sinks reachable from the core (determinism-reach).

No wall-clock call appears in this file — every violation is one or
more hops away, through ``repro.helpers.util``.
"""

from repro.helpers import util


def activate(now):
    return now + util.stamp()


def schedule(now):
    return now + util.chain()


def perturb(now):
    return now + util.jitter()
