"""Fixture: out-of-scope helper calls that reach no sink (clean)."""

from repro.helpers import util


def advance(now):
    return now + util.pure(1)
