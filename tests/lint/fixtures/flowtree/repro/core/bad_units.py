"""Fixture: tick-unit dimensional violations (tick-units)."""

from repro.units import TICKS_PER_MS, ms_to_ticks


def deadline_for(now, duration_ms):
    # Cross-unit arithmetic: ticks + ms.
    return now + duration_ms


def overdue(deadline, elapsed_ms):
    # Cross-unit comparison: ticks vs ms.
    return elapsed_ms > deadline


def relay(duration_ms):
    # Interprocedural: a ms quantity into a ticks parameter.
    return set_deadline(duration_ms)


def set_deadline(deadline):
    return deadline


def double_convert(period):
    # Converting an already-ticks quantity as if it were ms.
    return ms_to_ticks(period)


def wrong_factor(period):
    # Multiplying ticks by a ticks/ms factor.
    return period * TICKS_PER_MS
