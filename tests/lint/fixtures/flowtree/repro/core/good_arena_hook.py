"""Fixture: guarded columnar fast paths — silent under ``--flow``."""


class Kernel:
    def __init__(self, obs):
        self.obs = obs

    def close_period(self, deadline, tid, index):
        if self.obs:
            self.obs.emit_period_close(
                deadline, tid, index, 0, 0, 0, 0, False, False
            )

    def ship(self, arena, now):
        if arena:
            arena.flush(now)
