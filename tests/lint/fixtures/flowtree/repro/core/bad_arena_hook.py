"""Fixture: unguarded columnar fast paths, seen through the flow tier.

The per-module ``obs-unguarded-emit`` rule runs in a ``--flow``
invocation too; these sites must be flagged there exactly as in a
plain run."""


class Kernel:
    def __init__(self, obs):
        self.obs = obs

    def close_period(self, deadline, tid, index):
        self.obs.emit_period_close(
            deadline, tid, index, 0, 0, 0, 0, False, False
        )

    def ship(self, arena, now):
        arena.flush(now)
