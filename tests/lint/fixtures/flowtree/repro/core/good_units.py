"""Fixture: dimensionally sound tick handling (clean)."""

from repro.units import TICKS_PER_MS, ms_to_ticks, ticks_to_ms


def deadline_for(now, duration_ms):
    return now + ms_to_ticks(duration_ms)


def window(period, horizon):
    return min(period, horizon)


def report_ms(deadline, now):
    return ticks_to_ms(deadline - now)


def factor_convert(duration_ms):
    return duration_ms * TICKS_PER_MS


def relay(duration_ms):
    return set_deadline(ms_to_ticks(duration_ms))


def set_deadline(deadline):
    return deadline
