"""Fixture: module-level state with a single lockstep writer (clean)."""

_SCRATCH: dict = {}


def rebuild(snapshot):
    _SCRATCH.clear()
    _SCRATCH.update(snapshot)
    return len(_SCRATCH)
