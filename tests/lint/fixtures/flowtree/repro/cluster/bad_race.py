"""Fixture: shard-unsafe module-level state (shared-state-race).

``EPOCH_CACHE`` is mutated from two public lockstep entry points
(``on_epoch`` and ``drain_reports``) without crossing the MessageBus
seam — exactly the state that diverges once those entry points run in
different worker processes.
"""

EPOCH_CACHE: dict = {}


def on_epoch(node, report):
    EPOCH_CACHE[node] = report


def drain_reports():
    out = dict(EPOCH_CACHE)
    EPOCH_CACHE.clear()
    return out
