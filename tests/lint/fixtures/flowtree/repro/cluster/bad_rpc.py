"""Fixture: idempotency token stranded on a raising send
(rpc-exception-safety)."""

from repro.sim.messages import MessageBus


class MiniBroker:
    def __init__(self, bus: MessageBus) -> None:
        self.bus = bus
        self._pending: dict = {}
        self._seq = 0

    def place(self, task, node, now):
        self._seq += 1
        request_id = f"admit:{task}:{self._seq}"
        self._pending[request_id] = (task, node)
        # BusError out of send() leaves the token stranded forever.
        self.bus.send("broker", node, "admit", {"id": request_id}, now)
        return request_id
