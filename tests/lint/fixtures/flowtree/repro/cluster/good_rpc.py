"""Fixture: exception-safe token bookkeeping around RPC sends (clean)."""

from repro.sim.messages import MessageBus


class SafeBroker:
    def __init__(self, bus: MessageBus) -> None:
        self.bus = bus
        self._pending: dict = {}

    def place(self, task, node, now):
        request_id = f"admit:{task}"
        self._pending[request_id] = (task, node)
        try:
            self.bus.send("broker", node, "admit", {"id": request_id}, now)
        except Exception:
            self._pending.pop(request_id, None)
            raise
        return request_id

    def record(self, task, node, now):
        ok = self.bus.send("broker", node, "ping", {}, now)
        self._pending[task] = (node, ok)
        return ok
