"""Flow-rule behavior on the fixture project under fixtures/flowtree.

Every flow rule gets a violating fixture (asserting exact lines and the
interprocedural path witness) and a clean fixture (asserting silence).
"""

from pathlib import Path

import pytest

from repro.lint import run_lint

FLOWTREE = Path(__file__).parent / "fixtures" / "flowtree"


@pytest.fixture(scope="module")
def flow_violations():
    return run_lint([FLOWTREE], flow=True)


def by_file(violations, name):
    return sorted(
        (v for v in violations if Path(v.path).name == name),
        key=lambda v: (v.line, v.col),
    )


class TestTickUnitsRule:
    def test_flags_all_seeded_sites(self, flow_violations):
        found = by_file(flow_violations, "bad_units.py")
        assert [(v.line, v.rule_id) for v in found] == [
            (8, "tick-units"),
            (13, "tick-units"),
            (18, "tick-units"),
            (27, "tick-units"),
            (32, "tick-units"),
        ]

    def test_cross_unit_arithmetic_and_comparison(self, flow_violations):
        found = by_file(flow_violations, "bad_units.py")
        assert found[0].message == "cross-unit arithmetic: ticks vs ms"
        assert found[1].message == "cross-unit comparison: ms vs ticks"

    def test_interprocedural_pass_carries_witness(self, flow_violations):
        (v,) = [v for v in by_file(flow_violations, "bad_units.py") if v.line == 18]
        assert "ms quantity into ticks parameter 'deadline'" in v.message
        assert v.witness == (
            "repro.core.bad_units.relay",
            "repro.core.bad_units.set_deadline(deadline: ticks)",
        )

    def test_converter_misuse_and_wrong_direction_factor(self, flow_violations):
        found = by_file(flow_violations, "bad_units.py")
        assert "ms_to_ticks(), which expects ms" in found[3].message
        assert "TICKS_PER_MS (ticks/ms factor)" in found[4].message

    def test_clean_fixture_is_silent(self, flow_violations):
        assert by_file(flow_violations, "good_units.py") == []


class TestFuzzSporadicTickUnits:
    """The fuzz generator's sporadic-jitter fix, as dimensional analysis:
    jitter drawn in ms and added to a tick clock is flagged; the shipped
    whole-ticks arithmetic passes clean."""

    def test_pre_fix_bug_shape_is_flagged(self, flow_violations):
        found = by_file(flow_violations, "bad_sporadic.py")
        assert [(v.line, v.rule_id) for v in found] == [
            (11, "tick-units"),
            (17, "tick-units"),
        ]
        assert found[0].message == "cross-unit arithmetic: ticks vs ms"
        assert found[1].message == "cross-unit comparison: ms vs ticks"

    def test_fixed_shape_is_silent(self, flow_violations):
        assert by_file(flow_violations, "good_sporadic.py") == []

    def test_shipped_fuzz_module_passes_dimensional_analysis(self):
        src = Path(__file__).parent.parent.parent / "src" / "repro" / "fuzz"
        violations = run_lint([src], flow=True)
        assert [v for v in violations if v.rule_id == "tick-units"] == []


class TestDeterminismReachRule:
    def test_flags_all_seeded_sites(self, flow_violations):
        found = by_file(flow_violations, "bad_reach.py")
        assert [(v.line, v.rule_id) for v in found] == [
            (11, "determinism-reach"),
            (15, "determinism-reach"),
            (19, "determinism-reach"),
        ]

    def test_two_hop_witness(self, flow_violations):
        (v,) = [v for v in by_file(flow_violations, "bad_reach.py") if v.line == 11]
        assert "time.monotonic() is reachable" in v.message
        assert v.witness == (
            "repro.core.bad_reach.activate",
            "repro.helpers.util.stamp",
            "time.monotonic",
        )

    def test_three_hop_witness(self, flow_violations):
        (v,) = [v for v in by_file(flow_violations, "bad_reach.py") if v.line == 15]
        assert "(3 call(s) away)" in v.message
        assert v.witness == (
            "repro.core.bad_reach.schedule",
            "repro.helpers.util.chain",
            "repro.helpers.util.stamp",
            "time.monotonic",
        )

    def test_unseeded_rng_sink(self, flow_violations):
        (v,) = [v for v in by_file(flow_violations, "bad_reach.py") if v.line == 19]
        assert "random.random() is reachable" in v.message
        assert v.witness[-1] == "random.random"

    def test_clean_fixture_is_silent(self, flow_violations):
        assert by_file(flow_violations, "good_reach.py") == []


class TestSharedStateRaceRule:
    def test_flags_each_mutation_site(self, flow_violations):
        found = by_file(flow_violations, "bad_race.py")
        assert [(v.line, v.rule_id) for v in found] == [
            (13, "shared-state-race"),
            (18, "shared-state-race"),
        ]

    def test_message_names_state_and_other_entry(self, flow_violations):
        found = by_file(flow_violations, "bad_race.py")
        for v in found:
            assert "repro.cluster.bad_race.EPOCH_CACHE" in v.message
            assert "2 lockstep entry points" in v.message
            assert "repro.cluster.bad_race.on_epoch()" in v.message
            assert v.witness == ("repro.cluster.bad_race.drain_reports",)

    def test_single_writer_fixture_is_silent(self, flow_violations):
        assert by_file(flow_violations, "good_race.py") == []

    def test_seam_crossing_state_is_exempt(self, flow_violations):
        # TRANSIT_LOG in messages.py is mutated behind the MessageBus seam.
        assert by_file(flow_violations, "messages.py") == []


class TestRpcExceptionSafetyRule:
    def test_flags_stranded_token(self, flow_violations):
        found = by_file(flow_violations, "bad_rpc.py")
        assert [(v.line, v.rule_id) for v in found] == [
            (18, "rpc-exception-safety"),
        ]
        (v,) = found
        assert "registered into self._pending" in v.message
        assert "try/finally or except path" in v.message

    def test_witness_resolves_annotated_attr_receiver(self, flow_violations):
        (v,) = by_file(flow_violations, "bad_rpc.py")
        assert v.witness == (
            "repro.cluster.bad_rpc.MiniBroker.place",
            "repro.sim.messages.MessageBus.send",
        )

    def test_guarded_and_post_send_registration_are_clean(self, flow_violations):
        assert by_file(flow_violations, "good_rpc.py") == []


class TestArenaHooksUnderFlow:
    """The per-module obs-unguarded-emit rule covers columnar fast
    paths (emit_*, arena append/flush) in a ``--flow`` invocation too."""

    def test_unguarded_fast_paths_are_flagged(self, flow_violations):
        found = by_file(flow_violations, "bad_arena_hook.py")
        assert [v.rule_id for v in found] == ["obs-unguarded-emit"] * 2
        assert "emit_period_close" in found[0].message
        assert "flush" in found[1].message

    def test_guarded_fast_paths_are_silent(self, flow_violations):
        assert by_file(flow_violations, "good_arena_hook.py") == []


class TestFlowTierWiring:
    def test_flow_off_reports_nothing_interprocedural(self):
        flow_ids = {
            "tick-units",
            "determinism-reach",
            "shared-state-race",
            "rpc-exception-safety",
        }
        violations = run_lint([FLOWTREE], flow=False)
        assert not [v for v in violations if v.rule_id in flow_ids]

    def test_flow_rules_honor_rule_config(self, flow_violations):
        from repro.lint.config import LintConfig

        violations = run_lint(
            [FLOWTREE],
            config=LintConfig(disable=("tick-units", "determinism-reach")),
            flow=True,
        )
        got = {v.rule_id for v in violations}
        assert "tick-units" not in got
        assert "determinism-reach" not in got
        assert "shared-state-race" in got

    def test_output_is_deterministic_across_runs(self, flow_violations):
        again = run_lint([FLOWTREE], flow=True)
        assert [v.to_dict() for v in again] == [
            v.to_dict() for v in flow_violations
        ]
