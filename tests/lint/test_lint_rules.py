"""Each lint rule against its positive (violating) and negative (clean)
fixtures under ``tests/lint/fixtures/tree``."""

from pathlib import Path

from repro.lint import run_lint

TREE = Path(__file__).parent / "fixtures" / "tree"


def lint(relpath):
    return run_lint([TREE / relpath])


def rule_ids(violations):
    return [v.rule_id for v in violations]


class TestLayering:
    def test_scheduler_importing_policy_box_is_flagged(self):
        violations = lint("repro/core/scheduler.py")
        assert rule_ids(violations) == ["layering", "layering"]
        assert "policy_box" in violations[0].message
        # Both the absolute and the relative import form are caught.
        assert {v.line for v in violations} == {3, 4}

    def test_core_importing_presentation_is_flagged(self):
        violations = lint("repro/core/presentation.py")
        assert rule_ids(violations) == ["layering"] * 3
        assert any("repro.cli" in v.message for v in violations)
        assert any("repro.viz" in v.message for v in violations)
        assert any("repro.metrics.report" in v.message for v in violations)

    def test_sim_importing_core_or_metrics_is_flagged(self):
        violations = lint("repro/sim/bad_layering.py")
        assert rule_ids(violations) == ["layering", "layering"]

    def test_core_importing_cluster_is_flagged(self):
        violations = lint("repro/core/bad_cluster.py")
        assert rule_ids(violations) == ["layering"]
        assert "repro.cluster" in violations[0].message

    def test_sim_importing_cluster_is_flagged(self):
        violations = lint("repro/sim/bad_cluster.py")
        assert rule_ids(violations) == ["layering"]
        assert "repro.cluster" in violations[0].message

    def test_obs_importing_cluster_is_flagged(self):
        violations = lint("repro/obs/bad_cluster.py")
        assert rule_ids(violations) == ["layering"]
        assert "repro.cluster" in violations[0].message

    def test_obs_importing_core_or_sim_is_flagged(self):
        violations = lint("repro/obs/bad_core.py")
        assert rule_ids(violations) == ["layering", "layering"]
        assert any("repro.core" in v.message for v in violations)
        assert any("repro.sim" in v.message for v in violations)

    def test_core_importing_serve_is_flagged(self):
        violations = lint("repro/core/bad_serve.py")
        assert rule_ids(violations) == ["layering"]
        assert "repro.serve" in violations[0].message

    def test_cluster_importing_serve_is_flagged(self):
        violations = lint("repro/cluster/bad_serve.py")
        assert rule_ids(violations) == ["layering"]
        assert "repro.serve" in violations[0].message

    def test_core_importing_prof_is_flagged(self):
        violations = lint("repro/core/bad_prof_import.py")
        assert rule_ids(violations) == ["layering"]
        assert "repro.obs.prof" in violations[0].message

    def test_sim_importing_prof_is_flagged(self):
        violations = lint("repro/sim/bad_prof_import.py")
        assert rule_ids(violations) == ["layering"]
        assert "repro.obs.prof" in violations[0].message

    def test_core_importing_obs_pipeline_is_flagged(self):
        violations = lint("repro/core/bad_pipeline_import.py")
        assert rule_ids(violations) == ["layering"]
        assert "repro.obs.pipeline" in violations[0].message

    def test_sim_importing_obs_pipeline_is_flagged(self):
        violations = lint("repro/sim/bad_pipeline_import.py")
        assert rule_ids(violations) == ["layering"]
        assert "repro.obs.pipeline" in violations[0].message

    def test_cluster_may_import_obs_pipeline(self):
        assert lint("repro/cluster/good_pipeline_import.py") == []

    def test_serve_may_import_down_and_read_the_wall_clock(self):
        """The serving boundary's wall-clock exemption is a property of
        its *position*, not a blanket waiver: the module imports
        cluster/obs/core and reads time.monotonic, and no rule fires —
        while the reverse imports (above) are all flagged."""
        assert lint("repro/serve/clean.py") == []

    def test_clean_core_module_passes(self):
        assert lint("repro/core/clean.py") == []

    def test_clean_obs_module_passes(self):
        assert lint("repro/obs/clean.py") == []


class TestWallClock:
    def test_wallclock_reads_in_core_are_flagged(self):
        violations = [v for v in lint("repro/core/bad_clock.py") if v.rule_id == "wallclock"]
        assert len(violations) == 2
        assert any("time.time" in v.message for v in violations)
        assert any("datetime.now" in v.message for v in violations)

    def test_wallclock_reads_in_obs_are_flagged(self):
        violations = lint("repro/obs/bad_clock.py")
        assert rule_ids(violations) == ["wallclock"]
        assert "time.time" in violations[0].message

    def test_wallclock_outside_sim_core_is_ignored(self):
        assert lint("outside_scope.py") == []

    def test_prof_package_is_exempt(self):
        """``repro.obs.prof`` is the sanctioned wall-clock funnel: it
        measures host cost by design, and its timings land in a
        separate never-byte-compared artifact."""
        assert lint("repro/obs/prof/clean.py") == []


class TestUnseededRandom:
    def test_global_random_use_in_core_is_flagged(self):
        violations = lint("repro/core/bad_random.py")
        assert rule_ids(violations) == ["unseeded-rng"] * 3
        assert any("choice" in v.message for v in violations)
        assert any("random.random()" in v.message for v in violations)
        assert any("random.Random()" in v.message for v in violations)

    def test_sim_rng_module_is_exempt(self):
        assert lint("repro/sim/rng.py") == []

    def test_seeded_random_instance_passes(self):
        assert lint("repro/core/clean.py") == []


class TestFloatTicks:
    def test_float_literals_in_tick_positions_are_flagged(self):
        violations = lint("loose_float.py")
        assert rule_ids(violations) == ["float-ticks"] * 4
        assert {v.line for v in violations} == {6, 10, 11, 13}

    def test_integer_ticks_and_converted_values_pass(self):
        lines = {v.line for v in lint("loose_float.py")}
        assert 5 not in lines  # ticks_to_ms(270000)
        assert 12 not in lines  # horizon=ms_to_ticks(10)


class TestExceptHygiene:
    def test_bare_and_silent_excepts_in_core_are_flagged(self):
        violations = lint("repro/core/bad_except.py")
        assert rule_ids(violations) == ["bare-except", "silent-except"]

    def test_bare_except_outside_scope_is_ignored(self):
        assert lint("outside_scope.py") == []


class TestObsUnguardedEmit:
    def test_unguarded_and_identity_guarded_emits_are_flagged(self):
        violations = lint("repro/core/bad_obs_emit.py")
        assert rule_ids(violations) == ["obs-unguarded-emit"] * 5
        # The identity-guarded sites get the dedicated explanation.
        identity = [v for v in violations if "identity check" in v.message]
        assert len(identity) == 2
        assert all("falsy" in v.message for v in identity)

    def test_every_accepted_guard_form_passes(self):
        assert lint("repro/core/good_obs_emit.py") == []

    def test_emit_outside_scope_is_ignored(self):
        assert lint("outside_scope.py") == []

    def test_unguarded_and_identity_guarded_prof_hooks_are_flagged(self):
        violations = lint("repro/core/bad_prof_hook.py")
        assert rule_ids(violations) == ["obs-unguarded-emit"] * 4
        identity = [v for v in violations if "identity check" in v.message]
        assert len(identity) == 1
        assert all("falsy" in v.message for v in identity)
        assert all("profiler" in v.message for v in violations)

    def test_every_accepted_prof_guard_form_passes(self):
        """Paired guards, the impl-rename wrapper (hook inside the
        guarded try/finally), conjunctions, guard clauses, and dotted
        receivers all pass; a non-prof ``.begin()`` is ignored."""
        assert lint("repro/core/good_prof_hook.py") == []

    def test_unguarded_arena_fast_paths_are_flagged(self):
        violations = lint("repro/core/bad_arena_hook.py")
        assert rule_ids(violations) == ["obs-unguarded-emit"] * 5
        # emit_* fast paths report as bus sites, append/flush as arena.
        assert sum("bus" in v.message for v in violations) == 2
        assert sum("arena" in v.message for v in violations) == 3
        identity = [v for v in violations if "identity check" in v.message]
        assert len(identity) == 1

    def test_every_accepted_arena_guard_form_passes(self):
        assert lint("repro/core/good_arena_hook.py") == []

    def test_serve_layer_prof_hooks_are_in_scope(self):
        violations = lint("repro/serve/bad_prof_hook.py")
        assert rule_ids(violations) == ["obs-unguarded-emit"]
        assert "serve.http-parse" not in violations[0].message
        assert "'prof'" in violations[0].message


class TestWholeTree:
    def test_fixture_tree_totals(self):
        """Linting the whole fixture tree finds every seeded violation —
        and nothing in the clean files."""
        violations = run_lint([TREE])
        by_file = {}
        for v in violations:
            by_file.setdefault(Path(v.path).name, []).append(v)
        assert "clean.py" not in by_file
        assert "rng.py" not in by_file
        assert "outside_scope.py" not in by_file
        assert len(by_file["suppressed.py"]) == 1

    def test_shipped_src_tree_is_clean(self):
        """Acceptance: the real src/ tree lints clean."""
        src = Path(__file__).parents[2] / "src"
        assert run_lint([src]) == []
