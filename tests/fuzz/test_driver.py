"""Campaign driver + replay: clean campaigns, reproducer persistence,
and the trace-replay loop."""

from repro.fuzz import (
    load_trace,
    replay_corpus,
    replay_trace,
    run_campaign,
)


class TestCampaign:
    def test_small_clean_campaign(self, tmp_path):
        stats = run_campaign(6, seed=1, out_dir=tmp_path)
        assert stats.ok
        assert stats.scenarios == 6
        assert stats.decisions_checked > 0
        assert "clean" in stats.summary()
        assert list(tmp_path.glob("*.trace.json")) == []

    def test_injected_campaign_writes_shrunk_reproducers(self, tmp_path):
        stats = run_campaign(4, seed=2, inject="edf-invert", out_dir=tmp_path)
        assert not stats.ok
        assert "failing scenario" in stats.summary()
        for failure in stats.failures:
            assert failure.outcome.startswith("invariant:")
            assert len(failure.shrunk.tasks) <= len(failure.spec.tasks)
            assert failure.trace_path is not None and failure.trace_path.is_file()
            trace = load_trace(failure.trace_path)
            assert trace.expect == failure.outcome
            assert trace.inject == "edf-invert"
            assert trace.meta["campaign_seed"] == 2
            assert trace.meta["campaign_index"] == failure.index

    def test_time_budget_stops_early(self, tmp_path):
        stats = run_campaign(
            10_000, seed=3, out_dir=tmp_path, time_budget_s=0.0
        )
        assert stats.scenarios == 0

    def test_campaigns_are_reproducible(self, tmp_path):
        first = run_campaign(3, seed=4, out_dir=tmp_path / "a")
        second = run_campaign(3, seed=4, out_dir=tmp_path / "b")
        assert first.decisions_checked == second.decisions_checked
        assert first.denials == second.denials


class TestReplay:
    def test_reproducer_round_trip(self, tmp_path):
        stats = run_campaign(4, seed=2, inject="edf-invert", out_dir=tmp_path)
        assert stats.failures
        replayed = replay_trace(stats.failures[0].trace_path)
        assert replayed.matches
        assert "reproduced" in replayed.summary()

    def test_divergence_is_reported(self, tmp_path):
        stats = run_campaign(4, seed=2, inject="edf-invert", out_dir=tmp_path)
        assert stats.failures
        path = stats.failures[0].trace_path
        # Replaying WITHOUT re-arming the injection must diverge: the
        # recorded failure only exists under the synthetic bug.
        trace = load_trace(path)
        fixed = type(trace)(spec=trace.spec, expect=trace.expect, inject=None)
        from repro.fuzz import write_trace

        disarmed = write_trace(tmp_path / "disarmed.trace.json", fixed)
        replayed = replay_trace(disarmed)
        assert not replayed.matches
        assert "DIVERGED" in replayed.summary()

    def test_replay_corpus_sorts_by_name(self, tmp_path):
        run_campaign(4, seed=2, inject="edf-invert", out_dir=tmp_path)
        results = replay_corpus(tmp_path)
        names = [r.path.name for r in results]
        assert names == sorted(names)
