"""ScenarioSpec / trace-format unit tests: validation, canonical JSON,
round-tripping, and loud schema-version rejection."""

import json

import pytest

from repro import units
from repro.fuzz import (
    TRACE_SCHEMA_VERSION,
    ClusterSpec,
    LevelSpec,
    ScenarioSpec,
    SpecError,
    SporadicSpec,
    TaskSpec,
    TraceFile,
    load_trace,
    write_trace,
)


def make_spec(**overrides) -> ScenarioSpec:
    task = TaskSpec(
        name="a",
        behavior="follower",
        levels=(
            LevelSpec(units.ms_to_ticks(10), units.ms_to_ticks(3)),
            LevelSpec(units.ms_to_ticks(10), units.ms_to_ticks(1)),
        ),
        arrival_ticks=0,
    )
    base = dict(
        seed=7,
        horizon_ticks=units.ms_to_ticks(100),
        machine="ideal",
        tasks=(task,),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestValidation:
    def test_valid_spec_chains(self):
        spec = make_spec()
        assert spec.validate() is spec

    def test_bad_horizon(self):
        with pytest.raises(SpecError, match="horizon"):
            make_spec(horizon_ticks=0).validate()

    def test_unknown_machine(self):
        with pytest.raises(SpecError, match="machine"):
            make_spec(machine="vapor").validate()

    def test_duplicate_names(self):
        task = make_spec().tasks[0]
        with pytest.raises(SpecError, match="duplicate"):
            make_spec(tasks=(task, task)).validate()

    def test_unknown_behavior(self):
        task = make_spec().tasks[0]
        bad = TaskSpec(
            name="b",
            behavior="chaotic",
            levels=task.levels,
            arrival_ticks=0,
        )
        with pytest.raises(SpecError, match="behavior"):
            make_spec(tasks=(bad,)).validate()

    def test_departure_before_arrival(self):
        task = make_spec().tasks[0]
        bad = TaskSpec(
            name="b",
            behavior="follower",
            levels=task.levels,
            arrival_ticks=100,
            departure_ticks=50,
        )
        with pytest.raises(SpecError, match="departure"):
            make_spec(tasks=(bad,)).validate()

    def test_sporadic_needs_server(self):
        source = TaskSpec(
            name="sp",
            behavior="follower",
            levels=(),
            arrival_ticks=0,
            sporadic=SporadicSpec(
                interarrival_ticks=units.ms_to_ticks(10),
                jitter_ticks=units.us_to_ticks(100),
                burst_ticks=units.us_to_ticks(200),
            ),
        )
        with pytest.raises(SpecError, match="Sporadic Server"):
            make_spec(tasks=(source,), server=False).validate()
        make_spec(tasks=(source,), server=True).validate()

    def test_cluster_bounds(self):
        with pytest.raises(SpecError, match="nodes"):
            make_spec(cluster=ClusterSpec(nodes=0)).validate()
        with pytest.raises(SpecError, match="drop_rate"):
            make_spec(cluster=ClusterSpec(nodes=2, drop_rate=1.0)).validate()

    def test_min_rate_sum_counts_periodic_only(self):
        spec = make_spec()
        assert spec.min_rate_sum == pytest.approx(0.1)


class TestRoundTrip:
    def test_json_round_trip_is_identity(self):
        spec = make_spec(
            server=True,
            cluster=ClusterSpec(nodes=3, drop_rate=0.05),
            notes={"mode": "test"},
        )
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.to_json() == spec.to_json()

    def test_canonical_json_is_key_sorted_and_compact(self):
        text = make_spec().to_json()
        assert " " not in text
        data = json.loads(text)
        assert list(data) == sorted(data)

    def test_bad_json_is_a_spec_error(self):
        with pytest.raises(SpecError, match="not valid JSON"):
            ScenarioSpec.from_json("{nope")
        with pytest.raises(SpecError, match="object"):
            ScenarioSpec.from_json("[1, 2]")


class TestTraceFile:
    def test_write_load_round_trip(self, tmp_path):
        trace = TraceFile(
            spec=make_spec(),
            expect="invariant:edf-order",
            inject="edf-invert",
            meta={"note": "unit test"},
        )
        path = write_trace(tmp_path / "t.trace.json", trace)
        loaded = load_trace(path)
        assert loaded == trace

    def test_future_schema_version_is_rejected(self, tmp_path):
        trace = TraceFile(spec=make_spec())
        path = write_trace(tmp_path / "t.trace.json", trace)
        data = json.loads(path.read_text())
        data["schema_version"] = TRACE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(data))
        with pytest.raises(SpecError, match="newer repro"):
            load_trace(path)

    def test_wrong_kind_is_rejected(self, tmp_path):
        trace = TraceFile(spec=make_spec())
        path = write_trace(tmp_path / "t.trace.json", trace)
        data = json.loads(path.read_text())
        data["kind"] = "repro.obs.events"
        path.write_text(json.dumps(data))
        with pytest.raises(SpecError, match="not a fuzz trace"):
            load_trace(path)

    def test_missing_file_is_loud(self, tmp_path):
        with pytest.raises(SpecError, match="no trace file"):
            load_trace(tmp_path / "absent.trace.json")
