"""The ISSUE's acceptance loop, end to end: a synthetically injected
scheduler bug is caught by the sanitizer oracle, shrunk to a tiny
reproducer, persisted as a trace file, and reproduced from that file."""

from pathlib import Path

from repro.fuzz import load_trace, replay_trace, run_campaign


def test_injected_bug_is_caught_shrunk_and_replayed(tmp_path):
    stats = run_campaign(
        6, seed=11, inject="edf-invert", out_dir=tmp_path
    )
    # Caught: the armed EDF inversion cannot survive the oracle.
    assert not stats.ok
    failure = stats.failures[0]
    assert failure.outcome == "invariant:edf-order"

    # Shrunk: the reproducer is tiny (the ISSUE asks for <= 3 tasks).
    assert len(failure.shrunk.tasks) <= 3

    # Persisted: a self-contained trace file exists on disk.
    path = Path(failure.trace_path)
    assert path.is_file()
    trace = load_trace(path)
    assert trace.expect == failure.outcome
    assert trace.inject == "edf-invert"

    # Reproduced: replaying the file re-arms the bug and hits the same
    # outcome against the current code.
    replayed = replay_trace(path)
    assert replayed.matches, replayed.summary()
