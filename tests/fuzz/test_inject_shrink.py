"""Injection + shrinking: the pipeline's self-test machinery.

Armed synthetic scheduler bugs must be caught by the sanitizer oracle,
and the shrinker must reduce a failing spec while preserving the exact
failure outcome."""

import pytest

from repro.errors import SimulationError
from repro.fuzz import generate, run_spec, shrink
from repro.fuzz.inject import INJECTIONS, injector


class TestInjection:
    def test_unknown_injection_is_loud(self):
        with pytest.raises(SimulationError, match="unknown injection"):
            injector("schrodinger")

    def test_none_is_a_no_op(self):
        assert injector(None) is None

    def test_edf_invert_is_caught(self):
        caught = 0
        for seed in range(6):
            result = run_spec(generate(seed), inject="edf-invert")
            if result.outcome == "invariant:edf-order":
                caught += 1
        assert caught >= 4

    def test_terminate_admitted_is_caught(self):
        caught = 0
        for seed in range(6):
            result = run_spec(generate(seed), inject="terminate-admitted")
            if result.outcome.startswith("invariant:"):
                caught += 1
        assert caught >= 4

    def test_registry_names_are_stable(self):
        # CI and the CLI --inject choices key off these names.
        assert set(INJECTIONS) == {"edf-invert", "terminate-admitted"}


class TestShrink:
    def failing_case(self):
        for seed in range(10):
            spec = generate(seed)
            result = run_spec(spec, inject="edf-invert")
            if result.outcome == "invariant:edf-order" and len(spec.tasks) >= 3:
                return spec, result.outcome
        pytest.fail("no seed in range produced a multi-task EDF failure")

    def test_shrunk_spec_preserves_the_outcome(self):
        spec, outcome = self.failing_case()
        shrunk = shrink(spec, outcome, inject="edf-invert")
        assert run_spec(shrunk.spec, inject="edf-invert").outcome == outcome

    def test_shrink_reduces_and_records_provenance(self):
        spec, outcome = self.failing_case()
        shrunk = shrink(spec, outcome, inject="edf-invert")
        assert len(shrunk.spec.tasks) <= len(spec.tasks)
        assert shrunk.spec.notes["shrunk_from_tasks"] == len(spec.tasks)
        assert shrunk.runs > 0

    def test_shrunk_spec_still_validates(self):
        spec, outcome = self.failing_case()
        shrunk = shrink(spec, outcome, inject="edf-invert")
        assert shrunk.spec.validate() is shrunk.spec

    def test_run_cap_is_respected(self):
        spec, outcome = self.failing_case()
        shrunk = shrink(spec, outcome, inject="edf-invert", max_runs=5)
        assert shrunk.runs <= 5
