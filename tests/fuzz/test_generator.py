"""Generator properties: determinism, validity, and the tick-units
contract (the ISSUE's hypothesis satellite lives here)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz import ScenarioSpec, generate, scenario_seed
from repro.fuzz.generator import CAPACITY, PRESSURE_HIGH


SEEDS = st.integers(min_value=0, max_value=2**64 - 1)


class TestDeterminism:
    @given(seed=SEEDS, cluster=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_same_seed_same_bytes(self, seed, cluster):
        first = generate(seed, cluster=cluster).to_json()
        second = generate(seed, cluster=cluster).to_json()
        assert first == second

    @given(seed=SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_round_trips_losslessly_through_the_trace_format(self, seed):
        spec = generate(seed)
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.to_json() == spec.to_json()

    def test_core_and_cluster_streams_are_independent(self):
        assert generate(5).to_json() != generate(5, cluster=True).to_json()

    def test_scenario_seeds_are_distinct_per_index_and_mode(self):
        seeds = {scenario_seed(9, i) for i in range(100)}
        seeds |= {scenario_seed(9, i, cluster=True) for i in range(100)}
        assert len(seeds) == 200


class TestValidity:
    @given(seed=SEEDS, cluster=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_every_generated_spec_validates(self, seed, cluster):
        spec = generate(seed, cluster=cluster)
        assert spec.validate() is spec

    @given(seed=SEEDS)
    @settings(max_examples=60, deadline=None)
    def test_all_times_are_integer_ticks(self, seed):
        spec = generate(seed)
        assert isinstance(spec.horizon_ticks, int)
        for task in spec.tasks:
            assert isinstance(task.arrival_ticks, int)
            for level in task.levels:
                assert isinstance(level.period_ticks, int)
                assert isinstance(level.cpu_ticks, int)
            if task.sporadic is not None:
                # The satellite fix: jitter is whole ticks, never
                # fractional milliseconds.
                assert isinstance(task.sporadic.jitter_ticks, int)
                assert isinstance(task.sporadic.interarrival_ticks, int)

    @given(seed=SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_levels_strictly_decrease(self, seed):
        for task in generate(seed).tasks:
            cpus = [level.cpu_ticks for level in task.levels]
            assert cpus == sorted(cpus, reverse=True)
            assert len(set(cpus)) == len(cpus)

    @given(seed=SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_pressure_stays_in_band(self, seed):
        # The generator aims around the admission boundary; the realized
        # demand can overshoot the target because task rates are drawn
        # in coarse chunks, but it must stay in the same neighborhood.
        spec = generate(seed)
        assert 0.0 < spec.min_rate_sum < 2.5 * PRESSURE_HIGH * CAPACITY

    @given(seed=SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_cluster_specs_script_only_periodic_followers(self, seed):
        spec = generate(seed, cluster=True)
        assert spec.cluster is not None and not spec.server
        for task in spec.tasks:
            assert task.sporadic is None
            assert not task.quiescent_spans and not task.start_quiescent
            assert task.behavior in ("follower", "greedy")
