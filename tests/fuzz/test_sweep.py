"""Threshold sweep: the empirical admission boundary sits near the
analytic 0.96 capacity line, and the curve rides along in BENCH.json."""

import json

import pytest

from repro.fuzz.generator import CAPACITY
from repro.fuzz.sweep import (
    SWEEP_KIND,
    SWEEP_SCHEMA_VERSION,
    admission_threshold,
    append_to_bench,
    render_sweep,
    run_sweep,
)


class TestThreshold:
    def test_threshold_brackets_the_capacity_line(self):
        point = admission_threshold(3, iterations=8)
        # The empirical boundary sits at or below the mix's machine's
        # analytic line (integer-tick rounding only ever costs
        # capacity), and a sane mix lands within striking distance.
        cap = point["machine_capacity"]
        assert 0.5 * cap <= point["threshold_util"] <= cap + 1e-9
        assert point["capacity"] == CAPACITY
        assert point["tasks"] >= 1

    def test_point_is_deterministic(self):
        assert admission_threshold(5, iterations=6) == admission_threshold(
            5, iterations=6
        )


class TestSweepPayload:
    @pytest.fixture(scope="class")
    def payload(self):
        return run_sweep(1, mixes=2, iterations=6)

    def test_schema(self, payload):
        assert payload["schema_version"] == SWEEP_SCHEMA_VERSION
        assert payload["kind"] == SWEEP_KIND
        assert len(payload["mixes"]) == 2

    def test_render_has_one_row_per_mix(self, payload):
        text = render_sweep(payload)
        assert text.count("\n") == 1 + len(payload["mixes"])

    def test_append_to_bench_preserves_payload(self, payload, tmp_path):
        bench = tmp_path / "BENCH.json"
        original = {"schema_version": 1, "results": [{"name": "x"}]}
        bench.write_text(json.dumps(original))
        append_to_bench(bench, payload)
        merged = json.loads(bench.read_text())
        assert merged["results"] == original["results"]
        assert merged["fuzz_thresholds"] == payload
