"""Runner tests: specs materialize and run clean, denials classify as
expected outcomes, and sporadic schedules are pure functions of the spec."""

import pytest

from repro import units
from repro.errors import SimulationError
from repro.fuzz import LevelSpec, ScenarioSpec, TaskSpec, generate, run_spec
from repro.fuzz.runner import sporadic_arrivals
from repro.fuzz.spec import SporadicSpec


def follower(name, period_ms, cpu_ms, **kw) -> TaskSpec:
    return TaskSpec(
        name=name,
        behavior=kw.pop("behavior", "follower"),
        levels=(LevelSpec(units.ms_to_ticks(period_ms), units.ms_to_ticks(cpu_ms)),),
        arrival_ticks=kw.pop("arrival_ticks", 0),
        **kw,
    )


class TestCoreRuns:
    def test_small_admissible_mix_is_clean(self):
        spec = ScenarioSpec(
            seed=1,
            horizon_ticks=units.ms_to_ticks(100),
            machine="ideal",
            tasks=(follower("a", 10, 2), follower("b", 20, 5)),
        )
        result = run_spec(spec)
        assert result.ok and result.outcome == "ok"
        assert set(result.admitted) == {"a", "b"}
        assert result.decisions_checked > 0

    def test_over_scheduling_is_a_denial_not_a_failure(self):
        spec = ScenarioSpec(
            seed=1,
            horizon_ticks=units.ms_to_ticks(60),
            machine="ideal",
            tasks=(
                follower("big1", 10, 6),
                follower("big2", 10, 6, arrival_ticks=units.ms_to_ticks(5)),
            ),
        )
        result = run_spec(spec)
        assert result.ok
        assert result.admitted == ("big1",)
        assert result.denied == ("big2",)

    def test_every_behavior_runs_clean(self):
        tasks = (
            follower("f", 20, 3),
            follower("g", 20, 3, behavior="greedy"),
            follower("j", 20, 3, behavior="jittery"),
            follower(
                "d", 20, 3, behavior="drifting",
                drift_ticks_per_period=units.us_to_ticks(100),
            ),
        )
        spec = ScenarioSpec(
            seed=3,
            horizon_ticks=units.ms_to_ticks(120),
            machine="calibrated",
            tasks=tasks,
        )
        result = run_spec(spec)
        assert result.ok, result.detail
        assert len(result.admitted) == 4

    def test_departure_and_quiescence_script(self):
        spec = ScenarioSpec(
            seed=4,
            horizon_ticks=units.ms_to_ticks(150),
            machine="ideal",
            tasks=(
                follower("stays", 10, 2),
                follower(
                    "churns", 10, 2,
                    departure_ticks=units.ms_to_ticks(80),
                ),
                follower(
                    "sleeper", 10, 2,
                    quiescent_spans=(
                        (units.ms_to_ticks(40), units.ms_to_ticks(90)),
                    ),
                ),
            ),
        )
        result = run_spec(spec)
        assert result.ok, result.detail

    def test_invalid_spec_is_rejected_before_running(self):
        spec = ScenarioSpec(
            seed=0, horizon_ticks=0, machine="ideal", tasks=()
        )
        with pytest.raises(SimulationError):
            run_spec(spec)


class TestSporadicArrivals:
    def source(self, jitter_us=500):
        return TaskSpec(
            name="sp",
            behavior="follower",
            levels=(),
            arrival_ticks=0,
            sporadic=SporadicSpec(
                interarrival_ticks=units.ms_to_ticks(10),
                jitter_ticks=units.us_to_ticks(jitter_us),
                burst_ticks=units.us_to_ticks(200),
            ),
        )

    def spec_with(self, source, seed=5):
        return ScenarioSpec(
            seed=seed,
            horizon_ticks=units.ms_to_ticks(100),
            machine="ideal",
            tasks=(follower("base", 20, 2), source),
            server=True,
        )

    def test_pure_function_of_the_spec(self):
        source = self.source()
        first = sporadic_arrivals(self.spec_with(source), source)
        second = sporadic_arrivals(self.spec_with(source), source)
        assert first == second
        assert all(isinstance(t, int) for t in first)

    def test_jitter_respects_bounds_and_monotonicity(self):
        source = self.source()
        arrivals = sporadic_arrivals(self.spec_with(source), source)
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        lo = units.ms_to_ticks(10) - units.us_to_ticks(500)
        hi = units.ms_to_ticks(10) + units.us_to_ticks(500)
        assert all(lo <= gap <= hi for gap in gaps)

    def test_sporadic_scenario_runs_clean(self):
        source = self.source()
        result = run_spec(self.spec_with(source))
        assert result.ok, result.detail


class TestClusterRuns:
    def test_generated_cluster_spec_is_clean(self):
        spec = generate(0, cluster=True)
        result = run_spec(spec)
        assert result.ok, result.detail
        assert result.decisions_checked > 0

    def test_cluster_placements_report_as_admitted(self):
        spec = generate(0, cluster=True)
        result = run_spec(spec)
        assert set(result.admitted) <= {t.name for t in spec.tasks}
