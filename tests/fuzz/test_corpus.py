"""The committed regression corpus, replayed in tier-1.

Every ``tests/fuzz/corpus/*.trace.json`` must reproduce its recorded
outcome against the current code: ``expect: ok`` entries prove the
invariants still hold on once-tricky scenarios (including the kernel
dispatch-race reproducers the fuzzer caught), and injected entries
prove the pipeline still detects a real scheduler bug."""

from pathlib import Path

import pytest

from repro.fuzz import load_trace, replay_trace

CORPUS = Path(__file__).parent / "corpus"
ENTRIES = sorted(CORPUS.glob("*.trace.json"))


def test_corpus_is_populated():
    assert len(ENTRIES) >= 5
    names = {p.name for p in ENTRIES}
    assert any("kernel-dispatch-race" in n for n in names)
    assert any("cluster" in n for n in names)
    assert any("inject" in n for n in names)


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_reproduces(path):
    replayed = replay_trace(path)
    assert replayed.matches, replayed.summary()


class TestKernelDispatchRaceRegression:
    """The fuzzer's first real catch: a stale Idle pick dispatched after
    the switch cost carried the clock across another thread's period
    boundary slept through that thread's entire period (grant-delivery).
    The shrunk reproducers are pinned here as must-stay-clean entries."""

    def entries(self):
        found = sorted(CORPUS.glob("kernel-dispatch-race-*.trace.json"))
        assert len(found) == 2
        return found

    def test_reproducers_stay_clean(self):
        for path in self.entries():
            replayed = replay_trace(path)
            assert replayed.expect == "ok"
            assert replayed.matches, replayed.summary()
            assert replayed.result.decisions_checked > 0

    def test_shape_matches_the_race_window(self):
        # The race needs a real (calibrated) switch cost and harmonic
        # periods so a boundary can land inside the switch window.
        for path in self.entries():
            spec = load_trace(path).spec
            assert spec.machine == "calibrated"
            assert len(spec.tasks) >= 2
