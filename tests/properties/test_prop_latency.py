"""Property test: the 2P - 2C latency bound over random task sets.

The paper's bound is on the *service gap* (the longest interval in
which a thread receives none of its granted CPU); the gap between
consecutive grant *completions* may legitimately reach 2P - C (grant
finishing at the start of one period and at the very end of the next).
Both are asserted against their own bounds.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import MachineConfig, SimConfig, units
from repro.core.distributor import ResourceDistributor
from repro.metrics import latency_stats
from repro.workloads import single_entry_definition


@st.composite
def latency_cases(draw):
    seed = draw(st.integers(min_value=0, max_value=3000))
    probe_period = draw(st.sampled_from([10, 20, 30]))
    probe_rate = draw(st.floats(min_value=0.1, max_value=0.4))
    noise_count = draw(st.integers(min_value=0, max_value=3))
    return seed, probe_period, probe_rate, noise_count


class TestLatencyBound:
    @given(latency_cases())
    @settings(
        max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_completion_gaps_never_exceed_2p_minus_2c(self, case):
        seed, probe_period, probe_rate, noise_count = case
        rng = random.Random(seed)
        rd = ResourceDistributor(machine=MachineConfig.ideal(), sim=SimConfig(seed=seed))
        probe = rd.admit(
            single_entry_definition("probe", probe_period, probe_rate)
        )
        remaining = 1.0 - probe_rate - 0.05
        for i in range(noise_count):
            share = rng.uniform(0.05, max(0.06, remaining / (noise_count - i)))
            share = min(share, remaining)
            if share < 0.05:
                break
            remaining -= share
            rd.admit(
                single_entry_definition(
                    f"noise{i}",
                    rng.choice([5, 7, 10, 25, 40]),
                    share,
                    greedy=rng.random() < 0.5,
                )
            )
        rd.run_for(units.ms_to_ticks(40 * probe_period))
        period = units.ms_to_ticks(probe_period)
        cpu = max(1, round(period * probe_rate))
        stats = latency_stats(rd.trace, probe.tid, period, cpu)
        assert stats is not None
        assert stats.max_service_gap <= stats.bound, (
            f"service gap {stats.max_service_gap} over the 2P-2C bound "
            f"{stats.bound} ({stats.bound_utilization:.2f}x)"
        )
        assert stats.max_gap <= stats.completion_bound, (
            f"completion gap {stats.max_gap} over the 2P-C bound "
            f"{stats.completion_bound}"
        )
        assert stats.within_bound
