"""Property tests: event queue ordering, clock arithmetic, resource
lists, policy box invention."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.core.clock_sync import (
    conservative_period,
    postpone_for_period,
    ticks_per_external_period,
)
from repro.core.policy_box import PolicyBox
from repro.core.resource_list import ResourceList, ResourceListEntry
from repro.sim.events import EventQueue


def _fn(ctx):
    yield  # pragma: no cover


class TestEventQueueProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=50))
    def test_pop_due_is_sorted_and_stable(self, times):
        q = EventQueue()
        events = [q.schedule(t, lambda: None) for t in times]
        popped = q.pop_due(10_000)
        assert [e.time for e in popped] == sorted(e.time for e in popped)
        # Stability: equal times keep scheduling order.
        for a, b in zip(popped, popped[1:]):
            if a.time == b.time:
                assert a.seq < b.seq

    @given(
        st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=30),
        st.data(),
    )
    def test_cancelled_events_never_fire(self, times, data):
        q = EventQueue()
        events = [q.schedule(t, lambda: None) for t in times]
        to_cancel = data.draw(st.sets(st.integers(0, len(events) - 1)))
        for i in to_cancel:
            q.cancel(events[i])
        popped = {e.seq for e in q.pop_due(1_000)}
        assert popped == {e.seq for i, e in enumerate(events) if i not in to_cancel}


class TestClockSyncProperties:
    skews = st.floats(min_value=-5_000.0, max_value=5_000.0, allow_nan=False)
    periods = st.integers(min_value=units.MIN_PERIOD_TICKS, max_value=units.sec_to_ticks(1))

    @given(periods, skews)
    def test_postpone_is_never_negative(self, period, skew):
        assert postpone_for_period(period, period, skew) >= 0

    @given(periods, st.floats(min_value=0.0, max_value=5_000.0))
    def test_conservative_period_absorbs_worst_case(self, period, max_skew):
        declared = conservative_period(period, max_skew)
        assert declared <= period
        # At the worst fast skew, the needed postponement is >= 0.
        assert postpone_for_period(declared, period, max_skew) >= 0
        # And the long-run pace matches the external clock exactly.
        target = ticks_per_external_period(period, max_skew)
        assert declared + postpone_for_period(declared, period, max_skew) == pytest.approx(
            target, abs=1.0
        )


class TestResourceListProperties:
    rate_lists = st.lists(
        st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
        min_size=1,
        max_size=8,
        unique=True,
    )

    @given(rate_lists)
    def test_best_fitting_is_highest_fitting_level(self, rates):
        period = units.ms_to_ticks(10)
        cpu = sorted({max(1, round(period * r)) for r in rates}, reverse=True)
        entries = [ResourceListEntry(period, c, _fn) for c in cpu]
        rl = ResourceList(entries)
        for probe in [r / 2 for r in rates] + list(rates):
            best = rl.best_fitting(probe)
            if best is None:
                assert all(e.rate > probe + 1e-12 for e in rl)
            else:
                assert best.rate <= probe + 1e-9
                better = [e for e in rl if e.rate > best.rate]
                assert all(e.rate > probe for e in better)

    @given(rate_lists)
    def test_straddling_brackets_the_target(self, rates):
        period = units.ms_to_ticks(10)
        cpu = sorted({max(1, round(period * r)) for r in rates}, reverse=True)
        rl = ResourceList([ResourceListEntry(period, c, _fn) for c in cpu])
        for target in (0.005, 0.3, 0.77, 1.0):
            above, below = rl.straddling(target)
            if above is not None:
                assert above.rate >= target - 1e-9
            if below is not None:
                assert below.rate < target
            if above is not None and below is not None:
                assert above.rate > below.rate


class TestPolicyBoxProperties:
    @given(st.integers(min_value=1, max_value=20))
    def test_invented_shares_fit_capacity(self, n):
        box = PolicyBox(capacity=0.96)
        ids = {box.register_task(f"t{i}") for i in range(n)}
        policy = box.resolve(ids)
        assert sum(policy.shares.values()) <= 0.96 + 1e-9
        assert policy.invented
        assert set(policy.shares) == ids

    @given(st.integers(min_value=2, max_value=10), st.integers(min_value=0, max_value=99))
    def test_resolution_is_deterministic(self, n, salt):
        box = PolicyBox(capacity=0.96)
        ids = {box.register_task(f"t{salt}-{i}") for i in range(n)}
        a = box.resolve(ids)
        b = box.resolve(ids)
        assert a.shares == b.shares
        assert a.exclusive_preference == b.exclusive_preference
