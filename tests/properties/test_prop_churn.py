"""Property tests: randomized lifecycle churn.

Random scripts of admissions, exits, quiescence transitions, and wakes
against the Resource Distributor — checked with the trace validator and
the paper's guarantees.  This is the closest thing to the production
life of the system: a dynamic task set with overload coming and going.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AdmissionError, MachineConfig, SimConfig, units
from repro.core.distributor import ResourceDistributor
from repro.core.threads import ThreadState
from repro.metrics import validate_trace
from repro.workloads import random_resource_list
from repro.tasks.base import TaskDefinition


def ms(x):
    return units.ms_to_ticks(x)


@st.composite
def churn_scripts(draw):
    seed = draw(st.integers(min_value=0, max_value=9999))
    steps = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["admit", "exit", "quiesce", "wake"]),
                st.integers(min_value=5, max_value=30),  # gap in ms
            ),
            min_size=3,
            max_size=12,
        )
    )
    return seed, steps


def run_script(seed, steps):
    rng = random.Random(seed)
    rd = ResourceDistributor(machine=MachineConfig.ideal(), sim=SimConfig(seed=seed))
    live: list = []
    quiescent: list = []
    time_ms = 1.0
    for action, gap in steps:
        time_ms += gap

        def do(action=action):
            if action == "admit":
                rl = random_resource_list(rng, max_levels=4, max_rate=0.5)
                try:
                    thread = rd.admit(
                        TaskDefinition(name=f"t{rng.randrange(1 << 30)}", resource_list=rl)
                    )
                    live.append(thread)
                except AdmissionError:
                    pass
            elif action == "exit" and live:
                thread = live.pop(rng.randrange(len(live)))
                rd.exit_thread(thread.tid)
            elif action == "quiesce" and live:
                thread = live.pop(rng.randrange(len(live)))
                rd.enter_quiescent(thread.tid)
                quiescent.append(thread)
            elif action == "wake" and quiescent:
                thread = quiescent.pop(rng.randrange(len(quiescent)))
                rd.wake(thread.tid)
                live.append(thread)

        rd.at(ms(time_ms), do)
    # Settle long enough for every deferred change to land: an exiting
    # thread keeps its grant through its current period (up to 100 ms,
    # the longest generated period) during which the machine can be
    # transiently over-committed, and only after that boundary does
    # unallocated time exist to activate a pending first grant.
    rd.run_for(ms(time_ms + 400))
    return rd, live, quiescent


class TestChurn:
    @given(churn_scripts())
    @settings(
        max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_no_misses_through_arbitrary_churn(self, script):
        seed, steps = script
        rd, live, quiescent = run_script(seed, steps)
        assert rd.trace.misses() == [], [str(m) for m in rd.trace.misses()]

    @given(churn_scripts())
    @settings(
        max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_trace_invariants_hold(self, script):
        seed, steps = script
        rd, live, quiescent = run_script(seed, steps)
        report = validate_trace(rd.trace, end_time=rd.now)
        assert report.ok, report.summary()

    @given(churn_scripts())
    @settings(
        max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_final_states_are_consistent(self, script):
        seed, steps = script
        rd, live, quiescent = run_script(seed, steps)
        for thread in live:
            assert thread.state in (ThreadState.ACTIVE, ThreadState.BLOCKED)
            assert thread.grant is not None
        for thread in quiescent:
            assert thread.state is ThreadState.QUIESCENT
            assert rd.resource_manager.is_quiescent(thread.tid)
        # Admission ledger matches the surviving population.
        expected = {t.tid for t in live} | {t.tid for t in quiescent}
        assert set(rd.resource_manager.admitted_ids()) == expected

    @given(churn_scripts())
    @settings(
        max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_grant_sets_always_fit(self, script):
        seed, steps = script
        rd, live, quiescent = run_script(seed, steps)
        result = rd.resource_manager.last_result
        if result is not None:
            assert result.grant_set.total_rate <= 1.0 + 1e-9
