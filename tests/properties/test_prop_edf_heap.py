"""Property test: the incremental EDF ready-heap is a pure optimization.

The scheduler keeps a lazy min-heap of (deadline, tid) entries pushed
at each period open and discards stale entries on pop.  A from-scratch
reference — scan every periodic thread, sort by (deadline, tid), take
the head — must dispatch the *identical* sequence for any stream of
grant-set changes (admissions, exits, quiescence, wake-ups, policy
overrides).  Both runs execute under the strict invariant sanitizer, so
a divergence in internal state fails loudly even if the traces happen
to agree.
"""

from __future__ import annotations

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AdmissionError, MachineConfig, SimConfig, units
from repro.core.distributor import ResourceDistributor
from repro.core.scheduler import RDScheduler, _edf_key
from repro.core.threads import ThreadState
from repro.workloads import single_entry_definition


class FromScratchScheduler(RDScheduler):
    """RDScheduler with the heap replaced by a full scan-and-sort."""

    def _ready_head(self, now):
        eligible = [
            t
            for t in self.kernel.periodic_threads()
            if t.eligible_time_remaining(now)
        ]
        return min(eligible, key=_edf_key) if eligible else None


@st.composite
def change_streams(draw):
    """A randomized schedule of grant-set-changing operations."""
    count = draw(st.integers(min_value=2, max_value=9))
    ops = []
    for _ in range(count):
        ops.append(
            (
                draw(st.integers(min_value=1, max_value=110)),  # time, ms
                draw(st.sampled_from(["admit", "exit", "quiesce", "wake"])),
                draw(st.sampled_from([5, 10, 15, 30])),  # period, ms
                draw(st.integers(min_value=5, max_value=30)),  # rate, %
            )
        )
    return ops


def run_stream(ops, reference: bool):
    rd = ResourceDistributor(
        machine=MachineConfig.ideal(),
        sim=SimConfig(seed=1),
        sanitize=True,
        sanitize_strict=True,
    )
    if reference:
        # Same object layout, overridden dispatch: the two runs differ
        # only in how the TimeRemaining head is found.
        rd.scheduler.__class__ = FromScratchScheduler
    names = itertools.count()
    admitted = []

    def action(kind, period_ms, rate_pct):
        def fire():
            manager = rd.resource_manager
            if kind == "admit":
                try:
                    admitted.append(
                        rd.admit(
                            single_entry_definition(
                                f"t{next(names)}", period_ms, rate_pct / 100.0
                            )
                        )
                    )
                except AdmissionError:
                    pass
                return
            live = [t for t in admitted if t.tid in manager.admitted_ids()]
            if not live:
                return
            target = live[len(live) // 2]
            if kind == "exit":
                rd.exit_thread(target.tid)
            elif kind == "quiesce":
                if target.state is not ThreadState.EXITED:
                    rd.enter_quiescent(target.tid)
            elif kind == "wake":
                quiescent = [t for t in live if manager.is_quiescent(t.tid)]
                if quiescent:
                    rd.wake(quiescent[0].tid)

        return fire

    admitted.append(rd.admit(single_entry_definition("seed", 10, 0.2)))
    for at_ms, kind, period_ms, rate_pct in ops:
        rd.at(units.ms_to_ticks(at_ms), action(kind, period_ms, rate_pct))
    rd.run_for(units.ms_to_ticks(130))
    return rd


@given(change_streams())
@settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_incremental_heap_matches_from_scratch_sort(ops):
    fast = run_stream(ops, reference=False)
    slow = run_stream(ops, reference=True)
    assert fast.sanitizer.ok and slow.sanitizer.ok
    fast_dispatch = [
        (s.thread_id, s.start, s.end, s.kind) for s in fast.trace.segments
    ]
    slow_dispatch = [
        (s.thread_id, s.start, s.end, s.kind) for s in slow.trace.segments
    ]
    assert fast_dispatch == slow_dispatch
    assert [d.thread_id for d in fast.trace.deadlines] == [
        d.thread_id for d in slow.trace.deadlines
    ]
