"""Property tests: admission control invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.admission import AdmissionController
from repro.errors import AdmissionError

rates = st.floats(min_value=0.001, max_value=1.0, allow_nan=False)


class TestRunningSumInvariant:
    @given(st.lists(rates, min_size=1, max_size=40))
    def test_committed_never_exceeds_capacity(self, requested):
        ac = AdmissionController(capacity=0.96)
        for i, rate in enumerate(requested):
            try:
                ac.admit(i, rate)
            except AdmissionError:
                pass
            assert ac.committed <= 0.96 + 1e-6

    @given(st.lists(rates, min_size=1, max_size=40))
    def test_admit_iff_fits(self, requested):
        ac = AdmissionController(capacity=0.96)
        committed = 0.0
        for i, rate in enumerate(requested):
            should_fit = committed + rate <= 0.96 + 1e-9
            try:
                ac.admit(i, rate)
                admitted = True
            except AdmissionError:
                admitted = False
            assert admitted == should_fit
            if admitted:
                committed += rate

    @given(
        st.lists(
            st.tuples(st.booleans(), rates, st.integers(min_value=0, max_value=9)),
            max_size=60,
        )
    )
    def test_interleaved_admit_release_consistency(self, ops):
        """Model-based: the controller always agrees with a dict model."""
        ac = AdmissionController(capacity=0.96)
        model: dict[int, float] = {}
        for is_admit, rate, tid in ops:
            if is_admit and tid not in model:
                try:
                    ac.admit(tid, rate)
                    model[tid] = rate
                except AdmissionError:
                    assert sum(model.values()) + rate > 0.96 - 1e-6
            elif not is_admit and tid in model:
                ac.release(tid)
                del model[tid]
        assert ac.committed == pytest.approx(sum(model.values()), abs=1e-6)
        assert len(ac) == len(model)
