"""Property tests: grant-set computation over random task populations."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grant_control import GrantController, GrantRequest
from repro.core.policy_box import PolicyBox
from repro.workloads import random_resource_list

CAPACITY = 0.96


def build_requests(seed, count, quiescent_mask):
    rng = random.Random(seed)
    box = PolicyBox(capacity=CAPACITY)
    requests = []
    committed = 0.0
    for i in range(count):
        rl = random_resource_list(rng, max_levels=5)
        if committed + rl.minimum.rate > CAPACITY:
            continue
        committed += rl.minimum.rate
        requests.append(
            GrantRequest(
                thread_id=i,
                policy_id=box.register_task(f"task{i}"),
                resource_list=rl,
                quiescent=bool(quiescent_mask & (1 << i)),
            )
        )
    return box, requests


@st.composite
def populations(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    count = draw(st.integers(min_value=1, max_value=12))
    quiescent_mask = draw(st.integers(min_value=0, max_value=(1 << 12) - 1))
    return build_requests(seed, count, quiescent_mask)


class TestGrantSetInvariants:
    @given(populations())
    @settings(max_examples=60, deadline=None)
    def test_total_rate_within_capacity(self, population):
        box, requests = build_population_safe(population)
        result = GrantController(CAPACITY, box).compute(requests)
        assert result.grant_set.total_rate <= CAPACITY + 1e-9

    @given(populations())
    @settings(max_examples=60, deadline=None)
    def test_every_grant_is_a_listed_entry(self, population):
        box, requests = build_population_safe(population)
        result = GrantController(CAPACITY, box).compute(requests)
        by_id = {r.thread_id: r for r in requests}
        for grant in result.grant_set:
            entries = by_id[grant.thread_id].resource_list.entries
            assert grant.entry in entries
            assert entries[grant.entry_index] is grant.entry

    @given(populations())
    @settings(max_examples=60, deadline=None)
    def test_active_threads_always_get_a_grant(self, population):
        """Admitted => granted: at worst the minimum entry."""
        box, requests = build_population_safe(population)
        result = GrantController(CAPACITY, box).compute(requests)
        for request in requests:
            if request.quiescent:
                assert request.thread_id not in result.grant_set
            else:
                assert request.thread_id in result.grant_set

    @given(populations())
    @settings(max_examples=60, deadline=None)
    def test_underload_means_everyone_max(self, population):
        box, requests = build_population_safe(population)
        active = [r for r in requests if not r.quiescent]
        result = GrantController(CAPACITY, box).compute(requests)
        if (
            active
            and sum(r.max_rate for r in active) <= CAPACITY
            and not any(r.resource_list.maximum.exclusive for r in active)
        ):
            for request in active:
                assert result.grant_set[request.thread_id].entry_index == 0

    @given(populations())
    @settings(max_examples=60, deadline=None)
    def test_deterministic(self, population):
        box, requests = build_population_safe(population)
        a = GrantController(CAPACITY, box).compute(requests)
        b = GrantController(CAPACITY, box).compute(requests)
        for request in requests:
            ga, gb = a.grant_set.get(request.thread_id), b.grant_set.get(request.thread_id)
            assert (ga is None) == (gb is None)
            if ga is not None:
                assert ga.entry_index == gb.entry_index


def build_population_safe(population):
    box, requests = population
    return box, requests
