"""Property tests for the columnar obs pipeline (hypothesis).

Two invariants the whole observability tier leans on:

1. **Round-trip byte identity** — any event stream pushed through the
   columnar arena, exported via ``snapshot_columns`` -> columnar JSON ->
   ``decode_columnar``, must serialize to *byte-identical* events.jsonl
   v2 as the eager object path.  This is what lets the CLI promise
   ``--obs-pipeline`` changes cost, never artifacts.

2. **Exact loss accounting** — under arbitrary ring capacities, chunk
   sampling, flush cadences, and transport misbehavior (drops,
   duplicates), ``emitted == delivered + dropped + sampled_out`` holds
   per kind and per node, with ring overwrites never exceeding the
   dropped bucket.  Loss may happen; *unaccounted* loss may not.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.colfile import columnar_payload, columnar_to_json, decode_columnar
from repro.obs.events import (
    ActivationEvent,
    AdmissionEvent,
    GrantChangeEvent,
    PeriodCloseEvent,
    SwitchEvent,
)
from repro.obs.log import events_to_jsonl
from repro.obs.pipeline import ArenaBus, ChunkShipper, RootCollector
from repro.obs.pipeline.aggregate import check_loss_invariant

times = st.integers(min_value=0, max_value=10**12)
tids = st.integers(min_value=-1, max_value=64)
labels = st.text(alphabet="abcdefgh_", min_size=0, max_size=8)
nodes = st.sampled_from(["", "node00", "node01", "rackB/n3"])
fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

admission_events = st.builds(
    AdmissionEvent,
    time=times,
    node=nodes,
    task=labels,
    outcome=st.sampled_from(["accepted", "denied"]),
    thread_id=tids,
    min_rate=fractions,
    committed=fractions,
    headroom=fractions,
    error=labels,
)
switch_events = st.builds(
    SwitchEvent,
    time=times,
    node=nodes,
    from_thread=tids,
    to_thread=tids,
    kind=st.sampled_from(["voluntary", "involuntary"]),
    cost_ticks=st.integers(min_value=0, max_value=10**6),
)
period_close_events = st.builds(
    PeriodCloseEvent,
    time=times,
    node=nodes,
    thread_id=tids,
    period_index=st.integers(min_value=-1, max_value=1000),
    start=times,
    completion=st.integers(min_value=-1, max_value=10**12),
    granted=st.integers(min_value=0, max_value=10**9),
    delivered=st.integers(min_value=0, max_value=10**9),
    missed=st.booleans(),
    voided=st.booleans(),
)
grant_change_events = st.builds(
    GrantChangeEvent,
    time=times,
    node=nodes,
    thread_id=tids,
    period=st.integers(min_value=0, max_value=10**9),
    cpu_ticks=st.integers(min_value=0, max_value=10**9),
    entry_index=st.integers(min_value=-1, max_value=64),
    reason=labels,
)
activation_events = st.builds(
    ActivationEvent,
    time=times,
    node=nodes,
    pending=st.integers(min_value=0, max_value=128),
)

event_streams = st.lists(
    st.one_of(
        admission_events,
        switch_events,
        period_close_events,
        grant_change_events,
        activation_events,
    ),
    max_size=60,
)


class TestColumnarRoundTrip:
    @settings(max_examples=150)
    @given(event_streams)
    def test_arena_materialize_matches_eager_jsonl(self, events):
        """SoA storage loses nothing: materializing the arena stream
        serializes byte-identically to the eager per-object path."""
        eager = events_to_jsonl(events)
        bus = ArenaBus()
        for event in events:
            bus.emit(event)
        assert events_to_jsonl(bus.materialize()) == eager

    @settings(max_examples=150)
    @given(event_streams)
    def test_columnar_encode_decode_is_byte_identical(self, events):
        """snapshot_columns -> events.col.json -> decode round-trips to
        byte-identical events.jsonl v2 — floats, empty strings, empty
        streams, and multi-node interleaves included."""
        eager = events_to_jsonl(events)
        bus = ArenaBus()
        for event in events:
            bus.emit(event)
        columns, order = bus.snapshot_columns()
        text = columnar_to_json(columnar_payload(columns, order))
        decoded = decode_columnar(json.loads(text))
        assert events_to_jsonl(decoded) == eager

    @settings(max_examples=100)
    @given(event_streams)
    def test_fast_paths_agree_with_generic_emit(self, events):
        """emit_switch / emit_period_close / emit_activation append the
        same rows the generic emit() path would."""
        fast = ArenaBus()
        generic = ArenaBus()
        for event in events:
            generic.emit(event)
            if isinstance(event, SwitchEvent):
                fast.emit_switch(
                    event.time,
                    event.from_thread,
                    event.to_thread,
                    event.kind,
                    event.cost_ticks,
                    node=event.node,
                )
            elif isinstance(event, PeriodCloseEvent):
                fast.emit_period_close(
                    event.time,
                    event.thread_id,
                    event.period_index,
                    event.start,
                    event.completion,
                    event.granted,
                    event.delivered,
                    event.missed,
                    event.voided,
                    node=event.node,
                )
            elif isinstance(event, ActivationEvent):
                fast.emit_activation(event.time, event.pending, node=event.node)
            else:
                fast.emit(event)
        assert events_to_jsonl(fast.materialize()) == events_to_jsonl(
            generic.materialize()
        )


class _FatefulTransport:
    """A chunk transport whose per-send fate hypothesis controls.

    ``fates`` cycles over "deliver" / "drop" / "dup"; duplicates model a
    retrying link, drops a lossy one.  Everything that does arrive goes
    straight to the root collector (the rack hop adds batching, not new
    accounting semantics, so the invariant is tested at its source).
    """

    def __init__(self, root, fates):
        self.root = root
        self.fates = fates
        self.sent = 0

    def send(self, src, dst, kind, payload, now):
        fate = self.fates[self.sent % len(self.fates)]
        self.sent += 1
        if fate == "drop":
            return
        self.root.on_node_chunk(payload)
        if fate == "dup":
            self.root.on_node_chunk(payload)


class TestLossAccountingInvariant:
    @settings(max_examples=150)
    @given(
        event_streams,
        st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
        st.one_of(st.none(), st.integers(min_value=2, max_value=8)),
        st.integers(min_value=1, max_value=7),
        st.lists(
            st.sampled_from(["deliver", "drop", "dup"]), min_size=1, max_size=12
        ),
    )
    def test_emitted_equals_delivered_plus_dropped_plus_sampled(
        self, events, capacity, max_chunk, flush_every, fates
    ):
        """Per kind and per node: emitted == delivered + dropped +
        sampled_out, and overwritten <= dropped — for every combination
        of ring size, head/tail sampling, flush cadence, and transport
        drop/duplicate pattern."""
        bus = ArenaBus(capacity=capacity, trim_shipped=True, track_order=False)
        root = RootCollector()
        transport = _FatefulTransport(root, fates)
        shippers = {}
        for index, event in enumerate(events):
            bus.emit(event)
            node = event.node
            shipper = shippers.get(node)
            if shipper is None:
                shipper = shippers[node] = ChunkShipper(
                    bus.arena(node),
                    transport,
                    "rack0",
                    max_chunk_events=max_chunk,
                )
            if (index + 1) % flush_every == 0:
                shipper.flush(index)
        for node in sorted(shippers):
            shippers[node].flush(len(events))

        accounting = root.accounting(
            truth=bus.cum(),
            chunks_sent={node: s.seq for node, s in shippers.items()},
        )
        assert check_loss_invariant(accounting) == []
        for row in accounting["kinds"].values():
            assert (
                row["emitted"]
                == row["delivered"] + row["dropped"] + row["sampled_out"]
            )
            assert 0 <= row["overwritten"] <= row["dropped"]
            assert row["delivered"] >= 0
        for node, payload in accounting["nodes"].items():
            chunks = payload["chunks"]
            assert chunks["sent"] == shippers[node].seq
            assert chunks["delivered"] + chunks["lost"] == chunks["sent"]
        total_emitted = accounting["totals"]["emitted"]
        assert total_emitted == len(events)

    @settings(max_examples=80)
    @given(
        event_streams,
        st.lists(
            st.sampled_from(["deliver", "drop", "dup"]), min_size=1, max_size=12
        ),
    )
    def test_lossless_counters_mean_zero_drop(self, events, fates):
        """When every chunk is delivered at least once (dups collapse),
        the accounting reports zero loss — the invariant's floor."""
        delivered_fates = ["dup" if f == "dup" else "deliver" for f in fates]
        bus = ArenaBus(track_order=False)
        root = RootCollector()
        transport = _FatefulTransport(root, delivered_fates)
        shippers = {}
        for event in events:
            bus.emit(event)
            if event.node not in shippers:
                shippers[event.node] = ChunkShipper(
                    bus.arena(event.node), transport, "rack0"
                )
        for node in sorted(shippers):
            shippers[node].flush(len(events))
        accounting = root.accounting(
            truth=bus.cum(),
            chunks_sent={node: s.seq for node, s in shippers.items()},
        )
        assert check_loss_invariant(accounting) == []
        assert accounting["totals"]["dropped"] == 0
        assert accounting["totals"]["sampled_out"] == 0
        assert accounting["totals"]["delivered"] == len(events)
        assert accounting["chunks"]["node_lost"] == 0
