"""Property tests: dual-resource (CPU + bandwidth) grant invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.core.grant_control import GrantController, GrantRequest
from repro.core.policy_box import PolicyBox
from repro.core.resource_list import ResourceList, ResourceListEntry
from repro.workloads import grant_follower

CPU_CAPACITY = 0.96


@st.composite
def bw_populations(draw):
    bw_capacity = draw(st.sampled_from([0.3, 0.5, 0.8, 1.0]))
    seed = draw(st.integers(min_value=0, max_value=5000))
    count = draw(st.integers(min_value=1, max_value=8))
    return bw_capacity, seed, count


def build(bw_capacity, seed, count):
    rng = random.Random(seed)
    box = PolicyBox(capacity=CPU_CAPACITY)
    requests = []
    cpu_committed = 0.0
    bw_committed = 0.0
    period = units.ms_to_ticks(10)
    for i in range(count):
        levels = rng.randint(1, 4)
        top_rate = rng.uniform(0.1, 0.6)
        top_bw = rng.uniform(0.0, 0.6)
        entries = []
        for k in range(levels):
            frac = (levels - k) / levels
            cpu = max(1, int(period * top_rate * frac))
            if entries and cpu >= entries[-1].cpu_ticks:
                cpu = entries[-1].cpu_ticks - 1
                if cpu < 1:
                    break
            entries.append(
                ResourceListEntry(
                    period,
                    cpu,
                    grant_follower,
                    bandwidth=round(top_bw * frac, 4),
                )
            )
        if not entries:
            continue
        rl = ResourceList(entries)
        if (
            cpu_committed + rl.minimum.rate > CPU_CAPACITY
            or bw_committed + rl.minimum.bandwidth > bw_capacity
        ):
            continue
        cpu_committed += rl.minimum.rate
        bw_committed += rl.minimum.bandwidth
        requests.append(
            GrantRequest(
                thread_id=i, policy_id=box.register_task(f"t{i}"), resource_list=rl
            )
        )
    controller = GrantController(CPU_CAPACITY, box, bandwidth_capacity=bw_capacity)
    return controller, requests, bw_capacity


class TestDualBudget:
    @given(bw_populations())
    @settings(max_examples=60, deadline=None)
    def test_both_budgets_respected(self, params):
        controller, requests, bw_capacity = build(*params)
        if not requests:
            return
        result = controller.compute(requests)
        gs = result.grant_set
        assert gs.total_rate <= CPU_CAPACITY + 1e-9
        assert gs.total_bandwidth <= bw_capacity + 1e-9

    @given(bw_populations())
    @settings(max_examples=60, deadline=None)
    def test_everyone_admitted_gets_a_grant(self, params):
        controller, requests, bw_capacity = build(*params)
        if not requests:
            return
        result = controller.compute(requests)
        for request in requests:
            assert request.thread_id in result.grant_set

    @given(bw_populations())
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, params):
        controller, requests, bw_capacity = build(*params)
        if not requests:
            return
        a = controller.compute(requests)
        b = controller.compute(requests)
        for request in requests:
            assert (
                a.grant_set[request.thread_id].entry_index
                == b.grant_set[request.thread_id].entry_index
            )
