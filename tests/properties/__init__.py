"""Test package."""
