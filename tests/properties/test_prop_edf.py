"""Property tests: the end-to-end scheduling guarantee.

For ANY admissible task population on a frictionless machine, every
admitted task receives its full grant in every period — the paper's
headline guarantee — and conservation holds (nobody is charged more
CPU than wall-clock time exists).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import MachineConfig, SimConfig, units
from repro.core.distributor import ResourceDistributor
from repro.sim.trace import SegmentKind
from repro.workloads import random_task_set


@st.composite
def task_sets(draw):
    seed = draw(st.integers(min_value=0, max_value=5_000))
    count = draw(st.integers(min_value=1, max_value=6))
    greedy = draw(st.booleans())
    return seed, count, greedy


def run_set(seed, count, greedy, duration_ms=120):
    rng = random.Random(seed)
    rd = ResourceDistributor(machine=MachineConfig.ideal(), sim=SimConfig(seed=seed))
    definitions = random_task_set(rng, count, capacity=1.0, greedy=greedy)
    threads = [rd.admit(d) for d in definitions]
    rd.run_for(units.ms_to_ticks(duration_ms))
    return rd, threads


class TestGuarantee:
    @given(task_sets())
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_no_admitted_task_ever_misses(self, params):
        seed, count, greedy = params
        rd, threads = run_set(seed, count, greedy)
        assert rd.trace.misses() == []

    @given(task_sets())
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_every_closed_period_fully_delivered(self, params):
        seed, count, greedy = params
        rd, threads = run_set(seed, count, greedy)
        for outcome in rd.trace.deadlines:
            if not outcome.voided:
                assert outcome.delivered == outcome.granted

    @given(task_sets())
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_cpu_conservation(self, params):
        """Run segments never overlap and cover exactly the elapsed time."""
        seed, count, greedy = params
        rd, threads = run_set(seed, count, greedy)
        segments = sorted(rd.trace.segments, key=lambda s: s.start)
        for a, b in zip(segments, segments[1:]):
            assert a.end <= b.start, "two threads held the CPU at once"
        covered = sum(s.length for s in segments)
        assert covered == rd.now

    @given(task_sets())
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_granted_time_never_exceeds_grant(self, params):
        seed, count, greedy = params
        rd, threads = run_set(seed, count, greedy)
        for thread in threads:
            for outcome in rd.trace.deadlines_for(thread.tid):
                assert outcome.delivered <= outcome.granted


class TestDeterminism:
    @given(st.integers(min_value=0, max_value=2_000))
    @settings(max_examples=10, deadline=None)
    def test_same_seed_same_trace(self, seed):
        a, _ = run_set(seed, 4, False, duration_ms=60)
        b, _ = run_set(seed, 4, False, duration_ms=60)
        assert len(a.trace.segments) == len(b.trace.segments)
        for sa, sb in zip(a.trace.segments, b.trace.segments):
            assert (sa.thread_id, sa.start, sa.end, sa.kind) == (
                sb.thread_id,
                sb.start,
                sb.end,
                sb.kind,
            )
