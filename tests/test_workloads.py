"""Workload generators: validity and reproducibility."""

import random

import pytest

from repro import units
from repro.workloads import (
    grant_follower,
    greedy_worker,
    random_resource_list,
    random_task_set,
    single_entry_definition,
)


class TestRandomResourceList:
    def test_lists_are_valid(self):
        rng = random.Random(0)
        for _ in range(50):
            rl = random_resource_list(rng)
            rates = [e.rate for e in rl]
            assert rates == sorted(rates, reverse=True)
            assert len(set(rates)) == len(rates)

    def test_greedy_flag_selects_function(self):
        rng = random.Random(1)
        assert random_resource_list(rng, greedy=True).maximum.function is greedy_worker
        assert random_resource_list(rng, greedy=False).maximum.function is grant_follower

    def test_reproducible(self):
        a = random_resource_list(random.Random(7))
        b = random_resource_list(random.Random(7))
        assert [(e.period, e.cpu_ticks) for e in a] == [
            (e.period, e.cpu_ticks) for e in b
        ]


class TestRandomTaskSet:
    def test_minima_always_jointly_admissible(self):
        for seed in range(20):
            rng = random.Random(seed)
            definitions = random_task_set(rng, count=10, capacity=0.96)
            total = sum(d.resource_list.minimum.rate for d in definitions)
            assert total <= 0.96 + 1e-9

    def test_names_are_unique(self):
        rng = random.Random(3)
        definitions = random_task_set(rng, count=8)
        names = [d.name for d in definitions]
        assert len(set(names)) == len(names)

    def test_count_respected_when_capacity_allows(self):
        rng = random.Random(5)
        definitions = random_task_set(rng, count=3, capacity=0.96)
        assert len(definitions) == 3


class TestSingleEntry:
    def test_rate_and_period(self):
        definition = single_entry_definition("x", period_ms=10, rate=0.25)
        entry = definition.resource_list.maximum
        assert entry.period == units.ms_to_ticks(10)
        assert entry.rate == pytest.approx(0.25)

    def test_admittable_end_to_end(self, ideal_rd):
        thread = ideal_rd.admit(single_entry_definition("x", 10, 0.25))
        ideal_rd.run_for(units.ms_to_ticks(30))
        assert not ideal_rd.trace.misses()
