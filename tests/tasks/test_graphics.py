"""2D/3D graphics models: Table 3, return semantics, scaler filter."""

import pytest

from repro import units
from repro.tasks.graphics2d import Renderer2D
from repro.tasks.graphics3d import RENDER_LEVELS, VIDEO_SCALER, Renderer3D

from tests.conftest import admit_simple


def ms(x):
    return units.ms_to_ticks(x)


class TestTable3:
    def test_resource_list_matches_table3(self):
        rl = Renderer3D().resource_list()
        assert [e.period for e in rl] == [2_700_000] * 4
        assert [e.cpu_ticks for e in rl] == list(RENDER_LEVELS)
        assert [round(e.rate * 100) for e in rl] == [80, 40, 20, 10]

    def test_all_levels_share_the_same_function(self):
        rl = Renderer3D().resource_list()
        assert len({e.function for e in rl}) == 1

    def test_top_levels_need_the_video_scaler(self):
        rl = Renderer3D().resource_list()
        assert VIDEO_SCALER in rl[0].exclusive
        assert VIDEO_SCALER in rl[1].exclusive
        assert not rl[2].exclusive
        assert not rl[3].exclusive


class TestProgressiveRendering:
    def test_renderer_makes_proportional_progress(self, ideal_rd):
        renderer = Renderer3D()
        ideal_rd.admit(renderer.definition())
        ideal_rd.run_for(units.sec_to_ticks(0.5))
        # At the 80 % level the renderer gets ~400 ms of 500 ms.
        assert renderer.stats.work_done >= ms(350)
        assert renderer.stats.frames_completed >= 5

    def test_degraded_renderer_makes_less_progress(self, ideal_rd):
        renderer = Renderer3D()
        ideal_rd.admit(renderer.definition())
        admit_simple(ideal_rd, "hog", period_ms=10, rate=0.7)
        ideal_rd.run_for(units.sec_to_ticks(0.5))
        # Load shedding = less progress on the same function.
        assert renderer.stats.work_done < ms(200)
        assert not ideal_rd.trace.misses()


class TestScalerFilter:
    def test_filter_requests_cleanup_only_on_scaler_change(self, ideal_rd):
        renderer = Renderer3D()
        thread = ideal_rd.admit(renderer.definition())
        ideal_rd.run_for(ms(1))  # first grant activates in unallocated time
        assert thread.grant.rate == pytest.approx(0.8)
        # Push the renderer below the scaler levels (80/40 -> 20/10).
        ideal_rd.at(ms(150), lambda: admit_simple(ideal_rd, "hog", 10, 0.7))
        ideal_rd.run_for(units.sec_to_ticks(1))
        assert thread.grant.rate <= 0.2 + 1e-9
        assert renderer.stats.cleanups >= 1

    def test_no_cleanup_when_change_stays_off_scaler(self, ideal_rd):
        renderer = Renderer3D(use_scaler=False)
        ideal_rd.admit(renderer.definition())
        ideal_rd.at(ms(150), lambda: admit_simple(ideal_rd, "hog", 10, 0.7))
        ideal_rd.run_for(units.sec_to_ticks(1))
        assert renderer.stats.cleanups == 0


class TestRenderer2D:
    def test_period_comes_from_refresh_rate(self):
        renderer = Renderer2D(refresh_hz=72.0)
        assert renderer.period == 375_000  # the paper's example

    def test_resource_list_levels_descend(self):
        rl = Renderer2D().resource_list()
        rates = [e.rate for e in rl]
        assert rates == sorted(rates, reverse=True)

    def test_scene_complexity_varies_deterministically(self, ideal_rd):
        renderer = Renderer2D()
        ideal_rd.admit(renderer.definition())
        ideal_rd.run_for(units.sec_to_ticks(0.3))
        assert renderer.stats.frames_completed > 0

    def test_same_seed_reproduces_progress(self):
        from repro import MachineConfig, SimConfig
        from repro.core.distributor import ResourceDistributor

        results = []
        for _ in range(2):
            rd = ResourceDistributor(machine=MachineConfig.ideal(), sim=SimConfig(seed=11))
            renderer = Renderer2D()
            rd.admit(renderer.definition())
            rd.run_for(units.sec_to_ticks(0.2))
            results.append((renderer.stats.frames_completed, renderer.stats.work_done))
        assert results[0] == results[1]
