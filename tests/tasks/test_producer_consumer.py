"""The Figure 4 workload: the spinning bug and its fix."""

import pytest

from repro import units
from repro.sim.trace import SegmentKind
from repro.tasks.producer_consumer import Figure4Workload


def ms(x):
    return units.ms_to_ticks(x)


def run_workload(rd, fixed, duration_ms=400):
    workload = Figure4Workload(fixed=fixed)
    threads = [rd.admit(d) for d in workload.definitions()]
    rd.run_for(ms(duration_ms))
    return workload, dict(zip(["p7", "dm8", "p9", "dm10"], threads))


class TestDefinitions:
    def test_cpu_requirements_match_figure4(self):
        defs = Figure4Workload().definitions()
        cpus = [d.resource_list.maximum.cpu_ticks for d in defs]
        assert cpus == [ms(13), ms(2), ms(3), ms(3)]
        assert all(d.resource_list.maximum.period == 900_000 for d in defs)


class TestBuggyVariant:
    def test_producer7_receives_unused_time(self, ideal_rd):
        workload, threads = run_workload(ideal_rd, fixed=False)
        overtime = sum(
            s.length
            for s in ideal_rd.trace.segments_for(threads["p7"].tid)
            if s.kind is SegmentKind.OVERTIME
        )
        assert overtime > ms(50)

    def test_producer7_still_gets_guaranteed_allocation(self, ideal_rd):
        workload, threads = run_workload(ideal_rd, fixed=False)
        for outcome in ideal_rd.trace.deadlines_for(threads["p7"].tid):
            assert outcome.delivered == outcome.granted

    def test_spinners_burn_their_grants(self, ideal_rd):
        workload, threads = run_workload(ideal_rd, fixed=False)
        assert workload.stats.spin_ticks > 0
        # The buggy data threads consume their full grant every period.
        for outcome in ideal_rd.trace.deadlines_for(threads["dm8"].tid):
            assert outcome.delivered == outcome.granted

    def test_no_deadline_misses_despite_the_bug(self, ideal_rd):
        run_workload(ideal_rd, fixed=False)
        assert not ideal_rd.trace.misses()


class TestFixedVariant:
    def test_fixed_threads_block_instead_of_spinning(self, ideal_rd):
        workload, threads = run_workload(ideal_rd, fixed=True)
        assert workload.stats.spin_ticks == 0
        blocks = [b for b in ideal_rd.trace.blocks if b.thread_id == threads["dm10"].tid]
        assert blocks

    def test_fix_frees_cpu_for_producer(self, ideal_rd):
        buggy_workload, buggy = run_workload(ideal_rd, fixed=False)
        buggy_p7 = ideal_rd.trace.busy_ticks(buggy["p7"].tid)

        from repro import MachineConfig, SimConfig
        from repro.core.distributor import ResourceDistributor

        rd2 = ResourceDistributor(machine=MachineConfig.ideal(), sim=SimConfig(seed=7))
        fixed_workload, fixed = run_workload(rd2, fixed=True)
        fixed_p7 = rd2.trace.busy_ticks(fixed["p7"].tid)
        # The fix returns the spinners' wasted grant to useful work.
        assert fixed_p7 > buggy_p7

    def test_fixed_consumers_return_unused_grant(self, ideal_rd):
        # The paper: "the context switches to the data management
        # threads could be avoided when no data is available."  With the
        # fix, the consumers stop burning their whole 2-3 ms grants.
        workload, threads = run_workload(ideal_rd, fixed=True)
        # Producer 9 posts ~3 items (0.75 ms of processing) per period;
        # the fixed dm10 blocks instead of burning its 3 ms grant.
        consumed_cpu = ideal_rd.trace.busy_ticks(threads["dm10"].tid)
        granted_total = sum(
            o.granted for o in ideal_rd.trace.deadlines_for(threads["dm10"].tid)
        )
        assert consumed_cpu < granted_total / 2
