"""Live transport streams: drift, buffer depth, and synchronization."""

import pytest

from repro import units
from repro.tasks.stream import FRAME_PERIOD, LiveMpegDecoder, TransportStream


def sec(x):
    return units.sec_to_ticks(x)


def run(ideal_rd, skew_ppm, synchronize, seconds=8.0, buffer_capacity=4):
    stream = TransportStream("s2", skew_ppm=skew_ppm, buffer_capacity=buffer_capacity)
    decoder = LiveMpegDecoder(stream, synchronize=synchronize)
    ideal_rd.admit(decoder.definition())
    horizon = sec(seconds)
    stream.attach(ideal_rd.kernel, horizon)
    ideal_rd.run_until(horizon)
    return stream, decoder


class TestArrivals:
    def test_frames_arrive_at_30fps(self, ideal_rd):
        stream, decoder = run(ideal_rd, skew_ppm=0.0, synchronize=False, seconds=2.0)
        assert stream.stats.delivered == pytest.approx(60, abs=2)

    def test_gop_pattern_cycles(self, ideal_rd):
        stream, decoder = run(ideal_rd, skew_ppm=0.0, synchronize=False, seconds=2.0)
        total = (
            decoder.stats.decoded["I"]
            + decoder.stats.decoded["P"]
            + decoder.stats.decoded["B"]
        )
        # 1 I per 15 frames.
        assert decoder.stats.decoded["I"] == pytest.approx(total / 15, abs=2)

    def test_buffer_capacity_validated(self):
        with pytest.raises(ValueError):
            TransportStream(buffer_capacity=0)


class TestMatchedClocks:
    def test_no_overflow_or_sustained_underflow(self, ideal_rd):
        stream, decoder = run(ideal_rd, skew_ppm=0.0, synchronize=False, seconds=4.0)
        assert stream.stats.total_overflow == 0
        # At most the startup transient of empty-buffer periods.
        assert decoder.stats.underflows <= 2


class TestDrift:
    def test_fast_stream_overflows_unsynchronized_decoder(self, ideal_rd):
        # Stream 2 % fast: one surplus frame per 50; a 4-deep buffer
        # overflows within ~200 frames (~7 s).
        stream, decoder = run(
            ideal_rd, skew_ppm=20_000.0, synchronize=False, seconds=8.0
        )
        assert stream.stats.total_overflow > 0

    def test_overflow_loses_i_frames_eventually(self, ideal_rd):
        stream, decoder = run(
            ideal_rd, skew_ppm=40_000.0, synchronize=False, seconds=30.0
        )
        # The oldest-frame drop policy eventually eats an I frame — the
        # failure the paper calls "noticeable and unacceptable".
        assert stream.stats.overflow_dropped["I"] > 0

    def test_slow_stream_underflows_unsynchronized_decoder(self, ideal_rd):
        stream, decoder = run(
            ideal_rd, skew_ppm=-20_000.0, synchronize=False, seconds=8.0
        )
        assert decoder.stats.underflows > 2


class TestWanderingClock:
    def test_sync_adapts_when_the_crystal_wanders(self, ideal_rd):
        """The paper: the TCI clock 'can do both' — drift faster, then
        slower.  The estimator's sliding window tracks the change."""
        stream = TransportStream("s2", skew_ppm=3_000.0, buffer_capacity=5)
        decoder = LiveMpegDecoder(stream, synchronize=True, max_skew_ppm=5_000.0)
        ideal_rd.admit(decoder.definition())
        horizon = sec(16)
        stream.attach(ideal_rd.kernel, horizon)
        ideal_rd.at(
            sec(8),
            lambda: stream.clock.set_skew_ppm(-3_000.0, ideal_rd.now),
            "crystal wanders slow",
        )
        ideal_rd.run_until(horizon)
        assert stream.stats.total_overflow == 0
        # Bounded depth through both regimes and the transition.
        assert decoder.stats.max_depth_seen <= 4
        assert not ideal_rd.trace.misses()


class TestSynchronizedDecoder:
    def test_sync_holds_buffer_depth_bounded(self, ideal_rd):
        stream, decoder = run(
            ideal_rd, skew_ppm=2_000.0, synchronize=True, seconds=12.0
        )
        assert stream.stats.total_overflow == 0
        assert decoder.stats.max_depth_seen <= 3

    def test_sync_decodes_every_delivered_frame(self, ideal_rd):
        stream, decoder = run(
            ideal_rd, skew_ppm=2_000.0, synchronize=True, seconds=12.0
        )
        # All but the frames still buffered at the horizon were decoded.
        assert decoder.stats.total_decoded >= stream.stats.delivered - stream.depth - 1

    def test_sync_never_loses_i_frames(self, ideal_rd):
        stream, decoder = run(
            ideal_rd, skew_ppm=4_000.0, synchronize=True, seconds=12.0
        )
        assert stream.stats.overflow_dropped["I"] == 0

    def test_no_deadline_misses_while_synchronizing(self, ideal_rd):
        run(ideal_rd, skew_ppm=2_000.0, synchronize=True, seconds=6.0)
        assert not ideal_rd.trace.misses()
