"""Display Refresh Controller: drift, duplicates/drops, tearing."""

import pytest

from repro import TaskDefinition, units
from repro.core.resource_list import ResourceList, ResourceListEntry
from repro.tasks.base import Compute, DonePeriod
from repro.tasks.drc import DisplayRefreshController, FrameBuffer, attach_drc


def ms(x):
    return units.ms_to_ticks(x)


class RendererModel:
    """Publishes one frame per period into a frame buffer."""

    def __init__(self, buffer: FrameBuffer, frame_cost: int) -> None:
        self.buffer = buffer
        self.frame_cost = frame_cost
        self.seq = 0

    def render(self, ctx):
        self.seq += 1
        self.buffer.begin_frame(self.seq)
        yield Compute(self.frame_cost)
        self.buffer.finish_frame()
        yield DonePeriod()

    def definition(self, period):
        return TaskDefinition(
            name="renderer",
            resource_list=ResourceList(
                [ResourceListEntry(period, self.frame_cost, self.render, "render")]
            ),
        )


def run_scenario(ideal_rd, skew_ppm, double_buffered=True, seconds=1.0, renderer_hz=72.0):
    buffer = FrameBuffer(double_buffered=double_buffered)
    renderer = RendererModel(buffer, frame_cost=ms(3))
    ideal_rd.admit(renderer.definition(units.hz_to_period_ticks(renderer_hz)))
    drc = DisplayRefreshController(buffer, refresh_hz=72.0, skew_ppm=skew_ppm)
    horizon = units.sec_to_ticks(seconds)
    attach_drc(ideal_rd.kernel, drc, horizon)
    ideal_rd.run_until(horizon)
    return drc, renderer


class TestScanOutPacing:
    def test_refresh_count_matches_rate(self, ideal_rd):
        drc, renderer = run_scenario(ideal_rd, skew_ppm=0.0)
        # 72 Hz for 1 s, minus the first period before any scan-out.
        assert drc.stats.refreshes == pytest.approx(72, abs=2)

    def test_fast_drc_clock_refreshes_more(self, ideal_rd):
        drc, renderer = run_scenario(ideal_rd, skew_ppm=50_000.0)  # 5 % fast
        assert drc.stats.refreshes >= 74


class TestDriftConsequences:
    def test_matched_clocks_show_every_frame_once(self, ideal_rd):
        drc, renderer = run_scenario(ideal_rd, skew_ppm=0.0)
        # In lockstep, no frame is dropped outright.
        assert drc.stats.drops == 0

    def test_slow_drc_duplicates_frames(self, ideal_rd):
        # DRC 2 % slow: it scans out fewer times than frames produced,
        # but each scan-out shows the newest complete frame -> drops.
        drc, renderer = run_scenario(ideal_rd, skew_ppm=-20_000.0)
        assert drc.stats.drops > 0

    def test_fast_drc_duplicates(self, ideal_rd):
        # DRC 2 % fast: more scan-outs than frames -> duplicates.
        drc, renderer = run_scenario(ideal_rd, skew_ppm=20_000.0)
        assert drc.stats.duplicates > 0

    def test_drift_cost_is_whole_frames_never_partial(self, ideal_rd):
        """The paper: losing/duplicating an entire frame is tolerable;
        what must never happen with double buffering is tearing."""
        drc, renderer = run_scenario(ideal_rd, skew_ppm=-20_000.0)
        assert drc.stats.tears == 0


class TestTearing:
    def test_single_buffered_rendering_tears(self, ideal_rd):
        # A slightly fast DRC clock sweeps the scan-out instant through
        # the renderer's 3 ms drawing window (one full sweep takes
        # ~100 refreshes), catching it mid-frame.
        drc, renderer = run_scenario(
            ideal_rd, skew_ppm=10_000.0, double_buffered=False, seconds=2.0
        )
        assert drc.stats.tears > 0

    def test_double_buffering_prevents_tearing_under_any_skew(self, ideal_rd):
        drc, renderer = run_scenario(
            ideal_rd, skew_ppm=30_000.0, double_buffered=True, seconds=2.0
        )
        assert drc.stats.tears == 0
