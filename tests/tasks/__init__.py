"""Test package."""
