"""Channels: post/take semantics."""

import pytest

from repro.tasks.channels import Channel


class TestChannel:
    def test_initially_empty(self):
        ch = Channel("c")
        assert not ch.ready
        assert not ch.try_take()

    def test_post_then_take(self):
        ch = Channel("c")
        ch.post()
        assert ch.ready
        assert ch.try_take()
        assert not ch.ready

    def test_counts_accumulate(self):
        ch = Channel("c")
        ch.post(3)
        assert ch.pending == 3
        assert ch.try_take() and ch.try_take() and ch.try_take()
        assert not ch.try_take()

    def test_total_posts_monotonic(self):
        ch = Channel("c")
        ch.post(2)
        ch.try_take()
        ch.post()
        assert ch.total_posts == 3

    def test_post_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Channel("c").post(0)
