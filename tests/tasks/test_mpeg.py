"""MPEG decoder model: Table 2 and I/B/P shedding semantics."""

import pytest

from repro import units
from repro.tasks.mpeg import DEFAULT_GOP, MpegDecoder

from tests.conftest import admit_simple


def ms(x):
    return units.ms_to_ticks(x)


class TestResourceList:
    def test_matches_table2(self):
        rl = MpegDecoder().resource_list()
        rows = [(e.period, e.cpu_ticks) for e in rl]
        assert rows == [
            (900_000, 300_000),
            (3_600_000, 900_000),
            (2_700_000, 600_000),
            (3_600_000, 600_000),
        ]

    def test_rates_match_table2(self):
        rl = MpegDecoder().resource_list()
        assert [round(e.rate * 100, 1) for e in rl] == [33.3, 25.0, 22.2, 16.7]

    def test_labels_match_paper(self):
        rl = MpegDecoder().resource_list()
        assert [e.label for e in rl] == [
            "FullDecompress",
            "Drop_B_in_4",
            "Drop_B_in_3",
            "Drop_2B_in_4",
        ]


class TestGopValidation:
    def test_rejects_bad_frame_types(self):
        with pytest.raises(ValueError):
            MpegDecoder(gop="IXP")

    def test_rejects_gop_not_starting_with_i(self):
        with pytest.raises(ValueError):
            MpegDecoder(gop="BIP")


class TestFullQuality:
    def test_full_decompress_decodes_every_frame(self, ideal_rd):
        decoder = MpegDecoder()
        ideal_rd.admit(decoder.definition())
        ideal_rd.run_for(units.sec_to_ticks(1))
        # 30 fps for 1 s: every frame decoded, none dropped.
        assert decoder.stats.total_decoded >= 29
        assert decoder.stats.total_dropped == 0
        assert not ideal_rd.trace.misses()

    def test_no_i_frames_lost_under_full_quality(self, ideal_rd):
        decoder = MpegDecoder()
        ideal_rd.admit(decoder.definition())
        ideal_rd.run_for(units.sec_to_ticks(1))
        assert decoder.stats.i_frames_lost == 0


class TestLoadShedding:
    def _run_degraded(self, ideal_rd):
        decoder = MpegDecoder()
        ideal_rd.admit(decoder.definition())
        # Crowd the machine so the decoder drops to a lower entry.
        admit_simple(ideal_rd, "hog", period_ms=10, rate=0.7)
        ideal_rd.run_for(units.sec_to_ticks(2))
        return decoder

    def test_degraded_decoder_drops_only_b_frames(self, ideal_rd):
        decoder = self._run_degraded(ideal_rd)
        assert decoder.stats.total_dropped > 0
        assert decoder.stats.dropped["I"] == 0
        assert decoder.stats.dropped["P"] == 0

    def test_degraded_decoder_still_makes_deadlines(self, ideal_rd):
        self._run_degraded(ideal_rd)
        assert not ideal_rd.trace.misses()

    def test_frames_keep_arriving_at_30fps_equivalent(self, ideal_rd):
        decoder = self._run_degraded(ideal_rd)
        handled = decoder.stats.total_decoded + decoder.stats.total_dropped
        # 2 s of 30 fps input = 60 frames handled (decoded or shed).
        assert handled >= 55


class TestGopAccounting:
    def test_default_gop_shape(self):
        assert DEFAULT_GOP == "IBBPBBPBBPBBPBB"
        assert DEFAULT_GOP.count("I") == 1
        assert DEFAULT_GOP.count("B") == 10
