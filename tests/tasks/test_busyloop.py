"""BusyLoop threads: the Table 6 resource list."""

import pytest

from repro import units
from repro.tasks.busyloop import (
    busy_loop,
    busyloop_definition,
    busyloop_resource_list,
    yielding_busy_loop,
)


class TestTable6:
    def test_nine_entries_90_down_to_10(self):
        rl = busyloop_resource_list()
        assert len(rl) == 9
        assert [e.cpu_ticks for e in rl] == [
            243_000, 216_000, 189_000, 162_000, 135_000,
            108_000, 81_000, 54_000, 27_000,
        ]
        assert all(e.period == 270_000 for e in rl)

    def test_rates_are_ten_percent_steps(self):
        rl = busyloop_resource_list()
        assert [round(e.rate * 100) for e in rl] == [90, 80, 70, 60, 50, 40, 30, 20, 10]

    def test_all_entries_use_busyloop_function(self):
        rl = busyloop_resource_list()
        assert len({e.function for e in rl}) == 1
        assert all(e.label == "BusyLoop" for e in rl)

    def test_steps_bounds(self):
        with pytest.raises(ValueError):
            busyloop_resource_list(steps=0)
        with pytest.raises(ValueError):
            busyloop_resource_list(steps=10)

    def test_partial_steps(self):
        rl = busyloop_resource_list(steps=3)
        assert [round(e.rate * 100) for e in rl] == [90, 80, 70]


class TestVariants:
    def test_yielding_variant_selected_by_default(self):
        definition = busyloop_definition("t")
        assert definition.resource_list.maximum.function is yielding_busy_loop

    def test_greedy_variant(self):
        definition = busyloop_definition("t", yielding=False)
        assert definition.resource_list.maximum.function is busy_loop

    def test_yielding_thread_declines_overtime(self, ideal_rd):
        from repro.sim.trace import SegmentKind

        t = ideal_rd.admit(busyloop_definition("t"))
        ideal_rd.run_for(units.ms_to_ticks(50))
        overtime = [
            s
            for s in ideal_rd.trace.segments_for(t.tid)
            if s.kind is SegmentKind.OVERTIME
        ]
        assert overtime == []

    def test_greedy_thread_takes_overtime(self, ideal_rd):
        from repro.sim.trace import SegmentKind

        t = ideal_rd.admit(busyloop_definition("t", yielding=False))
        ideal_rd.run_for(units.ms_to_ticks(50))
        overtime = [
            s
            for s in ideal_rd.trace.segments_for(t.tid)
            if s.kind is SegmentKind.OVERTIME
        ]
        assert overtime
