"""Modem, cool-down, and AC3 task models."""

import pytest

from repro import units
from repro.tasks.ac3 import AC3_FULL_COST, AC3_PERIOD, Ac3Decoder
from repro.tasks.cooldown import CooldownTask
from repro.tasks.modem import MODEM_CPU, MODEM_PERIOD, Modem


class TestModem:
    def test_table4_parameters(self):
        rl = Modem().resource_list()
        assert rl.maximum.period == MODEM_PERIOD == 270_000
        assert rl.maximum.cpu_ticks == MODEM_CPU == 27_000
        assert rl.maximum.rate == pytest.approx(0.10)

    def test_quiescent_by_default(self):
        assert Modem().definition().start_quiescent

    def test_processes_samples_when_running(self, ideal_rd):
        modem = Modem()
        ideal_rd.admit(modem.definition(start_quiescent=False))
        ideal_rd.run_for(units.ms_to_ticks(50))
        assert modem.stats.periods_serviced >= 4
        assert modem.stats.samples_processed >= 4 * modem.samples_per_period
        assert not ideal_rd.trace.misses()


class TestCooldown:
    def test_levels_descend(self):
        rl = CooldownTask().resource_list()
        rates = [e.rate for e in rl]
        assert rates == sorted(rates, reverse=True)
        assert rates[0] == pytest.approx(0.5)

    def test_definition_is_quiescent(self):
        assert CooldownTask().definition().start_quiescent

    def test_noop_loop_consumes_grant(self, ideal_rd):
        task = CooldownTask()
        t = ideal_rd.admit(task.definition())
        ideal_rd.wake(t.tid)
        ideal_rd.run_for(units.ms_to_ticks(50))
        assert task.stats.noop_ticks >= units.ms_to_ticks(15)


class TestAc3:
    def test_period_is_one_sync_frame(self):
        assert AC3_PERIOD == units.ms_to_ticks(32)

    def test_full_decode_is_12_percent(self):
        assert AC3_FULL_COST / AC3_PERIOD == pytest.approx(0.12, abs=0.001)

    def test_downmix_is_half_cost(self):
        rl = Ac3Decoder().resource_list()
        assert rl.minimum.cpu_ticks * 2 == pytest.approx(rl.maximum.cpu_ticks, abs=2)

    def test_decodes_full_quality_unloaded(self, ideal_rd):
        decoder = Ac3Decoder()
        ideal_rd.admit(decoder.definition())
        ideal_rd.run_for(units.sec_to_ticks(1))
        assert decoder.stats.frames_full >= 30  # ~31 frames/s at 32 ms
        assert decoder.stats.frames_downmixed == 0
        assert not ideal_rd.trace.misses()

    def test_downmixes_under_pressure(self, ideal_rd):
        from tests.conftest import admit_simple

        decoder = Ac3Decoder()
        ideal_rd.admit(decoder.definition())
        admit_simple(ideal_rd, "hog", period_ms=10, rate=0.93)
        ideal_rd.run_for(units.sec_to_ticks(1))
        assert decoder.stats.frames_downmixed > 0
        assert not ideal_rd.trace.misses()
