"""Section 3.4/3.5 comparative claims, head-to-head on one overload.

Workload: three multimedia-style tasks, each wanting 50 % of the CPU at
a 10 ms period but able to shed to 10 % steps — 150 % of the machine.

* RD: admits all three, nobody misses, grants follow global policy.
* Naive EDF: cascading misses.
* SMART: fair share in overload; every task misses.
* Reserves: refuses the third task outright.
* Rialto: no misses but the victim is chosen by arrival order.
"""

import pytest

from repro import AdmissionError, MachineConfig, SimConfig, units
from repro.baselines import NaiveEdfSystem, ReservesSystem, RialtoSystem, SmartSystem
from repro.core.distributor import ResourceDistributor
from repro.metrics import miss_rate
from repro.tasks.busyloop import busyloop_definition
from repro.workloads import single_entry_definition

DURATION = units.ms_to_ticks(300)


def rd_system():
    rd = ResourceDistributor(machine=MachineConfig.ideal(), sim=SimConfig(seed=9))
    threads = [rd.admit(busyloop_definition(f"t{i}")) for i in range(3)]
    rd.run_for(DURATION)
    return rd, threads


def baseline(cls):
    system = cls(machine=MachineConfig.ideal(), sim=SimConfig(seed=9))
    threads = [
        system.admit(single_entry_definition(f"t{i}", 10, 0.5)) for i in range(3)
    ]
    system.run_for(DURATION)
    return system, threads


class TestResourceDistributor:
    def test_rd_admits_all_and_misses_nothing(self):
        rd, threads = rd_system()
        assert len(threads) == 3
        assert miss_rate(rd.trace) == 0.0

    def test_rd_degrades_to_discrete_useful_levels(self):
        rd, threads = rd_system()
        for t in threads:
            # Every grant is one of the task's own discrete levels.
            assert round(t.grant.rate * 10) == t.grant.rate * 10


class TestBaselineFailureModes:
    def test_naive_edf_cascades(self):
        system, threads = baseline(NaiveEdfSystem)
        assert miss_rate(system.trace) > 0.3

    def test_smart_spreads_misses_everywhere(self):
        system, threads = baseline(SmartSystem)
        for t in threads:
            assert miss_rate(system.trace, t.tid) > 0.5

    def test_reserves_denies_admission(self):
        system = ReservesSystem(machine=MachineConfig.ideal(), sim=SimConfig(seed=9))
        system.admit(single_entry_definition("t0", 10, 0.5))
        system.admit(single_entry_definition("t1", 10, 0.4))
        with pytest.raises(AdmissionError):
            system.admit(single_entry_definition("t2", 10, 0.5))

    def test_rialto_picks_victim_by_timing(self):
        system, threads = baseline(RialtoSystem)
        denial_rates = [system.denials.denial_rate(t.tid) for t in threads]
        # Someone eats all the denials; the earliest arrivals eat none.
        assert denial_rates[0] == 0.0
        assert max(denial_rates) > 0.9


class TestComparisonSummary:
    def test_rd_delivers_most_guaranteed_cpu_without_misses(self):
        """The quantitative headline: on the same overload the RD is the
        only scheduler with zero misses AND full machine utilization."""
        rd, rd_threads = rd_system()
        rd_granted = sum(rd.trace.busy_ticks(t.tid) for t in rd_threads)
        assert miss_rate(rd.trace) == 0.0
        # >= 90 % of the machine productively granted.
        assert rd_granted >= 0.9 * DURATION

        smart, smart_threads = baseline(SmartSystem)
        assert miss_rate(smart.trace) > 0.5
