"""Admission storms: incumbents are bit-for-bit undisturbed.

"By waiting for unallocated time to begin a new grant, we assure that
adding a new task cannot affect the running of an already admitted
task."  The strongest version of that claim: during an admit/exit storm
that never forces the incumbent below its maximum entry, the
incumbent's execution segments are *identical* to a storm-free run.
"""

import pytest

from repro import MachineConfig, SimConfig, units
from repro.core.distributor import ResourceDistributor
from repro.metrics import validate_trace
from repro.workloads import single_entry_definition


def ms(x):
    return units.ms_to_ticks(x)


def incumbent_segments(storm: bool, seed=77):
    rd = ResourceDistributor(machine=MachineConfig.ideal(), sim=SimConfig(seed=seed))
    incumbent = rd.admit(single_entry_definition("incumbent", 10, 0.4))
    if storm:
        # Forty short-lived small tasks churning through the system.
        state = {"alive": []}

        def admit(i):
            try:
                state["alive"].append(
                    rd.admit(single_entry_definition(f"fly{i}", 10, 0.05))
                )
            except Exception:
                pass

        def retire():
            if state["alive"]:
                rd.exit_thread(state["alive"].pop(0).tid)

        for i in range(40):
            rd.at(ms(5 + 7 * i), lambda i=i: admit(i))
            rd.at(ms(9 + 7 * i), retire)
    rd.run_for(ms(320))
    segments = [
        (s.start, s.end, s.kind.value, s.period_index)
        for s in rd.trace.segments_for(incumbent.tid)
    ]
    return rd, incumbent, segments


class TestStorm:
    def test_incumbent_schedule_identical_with_and_without_storm(self):
        _, _, quiet = incumbent_segments(storm=False)
        rd, incumbent, stormy = incumbent_segments(storm=True)
        # The incumbent has the earliest deadline at its period starts
        # and its 40 % maximum always fits, so the storm must not move
        # a single one of its execution segments.
        assert stormy == quiet
        assert not rd.trace.misses(incumbent.tid)

    def test_storm_trace_still_audits_clean(self):
        rd, incumbent, _ = incumbent_segments(storm=True)
        report = validate_trace(rd.trace, end_time=rd.now)
        assert report.ok, report.summary()

    def test_flies_also_got_their_grants(self):
        rd, incumbent, _ = incumbent_segments(storm=True)
        assert not rd.trace.misses()
        # Dozens of distinct short-lived threads actually ran.
        ran = {s.thread_id for s in rd.trace.segments} - {incumbent.tid, 0, -1}
        assert len(ran) >= 30
