"""Capstone soak: everything at once, audited.

Ten simulated seconds of a set-top box living its life: periodic A/V
decoding, a 3D renderer, a quiescent modem that answers a call and
hangs up, sporadic batch jobs through the Sporadic Server, a live
drifting transport stream, interrupt load inside the reserve, runtime
policy flips, and one task that crashes — all with the calibrated
context-switch cost model.  The run must end with zero deadline misses
for eligible periods and a clean trace audit.
"""

import pytest

from repro import SimConfig, SporadicServer, units
from repro.config import MachineConfig
from repro.core.distributor import ResourceDistributor
from repro.core.threads import ThreadState
from repro.machine.interrupts import InterruptSource
from repro.metrics import miss_rate, validate_trace
from repro.tasks.ac3 import Ac3Decoder
from repro.tasks.base import Compute
from repro.tasks.graphics3d import Renderer3D
from repro.tasks.mpeg import MpegDecoder
from repro.tasks.modem import Modem
from repro.tasks.stream import LiveMpegDecoder, TransportStream

HORIZON_SEC = 10.0


def batch_job(total_ms):
    def job(ctx):
        remaining = units.ms_to_ticks(total_ms)
        while remaining > 0:
            step = min(units.us_to_ticks(200), remaining)
            yield Compute(step)
            remaining -= step

    return job


def crasher(ctx):
    yield Compute(units.ms_to_ticks(2))
    raise RuntimeError("corrupted input")


@pytest.fixture(scope="module")
def soak():
    ms = units.ms_to_ticks
    rd = ResourceDistributor(machine=MachineConfig(), sim=SimConfig(seed=1234))
    horizon = units.sec_to_ticks(HORIZON_SEC)

    server = SporadicServer(rd, greedy=True)
    mpeg = MpegDecoder("dvd-video")
    ac3 = Ac3Decoder("dvd-audio")
    renderer = Renderer3D("render", use_scaler=True)
    modem = Modem("modem")
    stream = TransportStream("stream2", skew_ppm=1500.0, buffer_capacity=6)
    live = LiveMpegDecoder(stream, synchronize=True)

    threads = {
        "video": rd.admit(mpeg.definition()),
        "audio": rd.admit(ac3.definition()),
        "render": rd.admit(renderer.definition()),
        "modem": rd.admit(modem.definition(start_quiescent=True)),
        "live": rd.admit(live.definition()),
    }
    stream.attach(rd.kernel, horizon)

    irq = InterruptSource("nic", rate_hz=500, service_us=15)
    irq.attach(rd.kernel, horizon)

    jobs = [server.spawn(f"job{i}", batch_job(3)) for i in range(3)]

    # Life events.
    rd.at(units.sec_to_ticks(2), lambda: rd.wake(threads["modem"].tid), "ring")
    rd.at(
        units.sec_to_ticks(5),
        lambda: rd.enter_quiescent(threads["modem"].tid),
        "hang up",
    )
    vid = rd.policy_box.policy_id("dvd-video")
    aud = rd.policy_box.policy_id("dvd-audio")
    ren = rd.policy_box.policy_id("render")
    mod = rd.policy_box.policy_id("modem")
    liv = rd.policy_box.policy_id("stream2.decoder")
    rd.at(
        units.sec_to_ticks(4),
        lambda: rd.set_policy_override(
            {vid: 26, aud: 12, ren: 20, mod: 10, liv: 25}
        ),
        "user tweaks policy",
    )
    # A buggy app shows up mid-run and dies; the system shrugs.
    from repro.core.resource_list import ResourceList, ResourceListEntry
    from repro.tasks.base import TaskDefinition

    def admit_crasher():
        try:
            rd.admit(
                TaskDefinition(
                    name="flaky",
                    resource_list=ResourceList(
                        [ResourceListEntry(ms(10), ms(1), crasher, "flaky")]
                    ),
                )
            )
        except Exception:
            pass

    rd.at(units.sec_to_ticks(6), admit_crasher, "flaky app starts")

    rd.run_until(horizon)
    return rd, threads, {"server": server, "stream": stream, "live": live,
                         "mpeg": mpeg, "jobs": jobs, "irq": irq}


class TestSoak:
    def test_zero_miss_rate(self, soak):
        rd, threads, extras = soak
        assert miss_rate(rd.trace) == 0.0

    def test_trace_audit_clean(self, soak):
        rd, threads, extras = soak
        report = validate_trace(rd.trace, end_time=rd.now)
        assert report.ok, report.summary()

    def test_no_i_frames_lost_anywhere(self, soak):
        rd, threads, extras = soak
        assert extras["mpeg"].stats.i_frames_lost == 0
        assert extras["stream"].stats.overflow_dropped["I"] == 0

    def test_modem_serviced_its_call_window(self, soak):
        rd, threads, extras = soak
        modem = threads["modem"]
        busy = rd.trace.busy_ticks(
            modem.tid, units.sec_to_ticks(2), units.sec_to_ticks(5)
        )
        assert busy > units.ms_to_ticks(200)  # ~10 % of a 3 s window
        assert modem.state is ThreadState.QUIESCENT  # hung up again

    def test_sporadic_jobs_all_completed(self, soak):
        rd, threads, extras = soak
        assert all(j.state is ThreadState.EXITED for j in extras["jobs"])

    def test_crasher_contained(self, soak):
        rd, threads, extras = soak
        assert rd.kernel.crashes
        # Everyone else is still standing.
        for name in ("video", "audio", "render", "live"):
            assert threads[name].state is ThreadState.ACTIVE

    def test_overhead_inside_reserve(self, soak):
        rd, threads, extras = soak
        assert rd.kernel.reserve.within_reserve(rd.now)

    def test_policy_override_was_applied(self, soak):
        rd, threads, extras = soak
        changes = [
            g
            for g in rd.trace.grant_changes
            if g.time >= units.sec_to_ticks(4) and g.reason == "grant change"
        ]
        assert changes
