"""Section 6.1's end-to-end overhead claim.

"On a highly tuned system running an MPEG video decoder and AC3 audio,
we might expect about 300 context switches per second ... For this
load, we would expect a total context-switch cost of about 0.7 % of the
CPU."
"""

import pytest

from repro import MachineConfig, SimConfig, SporadicServer, units
from repro.core.distributor import ResourceDistributor
from repro.metrics.analysis import overhead_fraction, switches_per_second
from repro.tasks.ac3 import Ac3Decoder
from repro.tasks.mpeg import MpegDecoder
from repro.tasks.producer_consumer import Figure4Workload


@pytest.fixture(scope="module")
def av_run():
    """MPEG + AC3 + data-management threads + Sporadic Server, with the
    calibrated context-switch cost model."""
    rd = ResourceDistributor(machine=MachineConfig(), sim=SimConfig(seed=61))
    SporadicServer(rd, greedy=True)
    mpeg = MpegDecoder()
    ac3 = Ac3Decoder()
    rd.admit(mpeg.definition())
    rd.admit(ac3.definition())
    # Data-management companions, as in the paper's scenario.
    workload = Figure4Workload(fixed=True)
    defs = workload.definitions()
    rd.admit(defs[1])  # a 2 ms data thread
    rd.admit(defs[3])  # a 3 ms data thread
    rd.run_for(units.sec_to_ticks(2))
    return rd


class TestOverhead:
    def test_switch_rate_is_hundreds_per_second(self, av_run):
        rate = switches_per_second(av_run.trace, 0, units.sec_to_ticks(2))
        # The paper estimates ~300/s for this class of load.
        assert 100 <= rate <= 1200

    def test_total_switch_cost_below_the_reserve(self, av_run):
        frac = overhead_fraction(av_run.trace, 0, units.sec_to_ticks(2))
        # Paper: ~0.7 %.  The shape that matters: well under the 4 %
        # interrupt reserve, single-digit permille.
        assert frac < 0.04
        assert frac == pytest.approx(0.007, abs=0.007)

    def test_av_load_misses_nothing_with_real_switch_costs(self, av_run):
        assert not av_run.trace.misses()
