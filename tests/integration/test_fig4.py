"""Figure 4: scheduler effectiveness with the producer/consumer set.

Four periodic threads (13/2/3/3 ms at 1/30 s) plus the Sporadic Server.
The paper's observations, one third of a second into the run:

* the data-control threads are spinning for data (the application bug);
* producer thread 7 receives the unused time but is preempted when a
  new period begins, then receives its guaranteed allocation;
* producer thread 9 completes its work each period.
"""

import pytest

from repro import SporadicServer, units
from repro.sim.trace import SegmentKind
from repro.tasks.producer_consumer import Figure4Workload


def ms(x):
    return units.ms_to_ticks(x)


@pytest.fixture
def fig4(ideal_rd):
    server = SporadicServer(ideal_rd)
    workload = Figure4Workload(fixed=False)
    threads = dict(
        zip(["p7", "dm8", "p9", "dm10"], (ideal_rd.admit(d) for d in workload.definitions()))
    )
    ideal_rd.run_for(units.sec_to_ticks(0.4))
    return ideal_rd, server, workload, threads


class TestFigure4:
    def test_system_is_not_overloaded(self, fig4):
        rd, server, workload, threads = fig4
        result = rd.resource_manager.last_result
        assert result.passes == 0

    def test_no_deadline_misses(self, fig4):
        rd, *_ = fig4
        assert not rd.trace.misses()

    def test_thread7_receives_unused_time_and_guarantee(self, fig4):
        rd, server, workload, threads = fig4
        p7 = threads["p7"]
        overtime = sum(
            s.length
            for s in rd.trace.segments_for(p7.tid)
            if s.kind is SegmentKind.OVERTIME
        )
        assert overtime > 0
        for outcome in rd.trace.deadlines_for(p7.tid):
            assert outcome.delivered == outcome.granted

    def test_thread7_preempted_at_new_periods(self, fig4):
        rd, server, workload, threads = fig4
        p7 = threads["p7"]
        # Overtime segments end at period boundaries (multiples of
        # 900,000 ticks) when fresh allocations preempt them.
        boundary_ends = [
            s.end % 900_000
            for s in rd.trace.segments_for(p7.tid)
            if s.kind is SegmentKind.OVERTIME
        ]
        assert boundary_ends
        assert any(end == 0 for end in boundary_ends)

    def test_thread9_completes_every_period(self, fig4):
        rd, server, workload, threads = fig4
        p9 = threads["p9"]
        for outcome in rd.trace.deadlines_for(p9.tid):
            assert outcome.delivered == outcome.granted
        # And it declared itself done (it never lands on overtime).
        overtime = [
            s
            for s in rd.trace.segments_for(p9.tid)
            if s.kind is SegmentKind.OVERTIME
        ]
        assert not overtime

    def test_data_threads_spin_through_their_grants(self, fig4):
        rd, server, workload, threads = fig4
        assert workload.stats.spin_ticks > 0
        for name in ("dm8", "dm10"):
            for outcome in rd.trace.deadlines_for(threads[name].tid):
                assert outcome.delivered == outcome.granted

    def test_schedule_snapshot_one_third_second_in(self, fig4):
        rd, server, workload, threads = fig4
        window_start = units.sec_to_ticks(1 / 3)
        window_end = window_start + 2 * 900_000
        busy = sum(
            rd.trace.busy_ticks(t.tid, window_start, window_end)
            for t in threads.values()
        )
        # All four periodic threads are active in the snapshot window.
        assert busy > 0
        for t in threads.values():
            assert rd.trace.busy_ticks(t.tid, window_start, window_end) > 0
