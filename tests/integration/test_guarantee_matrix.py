"""The guarantee, everywhere: scenarios x machine configurations.

Every canonical scenario must hold the paper's core promise — zero
missed deadlines for eligible periods and a clean trace audit — on the
frictionless machine, the deterministic-reserve machine, and the fully
calibrated machine with stochastic switch costs.
"""

import pytest

from repro import ContextSwitchCosts, MachineConfig, SimConfig, units
from repro.metrics import miss_rate, validate_trace
from repro.scenarios import av_pipeline, figure4, figure5, settop, table4_trio

MACHINES = {
    "ideal": "ideal",
    "quiet": "quiet",
    "calibrated": "calibrated",
}

SCENARIOS = {
    "table4": (table4_trio, 300),
    "figure4": (figure4, 300),
    "settop": (settop, 500),
}


def build(scenario_name, machine_kind, seed):
    builder, duration = SCENARIOS[scenario_name]
    try:
        scenario = builder(seed=seed, machine=machine_kind)
    except TypeError:
        scenario = builder(seed=seed)
    scenario.rd.run_for(units.ms_to_ticks(duration))
    return scenario


class TestMatrix:
    @pytest.mark.parametrize("machine_kind", sorted(MACHINES))
    @pytest.mark.parametrize("scenario_name", sorted(SCENARIOS))
    def test_no_misses_and_clean_audit(self, scenario_name, machine_kind):
        scenario = build(scenario_name, machine_kind, seed=11)
        assert miss_rate(scenario.trace) == 0.0
        report = validate_trace(scenario.trace, end_time=scenario.rd.now)
        assert report.ok, report.summary()

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_calibrated_settop_robust_across_seeds(self, seed):
        """Stochastic switch costs must never tip a guaranteed set
        into missing, whatever the draw."""
        scenario = settop(seed=seed)
        scenario.rd.run_for(units.ms_to_ticks(800))
        assert miss_rate(scenario.trace) == 0.0

    def test_figure5_staircase_stable_across_seeds(self):
        from repro.metrics import allocation_series

        results = []
        for seed in (3, 8, 13):
            scenario = figure5(seed=seed).run_for(units.ms_to_ticks(150))
            t2 = scenario.threads["thread2"]
            results.append(
                [
                    round(units.ticks_to_ms(v))
                    for _, v in allocation_series(scenario.trace, t2.tid)
                ][:8]
            )
        assert results[0] == results[1] == results[2] == [9, 9, 4, 4, 3, 3, 2, 2]
