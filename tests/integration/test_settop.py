"""The section 5.3 end-to-end scenario: DVD, teleconference, modem.

"Imagine a PC environment where the user is studying multimedia data
from a DVD ... waiting for a teleconferencing connection.  Until the
telephone call occurs, the full resources of the machine should be
dedicated to the DVD.  Afterwards, the modem, teleconferencing, and DVD
software must share resources, and the DVD may have to shed load.  Our
Resource Distributor lets the user start these applications in any
order."
"""

import pytest

from repro import ContextSwitchCosts, MachineConfig, SimConfig, units
from repro.core.distributor import ResourceDistributor
from repro.core.threads import ThreadState
from repro.tasks.ac3 import Ac3Decoder
from repro.tasks.graphics3d import Renderer3D
from repro.tasks.modem import Modem
from repro.tasks.mpeg import MpegDecoder


def ms(x):
    return units.ms_to_ticks(x)


def build(order, seed=3):
    """Admit the scenario's tasks in the given order; ring at 200 ms."""
    rd = ResourceDistributor(
        machine=MachineConfig(switch_costs=ContextSwitchCosts.zero()),
        sim=SimConfig(seed=seed),
    )
    mpeg = MpegDecoder("DVD-video")
    audio = Ac3Decoder("DVD-audio")
    graphics = Renderer3D("Teleconf-render", use_scaler=False)
    modem = Modem("Modem")
    defs = {
        "video": mpeg.definition(),
        "audio": audio.definition(),
        "render": graphics.definition(),
        "modem": modem.definition(start_quiescent=True),
    }
    threads = {}
    for key in order:
        threads[key] = rd.admit(defs[key])
    rd.at(ms(200), lambda: rd.wake(threads["modem"].tid), "phone rings")
    rd.run_for(units.sec_to_ticks(1))
    return rd, threads, mpeg, audio


class TestScenario:
    def test_dvd_has_full_quality_before_the_call(self):
        rd, threads, mpeg, audio = build(["video", "audio", "render", "modem"])
        first_grant = next(
            g for g in rd.trace.grant_changes if g.thread_id == threads["video"].tid
        )
        assert first_grant.entry_index == 0  # FullDecompress

    def test_modem_answers_promptly(self):
        rd, threads, mpeg, audio = build(["video", "audio", "render", "modem"])
        modem_thread = threads["modem"]
        assert modem_thread.state is ThreadState.ACTIVE
        first_run = min(s.start for s in rd.trace.segments_for(modem_thread.tid))
        # The first grant starts at the next unallocated time, which can
        # be up to the longest admitted period away (the 100 ms
        # renderer), plus a couple of modem periods to actually run.
        assert first_run - ms(200) <= ms(100) + 2 * 270_000

    def test_someone_sheds_load_after_the_call(self):
        rd, threads, mpeg, audio = build(["video", "audio", "render", "modem"])
        degradations = [
            g
            for g in rd.trace.grant_changes
            if g.time >= ms(200) and g.reason == "grant change"
        ]
        assert degradations, "the wake must force load shedding"

    def test_no_misses_throughout(self):
        rd, threads, mpeg, audio = build(["video", "audio", "render", "modem"])
        assert not rd.trace.misses()

    def test_no_i_frames_lost(self):
        rd, threads, mpeg, audio = build(["video", "audio", "render", "modem"])
        assert mpeg.stats.i_frames_lost == 0


class TestOrderIndependence:
    """Policy is not affected by the order in which threads start."""

    @pytest.mark.parametrize(
        "order",
        [
            ["video", "audio", "render", "modem"],
            ["modem", "render", "audio", "video"],
            ["audio", "modem", "video", "render"],
        ],
    )
    def test_final_grant_rates_identical_for_any_start_order(self, order):
        rd, threads, mpeg, audio = build(order)
        rates = {
            key: round(threads[key].grant.rate, 3)
            for key in ("video", "audio", "render", "modem")
        }
        baseline_rd, baseline_threads, *_ = build(
            ["video", "audio", "render", "modem"]
        )
        baseline = {
            key: round(baseline_threads[key].grant.rate, 3)
            for key in ("video", "audio", "render", "modem")
        }
        assert rates == baseline
