"""Table 4 + Figure 3: the modem / 3D / MPEG grant set and its EDF
schedule.

Table 4's grant set: Modem 27,000/270,000 (10 %), 3D 143,156/275,300
(52 %), MPEG 270,000/810,000 (33 %).  Figure 3 shows the resulting EDF
schedule, in which "the EDF schedule preempts the MPEG and 3D Graphics
tasks" — and, per guarantee 3, the modem (smallest requirement/period)
is never preempted.
"""

import pytest

from repro import MachineConfig, SimConfig, TaskDefinition, units
from repro.core.distributor import ResourceDistributor
from repro.core.resource_list import ResourceList, ResourceListEntry
from repro.sim.trace import SegmentKind
from repro.workloads import grant_follower, greedy_worker


def table4_distributor(seed=7):
    rd = ResourceDistributor(machine=MachineConfig.ideal(), sim=SimConfig(seed=seed))
    modem = rd.admit(
        TaskDefinition(
            name="Modem",
            resource_list=ResourceList(
                [ResourceListEntry(270_000, 27_000, grant_follower, "Modem")]
            ),
        )
    )
    graphics = rd.admit(
        TaskDefinition(
            name="3D",
            resource_list=ResourceList(
                [ResourceListEntry(275_300, 143_156, greedy_worker, "Render3DFrame")]
            ),
        )
    )
    mpeg = rd.admit(
        TaskDefinition(
            name="MPEG",
            resource_list=ResourceList(
                [ResourceListEntry(810_000, 270_000, grant_follower, "FullDecompress")]
            ),
        )
    )
    return rd, modem, graphics, mpeg


class TestTable4GrantSet:
    def test_grant_set_matches_table4(self):
        rd, modem, graphics, mpeg = table4_distributor()
        gs = rd.current_grant_set
        assert gs[modem.tid].rate == pytest.approx(0.10)
        assert gs[graphics.tid].rate == pytest.approx(0.52, abs=0.001)
        assert gs[mpeg.tid].rate == pytest.approx(1 / 3)

    def test_set_fits_without_policy_intervention(self):
        rd, *_ = table4_distributor()
        result = rd.resource_manager.last_result
        assert result.passes == 0  # 95 % total: the fast path suffices
        assert result.policy is None


class TestFigure3Schedule:
    def test_no_misses_over_many_periods(self):
        rd, *_ = table4_distributor()
        rd.run_for(units.sec_to_ticks(0.5))
        assert not rd.trace.misses()

    def test_mpeg_is_preempted(self):
        # MPEG's 30 ms period wraps three modem/3D periods, so its 10 ms
        # grant is routinely split by their fresh (earlier) deadlines.
        rd, modem, graphics, mpeg = table4_distributor()
        rd.run_for(units.sec_to_ticks(0.5))
        assert self._split_periods(rd, mpeg) > 0

    def test_3d_yields_to_modem_but_is_never_split(self):
        # The timer rule only preempts for a thread whose *next-period
        # end* precedes the running thread's deadline.  The modem's next
        # deadline almost always lands after the 3D task's (their
        # periods differ by 5,300 ticks), so 3D is ordered after the
        # modem by EDF rather than split mid-grant.
        rd, modem, graphics, mpeg = table4_distributor()
        rd.run_for(units.sec_to_ticks(0.5))
        assert self._split_periods(rd, graphics) == 0
        # EDF ordering: in every modem period the modem ran first.
        for outcome in rd.trace.deadlines_for(modem.tid):
            assert outcome.delivered == outcome.granted

    def test_modem_never_preempted(self):
        rd, modem, graphics, mpeg = table4_distributor()
        rd.run_for(units.sec_to_ticks(0.5))
        assert self._split_periods(rd, modem) == 0

    @staticmethod
    def _split_periods(rd, thread):
        by_period = {}
        for seg in rd.trace.segments_for(thread.tid):
            if seg.kind is SegmentKind.GRANTED:
                by_period.setdefault(seg.period_index, 0)
                by_period[seg.period_index] += 1
        return sum(1 for count in by_period.values() if count > 1)

    def test_every_thread_runs_every_own_period(self):
        rd, modem, graphics, mpeg = table4_distributor()
        rd.run_for(units.sec_to_ticks(0.5))
        for thread in (modem, graphics, mpeg):
            for outcome in rd.trace.deadlines_for(thread.tid):
                assert outcome.delivered == outcome.granted

    def test_gantt_renders_all_three_rows(self):
        from repro.viz import render_gantt

        rd, modem, graphics, mpeg = table4_distributor()
        rd.run_for(units.ms_to_ticks(60))
        out = render_gantt(
            rd.trace,
            {modem.tid: "Modem", graphics.tid: "3D", mpeg.tid: "MPEG"},
            0,
            units.ms_to_ticks(60),
        )
        assert "Modem" in out and "3D" in out and "MPEG" in out
        assert "#" in out
