"""Test package."""
