"""Table 6 + Figure 5: staggered admissions and load shedding.

Five BusyLoop threads (nine entries each, 90 %..10 % of a 10 ms period)
started 20 ms apart, beside a greedy Sporadic Server, with the 4 %
interrupt reserve.  Expected, per the paper:

* thread 2 starts at 9 ms/period, then drops to 4, 3, and 2 ms as
  threads are admitted (staying at 2 ms for both four and five threads);
* allocations arrive every 10 ms (the period never changes);
* each new thread receives its first grant in time that would otherwise
  have gone to the Sporadic Server as unallocated time;
* the Sporadic Server runs at least every 10 ms.
"""

import pytest

from repro import ContextSwitchCosts, MachineConfig, SimConfig, SporadicServer, units
from repro.core.distributor import ResourceDistributor
from repro.metrics import allocation_series
from repro.tasks.busyloop import busyloop_definition


def ms(x):
    return units.ms_to_ticks(x)


@pytest.fixture(scope="module")
def fig5():
    rd = ResourceDistributor(
        machine=MachineConfig(switch_costs=ContextSwitchCosts.zero()),
        sim=SimConfig(seed=5),
    )
    server = SporadicServer(rd, greedy=True)
    threads = []

    def admit(name):
        threads.append(rd.admit(busyloop_definition(name)))

    admit("thread2")
    for i in range(1, 5):
        rd.at(ms(20 * i), lambda n=f"thread{i + 2}": admit(n))
    rd.run_for(ms(150))
    return rd, server, threads


class TestFigure5:
    def test_thread2_allocation_staircase(self, fig5):
        rd, server, threads = fig5
        series = [
            round(units.ticks_to_ms(v)) for _, v in allocation_series(rd.trace, threads[0].tid)
        ]
        # 9 ms alone; 4 with one more; 3 with three; 2 with four or five.
        assert series[:8] == [9, 9, 4, 4, 3, 3, 2, 2]
        assert all(v == 2 for v in series[8:])

    def test_allocations_arrive_every_10ms(self, fig5):
        rd, server, threads = fig5
        starts = [start for start, _ in allocation_series(rd.trace, threads[0].tid)]
        gaps = {b - a for a, b in zip(starts, starts[1:])}
        assert gaps == {ms(10)}

    def test_no_deadline_misses_during_staggered_admission(self, fig5):
        rd, *_ = fig5
        assert not rd.trace.misses()

    def test_final_rates_four_at_20_one_at_10(self, fig5):
        rd, server, threads = fig5
        rates = sorted(round(t.grant.rate, 2) for t in threads)
        assert rates == [0.1, 0.2, 0.2, 0.2, 0.2]

    def test_first_grants_start_in_previously_unallocated_time(self, fig5):
        rd, server, threads = fig5
        for i, thread in enumerate(threads[1:], start=1):
            first = next(
                g for g in rd.trace.grant_changes if g.thread_id == thread.tid
            )
            # Activated at/after its admission event, not before.
            assert first.time >= ms(20 * i)

    def test_sporadic_server_runs_at_least_every_10ms(self, fig5):
        rd, server, threads = fig5
        segs = rd.trace.segments_for(server.thread.tid)
        gaps = [b.start - a.end for a, b in zip(segs, segs[1:])]
        assert gaps
        assert max(gaps) <= ms(10)

    def test_table6_resource_list_used(self, fig5):
        rd, server, threads = fig5
        entries = threads[0].definition.resource_list
        assert [e.cpu_ticks for e in entries] == [
            243_000, 216_000, 189_000, 162_000, 135_000, 108_000, 81_000, 54_000, 27_000,
        ]
