"""Exclusive functional units end-to-end: two renderers, one scaler."""

import pytest

from repro import ContextSwitchCosts, MachineConfig, SimConfig, units
from repro.core.distributor import ResourceDistributor
from repro.tasks.graphics3d import VIDEO_SCALER, Renderer3D


def ms(x):
    return units.ms_to_ticks(x)


def build(rank_a=None, rank_b=None, seed=9):
    rd = ResourceDistributor(
        machine=MachineConfig(switch_costs=ContextSwitchCosts.zero()),
        sim=SimConfig(seed=seed),
    )
    a = Renderer3D("renderA", use_scaler=True)
    b = Renderer3D("renderB", use_scaler=True)
    pid_a = rd.policy_box.register_task("renderA")
    pid_b = rd.policy_box.register_task("renderB")
    if rank_a is not None:
        rd.policy_box.set_default({pid_a: rank_a, pid_b: rank_b})
    thread_a = rd.admit(a.definition())
    thread_b = rd.admit(b.definition())
    rd.run_for(ms(300))
    return rd, thread_a, thread_b


class TestScalerContention:
    def test_scaler_never_double_granted(self):
        rd, a, b = build()
        holds_a = VIDEO_SCALER in a.grant.exclusive
        holds_b = VIDEO_SCALER in b.grant.exclusive
        assert not (holds_a and holds_b)

    def test_registry_agrees_with_grants(self):
        rd, a, b = build()
        owner = rd.kernel.exclusive.owner(VIDEO_SCALER)
        for thread in (a, b):
            if VIDEO_SCALER in thread.grant.exclusive:
                assert owner == thread.tid

    def test_policy_ranking_decides_the_holder(self):
        rd, a, b = build(rank_a=20, rank_b=70)
        assert VIDEO_SCALER in b.grant.exclusive
        assert VIDEO_SCALER not in a.grant.exclusive

    def test_reversed_ranking_flips_the_holder(self):
        rd, a, b = build(rank_a=70, rank_b=20)
        assert VIDEO_SCALER in a.grant.exclusive
        assert VIDEO_SCALER not in b.grant.exclusive

    def test_loser_still_gets_a_scalerless_grant(self):
        rd, a, b = build(rank_a=20, rank_b=70)
        # Entries 2 and 3 of Table 3 need no scaler; the loser lands there.
        assert a.grant.entry_index >= 2
        assert a.grant.rate > 0

    def test_no_misses_under_contention(self):
        rd, a, b = build(rank_a=20, rank_b=70)
        assert not rd.trace.misses()

    def test_exit_releases_the_unit_to_the_other(self):
        rd, a, b = build(rank_a=20, rank_b=70)
        assert VIDEO_SCALER in b.grant.exclusive
        rd.exit_thread(b.tid)
        rd.run_for(ms(300))
        assert rd.kernel.exclusive.owner(VIDEO_SCALER) == a.tid
        assert VIDEO_SCALER in a.grant.exclusive
