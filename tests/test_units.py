"""Units: tick conversions and the paper's constants."""

import pytest

from repro import units


class TestConstants:
    def test_tci_frequency_is_27_mhz(self):
        assert units.TCI_HZ == 27_000_000

    def test_core_frequency_is_200_mhz(self):
        assert units.CORE_HZ == 200_000_000

    def test_min_period_is_500_us(self):
        assert units.MIN_PERIOD_TICKS == 13_500

    def test_max_period_is_159_seconds(self):
        assert units.MAX_PERIOD_TICKS == 159 * 27_000_000


class TestConversions:
    def test_ms_round_trip(self):
        assert units.ticks_to_ms(units.ms_to_ticks(10)) == pytest.approx(10.0)

    def test_us_to_ticks(self):
        assert units.us_to_ticks(1) == 27

    def test_sec_to_ticks(self):
        assert units.sec_to_ticks(1) == 27_000_000

    def test_fractional_us_rounds(self):
        assert units.us_to_ticks(11.5) == round(11.5 * 27)

    def test_mpeg_30fps_period(self):
        # The paper: MPEG at 30 fps requests a period of 900,000 ticks.
        assert units.hz_to_period_ticks(30) == 900_000

    def test_72hz_refresh_period(self):
        # The paper: 72 Hz display refresh -> 375,000 ticks.
        assert units.hz_to_period_ticks(72) == 375_000

    def test_hz_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.hz_to_period_ticks(0)

    def test_core_cycles_to_ticks(self):
        # 200 cycles at 200 MHz = 1 us = 27 ticks.
        assert units.core_cycles_to_ticks(200) == 27


class TestRoundTripEdges:
    def test_every_whole_ms_round_trips_exactly(self):
        for ms in (1, 2, 500, 159_000):
            assert units.ticks_to_ms(units.ms_to_ticks(ms)) == ms

    def test_sub_tick_quantities_round_to_nearest(self):
        # Half a tick of microseconds (1/54 us) rounds via banker's rounding.
        assert units.us_to_ticks(1 / 27) == 1
        assert units.us_to_ticks(0.5 / 27) == 0  # round(0.5) -> 0
        assert units.us_to_ticks(1.5 / 27) == 2  # round(1.5) -> 2

    def test_zero_is_a_fixed_point(self):
        assert units.ms_to_ticks(0) == 0
        assert units.ticks_to_ms(0) == 0.0
        assert units.us_to_ticks(0) == 0
        assert units.sec_to_ticks(0) == 0

    def test_fractional_ms_survives_one_round_trip_within_a_tick(self):
        for ms in (0.5, 1.25, 3.7, 16.6667):
            back = units.ticks_to_ms(units.ms_to_ticks(ms))
            assert abs(back - ms) <= units.ticks_to_ms(1) / 2

    def test_negative_offsets_convert_symmetrically(self):
        # Deltas can be negative (deadline slack); conversion must not
        # fold them toward zero differently than positive values.
        assert units.ms_to_ticks(-10) == -units.ms_to_ticks(10)
        assert units.ticks_to_us(-27) == -1.0

    def test_unit_ladder_is_consistent(self):
        assert units.ms_to_ticks(1) == units.us_to_ticks(1000)
        assert units.sec_to_ticks(1) == units.ms_to_ticks(1000)
        assert units.TICKS_PER_SEC == 1000 * units.TICKS_PER_MS
        assert units.TICKS_PER_MS == 1000 * units.TICKS_PER_US


class TestInfiniteSentinel:
    def test_sentinel_is_far_beyond_any_schedulable_period(self):
        assert units.INFINITE == 1 << 62
        assert units.INFINITE > units.MAX_PERIOD_TICKS

    def test_sentinel_is_not_a_valid_period(self):
        # "Compute forever" work never enters the periodic admission path.
        with pytest.raises(ValueError):
            units.validate_period(units.INFINITE)

    def test_sentinel_survives_ms_conversion_without_overflow(self):
        # Python ints are unbounded, but the value must stay ordered
        # after a float division (ticks_to_ms) for logging/telemetry.
        assert units.ticks_to_ms(units.INFINITE) > units.ticks_to_ms(
            units.MAX_PERIOD_TICKS
        )


class TestValidatePeriod:
    def test_accepts_bounds(self):
        assert units.validate_period(units.MIN_PERIOD_TICKS) == units.MIN_PERIOD_TICKS
        assert units.validate_period(units.MAX_PERIOD_TICKS) == units.MAX_PERIOD_TICKS

    def test_rejects_too_short(self):
        with pytest.raises(ValueError):
            units.validate_period(units.MIN_PERIOD_TICKS - 1)

    def test_rejects_too_long(self):
        with pytest.raises(ValueError):
            units.validate_period(units.MAX_PERIOD_TICKS + 1)

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            units.validate_period(900_000.0)

    def test_boundary_periods_in_ms_terms(self):
        # 500 us and 159 s expressed through the converters admit cleanly.
        assert units.validate_period(units.us_to_ticks(500)) == units.MIN_PERIOD_TICKS
        assert units.validate_period(units.sec_to_ticks(159)) == units.MAX_PERIOD_TICKS

    def test_error_message_names_the_bounds(self):
        with pytest.raises(ValueError, match=r"500 us to 159 s"):
            units.validate_period(1)

    def test_bool_is_rejected_despite_being_an_int_subclass(self):
        # bool slips through isinstance(int); a period of True is a bug.
        with pytest.raises((TypeError, ValueError)):
            units.validate_period(True)
