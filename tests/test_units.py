"""Units: tick conversions and the paper's constants."""

import pytest

from repro import units


class TestConstants:
    def test_tci_frequency_is_27_mhz(self):
        assert units.TCI_HZ == 27_000_000

    def test_core_frequency_is_200_mhz(self):
        assert units.CORE_HZ == 200_000_000

    def test_min_period_is_500_us(self):
        assert units.MIN_PERIOD_TICKS == 13_500

    def test_max_period_is_159_seconds(self):
        assert units.MAX_PERIOD_TICKS == 159 * 27_000_000


class TestConversions:
    def test_ms_round_trip(self):
        assert units.ticks_to_ms(units.ms_to_ticks(10)) == pytest.approx(10.0)

    def test_us_to_ticks(self):
        assert units.us_to_ticks(1) == 27

    def test_sec_to_ticks(self):
        assert units.sec_to_ticks(1) == 27_000_000

    def test_fractional_us_rounds(self):
        assert units.us_to_ticks(11.5) == round(11.5 * 27)

    def test_mpeg_30fps_period(self):
        # The paper: MPEG at 30 fps requests a period of 900,000 ticks.
        assert units.hz_to_period_ticks(30) == 900_000

    def test_72hz_refresh_period(self):
        # The paper: 72 Hz display refresh -> 375,000 ticks.
        assert units.hz_to_period_ticks(72) == 375_000

    def test_hz_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.hz_to_period_ticks(0)

    def test_core_cycles_to_ticks(self):
        # 200 cycles at 200 MHz = 1 us = 27 ticks.
        assert units.core_cycles_to_ticks(200) == 27


class TestValidatePeriod:
    def test_accepts_bounds(self):
        assert units.validate_period(units.MIN_PERIOD_TICKS) == units.MIN_PERIOD_TICKS
        assert units.validate_period(units.MAX_PERIOD_TICKS) == units.MAX_PERIOD_TICKS

    def test_rejects_too_short(self):
        with pytest.raises(ValueError):
            units.validate_period(units.MIN_PERIOD_TICKS - 1)

    def test_rejects_too_long(self):
        with pytest.raises(ValueError):
            units.validate_period(units.MAX_PERIOD_TICKS + 1)

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            units.validate_period(900_000.0)
