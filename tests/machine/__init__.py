"""Test package."""
