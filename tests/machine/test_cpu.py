"""Context-switch cost model: calibration against section 6.1."""

import random
import statistics

import pytest

from repro import units
from repro.config import ContextSwitchCosts
from repro.machine.cpu import ContextSwitchModel, RegisterFile
from repro.sim.trace import SwitchKind


@pytest.fixture
def model():
    return ContextSwitchModel(ContextSwitchCosts(), random.Random(1234))


class TestRegisterFile:
    def test_voluntary_saves_14_per_bank(self):
        rf = RegisterFile()
        assert rf.voluntary_saved == 28

    def test_involuntary_saves_both_banks_plus_system(self):
        rf = RegisterFile()
        assert rf.involuntary_saved == 2 * 64 + 64


class TestCalibration:
    """The sampled distributions must reproduce the paper's summary
    statistics: voluntary 11.5/18.3/20.7 us, involuntary 16.9/28.2/35.0."""

    N = 20_000

    def _stats(self, model, kind):
        samples = [units.ticks_to_us(model.sample_ticks(kind)) for _ in range(self.N)]
        return min(samples), statistics.median(samples), statistics.fmean(samples)

    def test_voluntary_statistics(self, model):
        lo, med, mean = self._stats(model, SwitchKind.VOLUNTARY)
        assert lo >= 11.5 - 0.05  # shifted distribution: hard minimum
        assert med == pytest.approx(18.3, rel=0.05)
        assert mean == pytest.approx(20.7, rel=0.05)

    def test_involuntary_statistics(self, model):
        lo, med, mean = self._stats(model, SwitchKind.INVOLUNTARY)
        assert lo >= 16.9 - 0.05
        assert med == pytest.approx(28.2, rel=0.05)
        assert mean == pytest.approx(35.0, rel=0.05)

    def test_involuntary_costs_more_on_average(self, model):
        _, _, vol = self._stats(model, SwitchKind.VOLUNTARY)
        _, _, invol = self._stats(model, SwitchKind.INVOLUNTARY)
        assert invol > vol


class TestZeroCost:
    def test_zero_model_always_free(self):
        model = ContextSwitchModel(ContextSwitchCosts.zero(), random.Random(0))
        assert model.sample_ticks(SwitchKind.VOLUNTARY) == 0
        assert model.sample_ticks(SwitchKind.INVOLUNTARY) == 0

    def test_is_zero_flag(self):
        assert ContextSwitchCosts.zero().is_zero
        assert not ContextSwitchCosts().is_zero


class TestMeanCost:
    def test_mean_cost_ticks(self, model):
        assert model.mean_cost_ticks(SwitchKind.VOLUNTARY) == units.us_to_ticks(20.7)
        assert model.mean_cost_ticks(SwitchKind.INVOLUNTARY) == units.us_to_ticks(35.0)


class TestDeterminism:
    def test_same_stream_same_samples(self):
        a = ContextSwitchModel(ContextSwitchCosts(), random.Random(9))
        b = ContextSwitchModel(ContextSwitchCosts(), random.Random(9))
        assert [a.sample_ticks(SwitchKind.VOLUNTARY) for _ in range(10)] == [
            b.sample_ticks(SwitchKind.VOLUNTARY) for _ in range(10)
        ]
