"""Interrupt-load injection: the section 5.2 reserve tradeoff, live."""

import pytest

from repro import ContextSwitchCosts, MachineConfig, SimConfig, units
from repro.core.distributor import ResourceDistributor
from repro.machine.interrupts import InterruptSource
from repro.workloads import single_entry_definition


def ms(x):
    return units.ms_to_ticks(x)


def make_rd(reserve):
    machine = MachineConfig(
        interrupt_reserve=reserve,
        switch_costs=ContextSwitchCosts.zero(),
        overlap_override_ticks=0,
        admission_cost_ticks=0,
    )
    return ResourceDistributor(machine=machine, sim=SimConfig(seed=52))


class TestInjection:
    def test_interrupts_fire_at_about_the_rate(self):
        rd = make_rd(0.04)
        source = InterruptSource("nic", rate_hz=1000, service_us=20)
        source.attach(rd.kernel, units.sec_to_ticks(1))
        rd.run_for(units.sec_to_ticks(1))
        assert source.fired == pytest.approx(1000, rel=0.1)

    def test_stolen_time_is_charged_to_the_reserve(self):
        rd = make_rd(0.04)
        source = InterruptSource("nic", rate_hz=1000, service_us=20)
        source.attach(rd.kernel, units.sec_to_ticks(1))
        rd.run_for(units.sec_to_ticks(1))
        # 1000/s x 20 us = 2 % of the CPU.
        assert rd.kernel.reserve.consumed_fraction(rd.now) == pytest.approx(
            0.02, rel=0.15
        )
        assert rd.kernel.reserve.within_reserve(rd.now)

    def test_validation_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            InterruptSource("x", rate_hz=0, service_us=10)
        with pytest.raises(ValueError):
            InterruptSource("x", rate_hz=100, service_us=0)
        with pytest.raises(ValueError):
            InterruptSource("x", rate_hz=100, service_us=10, jitter=1.5)


class TestReserveSizing:
    """The paper's tradeoff: the reserve must cover the interrupt load
    or admitted tasks lose their deadlines."""

    def _run(self, reserve, irq_fraction):
        rd = make_rd(reserve)
        # Fill the schedulable capacity almost completely.
        committed = 0.0
        i = 0
        while committed + 0.23 <= reserve_capacity(reserve):
            rd.admit(single_entry_definition(f"t{i}", 10, 0.23))
            committed += 0.23
            i += 1
        # Interrupt load: irq_fraction of the CPU in 25 us handlers.
        rate = irq_fraction / 25e-6
        source = InterruptSource("dev", rate_hz=rate, service_us=25)
        source.attach(rd.kernel, units.sec_to_ticks(1))
        rd.run_for(units.sec_to_ticks(1))
        return rd

    def test_load_within_reserve_keeps_guarantees(self):
        rd = self._run(reserve=0.08, irq_fraction=0.05)
        assert not rd.trace.misses()

    def test_load_beyond_reserve_breaks_guarantees(self):
        rd = self._run(reserve=0.04, irq_fraction=0.12)
        assert rd.trace.misses()


def reserve_capacity(reserve):
    return 1.0 - reserve
