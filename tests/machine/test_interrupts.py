"""Interrupt reserve accounting."""

import pytest

from repro.machine.interrupts import InterruptReserve


class TestReserve:
    def test_default_is_four_percent(self):
        assert InterruptReserve().fraction == 0.04

    def test_schedulable_fraction(self):
        assert InterruptReserve(0.04).schedulable_fraction == pytest.approx(0.96)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            InterruptReserve(1.0)
        with pytest.raises(ValueError):
            InterruptReserve(-0.1)

    def test_charge_accumulates(self):
        reserve = InterruptReserve()
        reserve.charge(100)
        reserve.charge(50)
        assert reserve.consumed_ticks == 150

    def test_charge_rejects_negative(self):
        with pytest.raises(ValueError):
            InterruptReserve().charge(-1)

    def test_consumed_fraction(self):
        reserve = InterruptReserve()
        reserve.charge(40)
        assert reserve.consumed_fraction(1000) == pytest.approx(0.04)

    def test_within_reserve(self):
        reserve = InterruptReserve(0.04)
        reserve.charge(30)
        assert reserve.within_reserve(1000)
        reserve.charge(20)
        assert not reserve.within_reserve(1000)

    def test_zero_elapsed_is_zero_fraction(self):
        assert InterruptReserve().consumed_fraction(0) == 0.0
