"""Exclusive functional-unit ledger."""

import pytest

from repro.errors import GrantError
from repro.machine.exclusive import ExclusiveUnitRegistry


@pytest.fixture
def registry():
    return ExclusiveUnitRegistry(("ffu.video_scaler", "data_streamer"))


class TestOwnership:
    def test_unowned_initially(self, registry):
        assert registry.owner("ffu.video_scaler") is None

    def test_assign_and_query(self, registry):
        registry.assign({"ffu.video_scaler": 3})
        assert registry.owner("ffu.video_scaler") == 3

    def test_release_thread(self, registry):
        registry.assign({"ffu.video_scaler": 3, "data_streamer": 3})
        registry.release_thread(3)
        assert registry.owner("ffu.video_scaler") is None
        assert registry.owner("data_streamer") is None

    def test_holdings(self, registry):
        registry.assign({"ffu.video_scaler": 3})
        assert registry.holdings(3) == frozenset({"ffu.video_scaler"})
        assert registry.holdings(4) == frozenset()

    def test_assign_none_releases(self, registry):
        registry.assign({"data_streamer": 5})
        registry.assign({"data_streamer": None})
        assert registry.owner("data_streamer") is None


class TestValidation:
    def test_unknown_unit_on_owner(self, registry):
        with pytest.raises(GrantError):
            registry.owner("bogus")

    def test_unknown_unit_on_assign_is_atomic(self, registry):
        with pytest.raises(GrantError):
            registry.assign({"ffu.video_scaler": 1, "bogus": 2})
        # The valid part must not have been applied.
        assert registry.owner("ffu.video_scaler") is None

    def test_validate_units(self, registry):
        registry.validate_units(frozenset({"data_streamer"}))
        with pytest.raises(GrantError):
            registry.validate_units(frozenset({"gpu"}))
