"""RNG registry: determinism and stream independence."""

from repro.sim.rng import RngRegistry


class TestStreams:
    def test_same_seed_same_sequence(self):
        a = RngRegistry(42).stream("x")
        b = RngRegistry(42).stream("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("x")
        b = RngRegistry(2).stream("x")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_streams_are_independent(self):
        reg1 = RngRegistry(42)
        # Draw from "noise" before "x" in one registry only: "x" must
        # be unaffected.
        reg1.stream("noise").random()
        seq1 = [reg1.stream("x").random() for _ in range(5)]
        reg2 = RngRegistry(42)
        seq2 = [reg2.stream("x").random() for _ in range(5)]
        assert seq1 == seq2

    def test_stream_is_cached(self):
        reg = RngRegistry(0)
        assert reg.stream("a") is reg.stream("a")

    def test_seed_property(self):
        assert RngRegistry(17).seed == 17
