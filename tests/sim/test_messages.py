"""MessageBus: deterministic delivery order, latency, jitter, drops."""

import random

import pytest

from repro.errors import SimulationError
from repro.sim.messages import Envelope, MessageBus
from repro.sim.rng import RngRegistry


def bus(**kwargs) -> MessageBus:
    return MessageBus(RngRegistry(7).stream("bus"), **kwargs)


class TestDelivery:
    def test_zero_latency_delivers_at_send_time(self):
        b = bus()
        b.send("a", "b", "ping", None, now=100)
        assert b.next_time() == 100
        (env,) = b.pop_due(100)
        assert (env.src, env.dst, env.kind, env.sent_at) == ("a", "b", "ping", 100)

    def test_latency_delays_delivery(self):
        b = bus(latency_ticks=50)
        b.send("a", "b", "ping", None, now=100)
        assert b.pop_due(149) == []
        assert len(b) == 1
        assert [e.deliver_at for e in b.pop_due(150)] == [150]

    def test_fifo_between_same_endpoints(self):
        """Equal latency means send order is delivery order (seq tiebreak)."""
        b = bus(latency_ticks=10)
        for i in range(5):
            b.send("a", "b", "m", i, now=0)
        assert [e.payload for e in b.pop_due(10)] == [0, 1, 2, 3, 4]

    def test_pop_due_orders_by_deliver_time_then_seq(self):
        # Heap order is (deliver_at, seq): the earlier *delivery* pops
        # first even when it was sent second.
        b = bus()
        late = b.send("a", "b", "m", "late", now=30)
        early = b.send("a", "b", "m", "early", now=10)
        assert early.seq > late.seq
        assert [e.payload for e in b.pop_due(30)] == ["early", "late"]
        b2 = bus(latency_ticks=20)
        b2.send("a", "b", "m", "x", now=10)  # deliver 30
        b2.send("c", "d", "m", "y", now=5)  # deliver 25
        assert [e.payload for e in b2.pop_due(30)] == ["y", "x"]

    def test_jitter_is_seeded_and_bounded(self):
        deliveries = []
        for _ in range(2):
            b = bus(latency_ticks=100, jitter_ticks=20)
            times = [b.send("a", "b", "m", i, now=0).deliver_at for i in range(50)]
            deliveries.append(times)
        assert deliveries[0] == deliveries[1]  # same seed, same jitter
        assert all(100 <= t <= 120 for t in deliveries[0])
        assert len(set(deliveries[0])) > 1  # jitter actually varies


class TestDrops:
    def test_drop_rate_zero_never_consumes_randomness(self):
        b = MessageBus(random.Random(1), latency_ticks=5)
        state = b._rng.getstate()
        b.send("a", "b", "m", None, now=0)
        assert b._rng.getstate() == state

    def test_drops_are_seeded_and_recorded(self):
        counts = []
        for _ in range(2):
            b = bus(drop_rate=0.3)
            for i in range(200):
                b.send("a", "b", "m", i, now=0)
            counts.append([e.payload for e in b.dropped])
        assert counts[0] == counts[1]
        assert 20 < len(counts[0]) < 120  # ~60 expected
        b_stats = bus(drop_rate=0.3)
        for i in range(50):
            b_stats.send("a", "b", "m", i, now=0)
        assert b_stats.stats.sent == 50
        assert b_stats.stats.dropped == len(b_stats.dropped)
        assert len(b_stats) == b_stats.stats.sent - b_stats.stats.dropped

    def test_dropped_envelope_is_never_delivered(self):
        b = bus(drop_rate=0.5)
        sent = [b.send("a", "b", "m", i, now=0) for i in range(100)]
        delivered = {e.seq for e in b.pop_due(10**9)}
        dropped = {e.seq for e in b.dropped}
        assert delivered | dropped == {e.seq for e in sent}
        assert delivered & dropped == set()


class TestValidation:
    def test_negative_latency_rejected(self):
        with pytest.raises(SimulationError):
            bus(latency_ticks=-1)

    def test_drop_rate_one_rejected(self):
        with pytest.raises(SimulationError):
            bus(drop_rate=1.0)

    def test_negative_send_time_rejected(self):
        with pytest.raises(SimulationError):
            bus().send("a", "b", "m", None, now=-5)

    def test_envelope_ordering_ignores_payload(self):
        a = Envelope(deliver_at=5, seq=1, src="x", dst="y", kind="k", payload="zzz", sent_at=0)
        b = Envelope(deliver_at=5, seq=2, src="a", dst="b", kind="k", payload="aaa", sent_at=0)
        assert a < b
