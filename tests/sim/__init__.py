"""Test package."""
