"""Unit tests for the bounded exponential backoff helper."""

import random

import pytest

from repro.errors import SimulationError
from repro.sim.backoff import BackoffPolicy


class TestBackoffPolicy:
    def test_factor_one_is_the_legacy_fixed_cadence(self):
        policy = BackoffPolicy(base_ticks=1000)
        assert [policy.delay(a) for a in range(1, 6)] == [1000] * 5
        assert policy.fixed

    def test_exponential_growth_per_attempt(self):
        policy = BackoffPolicy(base_ticks=1000, factor=2.0)
        assert [policy.delay(a) for a in range(1, 5)] == [1000, 2000, 4000, 8000]
        assert not policy.fixed

    def test_cap_bounds_the_growth(self):
        policy = BackoffPolicy(base_ticks=1000, factor=2.0, cap_ticks=3000)
        assert [policy.delay(a) for a in range(1, 6)] == [
            1000,
            2000,
            3000,
            3000,
            3000,
        ]

    def test_fractional_factor_floors_to_integer_ticks(self):
        policy = BackoffPolicy(base_ticks=1000, factor=1.5)
        assert policy.delay(2) == 1500
        assert policy.delay(3) == 2250

    def test_jitter_is_deterministic_from_the_seed(self):
        policy = BackoffPolicy(base_ticks=1000, factor=2.0, jitter_ticks=100)
        a = [policy.delay(n, random.Random(7)) for n in range(1, 5)]
        b = [policy.delay(n, random.Random(7)) for n in range(1, 5)]
        assert a == b

    def test_jitter_stays_within_its_bound(self):
        policy = BackoffPolicy(base_ticks=1000, jitter_ticks=50)
        rng = random.Random(3)
        for attempt in range(1, 50):
            delay = policy.delay(attempt, rng)
            assert 1000 <= delay <= 1050

    def test_jitter_without_an_rng_is_an_error(self):
        policy = BackoffPolicy(base_ticks=1000, jitter_ticks=10)
        with pytest.raises(SimulationError):
            policy.delay(1)

    def test_zero_jitter_never_consumes_randomness(self):
        policy = BackoffPolicy(base_ticks=1000, factor=2.0)
        rng = random.Random(11)
        before = rng.getstate()
        policy.delay(3, rng)
        assert rng.getstate() == before

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_ticks": 0},
            {"base_ticks": -5},
            {"base_ticks": 100, "factor": 0.5},
            {"base_ticks": 100, "cap_ticks": 50},
            {"base_ticks": 100, "jitter_ticks": -1},
        ],
    )
    def test_invalid_policies_are_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            BackoffPolicy(**kwargs)

    def test_attempt_is_one_based(self):
        policy = BackoffPolicy(base_ticks=100)
        with pytest.raises(SimulationError):
            policy.delay(0)
