"""Simulated clocks: monotonicity and drift arithmetic."""

import pytest

from repro.errors import ClockError
from repro.sim.clock import DriftingClock, SimClock, TCIClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(100) == 100
        assert clock.now == 100

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(500)
        assert clock.now == 500

    def test_rejects_negative_advance(self):
        with pytest.raises(ClockError):
            SimClock().advance(-1)

    def test_rejects_backwards_advance_to(self):
        clock = SimClock(start=100)
        with pytest.raises(ClockError):
            clock.advance_to(50)

    def test_rejects_negative_start(self):
        with pytest.raises(ClockError):
            SimClock(start=-5)


class TestDriftingClock:
    def test_zero_skew_tracks_master(self):
        clock = DriftingClock("ext")
        assert clock.read(1_000_000) == pytest.approx(1_000_000)

    def test_positive_skew_runs_fast(self):
        clock = DriftingClock("ext", skew_ppm=100.0)
        # +100 ppm over 1e6 ticks -> 100 extra ticks.
        assert clock.read(1_000_000) == pytest.approx(1_000_100)

    def test_negative_skew_runs_slow(self):
        clock = DriftingClock("ext", skew_ppm=-50.0)
        assert clock.read(1_000_000) == pytest.approx(999_950)

    def test_skew_change_keeps_reading_continuous(self):
        clock = DriftingClock("ext", skew_ppm=100.0)
        before = clock.read(1_000_000)
        clock.set_skew_ppm(-100.0, master_now=1_000_000)
        assert clock.read(1_000_000) == pytest.approx(before)
        # From here it drifts the other way.
        later = clock.read(2_000_000)
        assert later == pytest.approx(before + 1_000_000 * (1 - 100e-6))

    def test_rejects_reading_before_anchor(self):
        clock = DriftingClock("ext")
        clock.set_skew_ppm(10.0, master_now=100)
        with pytest.raises(ClockError):
            clock.read(50)

    def test_read_ticks_truncates(self):
        clock = DriftingClock("ext", skew_ppm=1.0)
        assert isinstance(clock.read_ticks(123_456), int)


class TestTCIClock:
    def test_defaults_to_zero_skew(self):
        assert TCIClock().skew_ppm == 0.0

    def test_named_stream_clock(self):
        clock = TCIClock(name="stream2", skew_ppm=30.0)
        assert clock.name == "stream2"
        assert clock.read(1_000_000) > 1_000_000
