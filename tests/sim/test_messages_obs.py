"""MessageBus telemetry: send/receive/drop events and trace pass-through."""

from dataclasses import dataclass

from repro.obs.events import ObsBus
from repro.obs.log import EventCollector
from repro.obs.spans import TraceContext
from repro.sim.messages import MessageBus
from repro.sim.rng import RngRegistry


def observed_bus(**kwargs):
    bus = MessageBus(RngRegistry(7).stream("bus"), **kwargs)
    collector = EventCollector()
    obs = ObsBus()
    obs.subscribe(collector)
    bus.obs = obs
    return bus, collector


class TestBusEvents:
    def test_send_and_receive_fire_exactly_once_per_hop(self):
        bus, collector = observed_bus(latency_ticks=100)
        bus.send("broker", "node00", "admit", {"request_id": "admit:a:1"}, 0)
        assert [e.action for e in collector.events] == ["send"]
        bus.pop_due(100)
        assert [e.action for e in collector.events] == ["send", "receive"]
        send, receive = collector.events
        assert (send.src, send.dst, send.kind) == ("broker", "node00", "admit")
        assert send.request_id == receive.request_id == "admit:a:1"
        assert send.time == 0
        assert receive.time == 100

    def test_drops_are_recorded_alongside_the_stats(self):
        bus, collector = observed_bus(drop_rate=0.5)
        for i in range(50):
            bus.send("broker", "node00", "admit", {"request_id": f"admit:a:{i}"}, i)
        actions = [e.action for e in collector.events]
        assert actions.count("send") == 50
        assert actions.count("drop") == bus.stats.dropped > 0
        # A dropped message is never received.
        bus.pop_due(10_000)
        received = [e for e in collector.events if e.action == "receive"]
        assert len(received) == 50 - bus.stats.dropped
        dropped_ids = {e.payload["request_id"] for e in bus.dropped}
        assert dropped_ids.isdisjoint(e.request_id for e in received)

    def test_request_id_read_from_object_payloads_too(self):
        @dataclass
        class Report:
            request_id: str = "load:n0:1"

        bus, collector = observed_bus()
        bus.send("node00", "broker", "load-report", Report(), 0)
        assert collector.events[0].request_id == "load:n0:1"
        bus.send("node00", "broker", "load-report", object(), 0)
        assert collector.events[1].request_id == ""

    def test_unobserved_bus_emits_nothing(self):
        bus = MessageBus(RngRegistry(7).stream("bus"))
        envelope = bus.send("a", "b", "k", {}, 0)
        assert bus.obs is None
        assert envelope.trace is None


class TestTracePropagation:
    def test_envelope_carries_the_context_verbatim(self):
        bus, collector = observed_bus()
        context = TraceContext("t0042", 9)
        envelope = bus.send("broker", "node00", "admit", {}, 0, trace=context)
        assert envelope.trace is context
        assert collector.events[0].trace_id == "t0042"
        (delivered,) = bus.pop_due(0)
        assert delivered.trace is context
        assert collector.events[1].trace_id == "t0042"
