"""Trace recorder: record validation and query helpers."""

import pytest

from repro.sim.trace import (
    ContextSwitchRecord,
    DeadlineRecord,
    RunSegment,
    SegmentKind,
    SwitchKind,
    TraceRecorder,
)


def seg(tid, start, end, kind=SegmentKind.GRANTED):
    return RunSegment(thread_id=tid, start=start, end=end, kind=kind)


def switch(time, kind, cost):
    return ContextSwitchRecord(
        time=time, from_thread=1, to_thread=2, kind=kind, cost_ticks=cost
    )


def deadline(tid, idx, missed=False, voided=False):
    return DeadlineRecord(
        thread_id=tid,
        period_index=idx,
        period_start=idx * 100,
        deadline=(idx + 1) * 100,
        granted=50,
        delivered=0 if missed else 50,
        missed=missed,
        voided=voided,
    )


class TestSegments:
    def test_zero_length_segments_dropped(self):
        trace = TraceRecorder()
        trace.record_segment(seg(1, 10, 10))
        assert trace.segments == []

    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            TraceRecorder().record_segment(seg(1, 10, 5))

    def test_segments_for_filters_by_thread(self):
        trace = TraceRecorder()
        trace.record_segment(seg(1, 0, 10))
        trace.record_segment(seg(2, 10, 20))
        assert [s.thread_id for s in trace.segments_for(1)] == [1]

    def test_busy_ticks_clips_to_window(self):
        trace = TraceRecorder()
        trace.record_segment(seg(1, 0, 100))
        assert trace.busy_ticks(1, start=50, end=80) == 30

    def test_busy_ticks_sums_multiple_segments(self):
        trace = TraceRecorder()
        trace.record_segment(seg(1, 0, 10))
        trace.record_segment(seg(1, 20, 30))
        assert trace.busy_ticks(1) == 20


class TestSwitches:
    def test_switch_count_by_kind(self):
        trace = TraceRecorder()
        trace.record_switch(switch(1, SwitchKind.VOLUNTARY, 300))
        trace.record_switch(switch(2, SwitchKind.INVOLUNTARY, 900))
        trace.record_switch(switch(3, SwitchKind.INVOLUNTARY, 950))
        assert trace.switch_count() == 3
        assert trace.switch_count(SwitchKind.INVOLUNTARY) == 2

    def test_switch_cost_sums(self):
        trace = TraceRecorder()
        trace.record_switch(switch(1, SwitchKind.VOLUNTARY, 300))
        trace.record_switch(switch(2, SwitchKind.INVOLUNTARY, 900))
        assert trace.switch_cost_ticks() == 1200
        assert trace.switch_cost_ticks(SwitchKind.VOLUNTARY) == 300


class TestDeadlines:
    def test_misses_filters(self):
        trace = TraceRecorder()
        trace.record_deadline(deadline(1, 0))
        trace.record_deadline(deadline(1, 1, missed=True))
        trace.record_deadline(deadline(2, 0, missed=True))
        assert len(trace.misses()) == 2
        assert len(trace.misses(thread_id=1)) == 1

    def test_met_property(self):
        assert deadline(1, 0).met
        assert not deadline(1, 0, missed=True).met

    def test_deadlines_for(self):
        trace = TraceRecorder()
        trace.record_deadline(deadline(1, 0))
        trace.record_deadline(deadline(2, 0))
        assert len(trace.deadlines_for(1)) == 1


class TestNotes:
    def test_notes_accumulate(self):
        trace = TraceRecorder()
        trace.note(5, "phone rings")
        assert trace.notes == [(5, "phone rings")]
