"""Event queue: ordering, cancellation, determinism."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue


def _noop():
    pass


class TestScheduling:
    def test_orders_by_time(self):
        q = EventQueue()
        fired = []
        q.schedule(20, lambda: fired.append("b"))
        q.schedule(10, lambda: fired.append("a"))
        for ev in q.pop_due(30):
            ev.action()
        assert fired == ["a", "b"]

    def test_same_time_fires_fifo(self):
        q = EventQueue()
        fired = []
        for tag in "abc":
            q.schedule(5, lambda t=tag: fired.append(t))
        for ev in q.pop_due(5):
            ev.action()
        assert fired == ["a", "b", "c"]

    def test_rejects_negative_time(self):
        with pytest.raises(SimulationError):
            EventQueue().schedule(-1, _noop)

    def test_pop_due_leaves_future_events(self):
        q = EventQueue()
        q.schedule(10, _noop)
        q.schedule(50, _noop)
        assert len(q.pop_due(10)) == 1
        assert q.next_time() == 50

    def test_pop_due_includes_boundary(self):
        q = EventQueue()
        q.schedule(10, _noop)
        assert len(q.pop_due(10)) == 1


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        q = EventQueue()
        ev = q.schedule(10, _noop)
        q.cancel(ev)
        assert q.pop_due(100) == []

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        ev = q.schedule(10, _noop)
        q.cancel(ev)
        q.cancel(ev)
        assert len(q) == 0

    def test_cancel_one_of_many(self):
        q = EventQueue()
        keep = q.schedule(10, _noop)
        drop = q.schedule(5, _noop)
        q.cancel(drop)
        assert q.next_time() == 10
        assert q.pop_due(100) == [keep]


class TestIntrospection:
    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.schedule(1, _noop)
        assert q
        assert len(q) == 1

    def test_next_time_empty(self):
        assert EventQueue().next_time() is None
