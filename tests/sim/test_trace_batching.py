"""TraceRecorder batching: the open-segment buffer and its flush rules.

``record_run`` holds the most recent run in scalar fields and extends
it in place when the next run continues it (same thread, kind, period,
charge, and contiguous in time), materializing a RunSegment only when a
non-continuing run arrives or a reader forces a flush.  The queries all
go through the flushing ``segments`` property, so batching is invisible
to every consumer — including the obs session, which captures the
*list object* itself at wiring time.
"""

from repro.sim.trace import RunSegment, SegmentKind, TraceRecorder


def record(trace, tid, start, end, kind=SegmentKind.GRANTED, **kwargs):
    trace.record_run(tid, start, end, kind, **kwargs)


class TestCoalescing:
    def test_contiguous_same_thread_runs_merge(self):
        trace = TraceRecorder()
        record(trace, 1, 0, 10)
        record(trace, 1, 10, 25)
        record(trace, 1, 25, 30)
        assert [(s.start, s.end) for s in trace.segments] == [(0, 30)]

    def test_gap_breaks_the_batch(self):
        trace = TraceRecorder()
        record(trace, 1, 0, 10)
        record(trace, 1, 15, 20)
        assert [(s.start, s.end) for s in trace.segments] == [(0, 10), (15, 20)]

    def test_thread_change_breaks_the_batch(self):
        trace = TraceRecorder()
        record(trace, 1, 0, 10)
        record(trace, 2, 10, 20)
        assert [s.thread_id for s in trace.segments] == [1, 2]

    def test_kind_change_breaks_the_batch(self):
        trace = TraceRecorder()
        record(trace, 1, 0, 10, SegmentKind.GRANTED)
        record(trace, 1, 10, 20, SegmentKind.OVERTIME)
        assert [s.kind for s in trace.segments] == [
            SegmentKind.GRANTED,
            SegmentKind.OVERTIME,
        ]

    def test_period_and_charge_participate_in_the_match(self):
        trace = TraceRecorder()
        record(trace, 1, 0, 10, period_index=0)
        record(trace, 1, 10, 20, period_index=1)
        assert len(trace.segments) == 2
        trace = TraceRecorder()
        record(trace, 1, 0, 10, charged_to=5)
        record(trace, 1, 10, 20, charged_to=6)
        assert len(trace.segments) == 2

    def test_coalescing_survives_an_interleaved_read(self):
        """A reader mid-run flushes the open buffer; a continuing run
        arriving afterwards must still merge (de-materialization), so
        observation never changes the recorded trace."""
        trace = TraceRecorder()
        record(trace, 1, 0, 10)
        assert [(s.start, s.end) for s in trace.segments] == [(0, 10)]
        record(trace, 1, 10, 20)
        assert [(s.start, s.end) for s in trace.segments] == [(0, 20)]
        assert len(trace.segments) == 1


class TestFlushSemantics:
    def test_flush_is_idempotent(self):
        trace = TraceRecorder()
        record(trace, 1, 0, 10)
        trace.flush()
        trace.flush()
        assert len(trace.segments) == 1

    def test_segments_property_returns_the_live_list_object(self):
        """The obs session wires ``trace.segments`` by reference once at
        startup; the property must flush into and return that same
        object forever."""
        trace = TraceRecorder()
        captured = trace.segments
        record(trace, 1, 0, 10)
        record(trace, 2, 10, 20)
        assert trace.segments is captured
        assert [(s.thread_id, s.start, s.end) for s in captured] == [
            (1, 0, 10),
            (2, 10, 20),
        ]

    def test_queries_see_the_open_buffer(self):
        trace = TraceRecorder()
        record(trace, 1, 0, 10)
        assert trace.busy_ticks(1) == 10
        assert [s.thread_id for s in trace.segments_for(1)] == [1]


class TestRecordSegmentCompat:
    def test_record_segment_feeds_the_same_batcher(self):
        trace = TraceRecorder()
        trace.record_segment(
            RunSegment(thread_id=1, start=0, end=10, kind=SegmentKind.GRANTED)
        )
        trace.record_segment(
            RunSegment(thread_id=1, start=10, end=20, kind=SegmentKind.GRANTED)
        )
        assert [(s.start, s.end) for s in trace.segments] == [(0, 20)]
