"""SMART baseline: EDF in underload, fair share (and misses) in overload."""

import pytest

from repro import MachineConfig, SimConfig, units
from repro.baselines import SmartSystem
from repro.metrics import miss_rate
from repro.workloads import single_entry_definition


def ms(x):
    return units.ms_to_ticks(x)


def make_system():
    return SmartSystem(machine=MachineConfig.ideal(), sim=SimConfig(seed=7))


class TestUnderload:
    def test_all_constraints_met(self):
        system = make_system()
        threads = [
            system.admit(single_entry_definition(f"t{i}", 10 * (i + 1), 0.25))
            for i in range(3)
        ]
        system.run_for(ms(200))
        assert not system.trace.misses()


class TestOverload:
    def test_fair_share_spreads_misses_across_all_tasks(self):
        system = make_system()
        threads = [
            system.admit(single_entry_definition(f"t{i}", 10, 0.5)) for i in range(3)
        ]
        system.run_for(ms(200))
        # 150 % demand: every task gets ~1/3 of the CPU, which is less
        # than any task's discrete requirement -> everyone misses.
        for t in threads:
            assert miss_rate(system.trace, t.tid) > 0.8

    def test_shares_bias_who_survives_overload(self):
        system = make_system()
        heavy = system.admit(single_entry_definition("heavy", 10, 0.6), share=2.0)
        light = system.admit(single_entry_definition("light", 10, 0.6), share=1.0)
        system.run_for(ms(200))
        heavy_cpu = system.trace.busy_ticks(heavy.tid)
        light_cpu = system.trace.busy_ticks(light.tid)
        # The double share gets up to its full 60 % demand; the single
        # share absorbs the shortfall.
        assert heavy_cpu > light_cpu
        assert miss_rate(system.trace, heavy.tid) < miss_rate(system.trace, light.tid)

    def test_no_admission_control(self):
        system = make_system()
        for i in range(5):
            system.admit(single_entry_definition(f"t{i}", 10, 0.5))
        # 250 % demand accepted without error: best-effort semantics.
        system.run_for(ms(50))
        assert len(list(system.kernel.periodic_threads())) == 5


class TestModeSwitch:
    def test_overload_flag_tracks_demand(self):
        system = make_system()
        system.admit(single_entry_definition("a", 10, 0.5))
        assert not system.policy.overloaded(system.now)
        system.admit(single_entry_definition("b", 10, 0.6))
        assert system.policy.overloaded(system.now)
