"""Rate-Monotonic baseline: fixed priorities and the Liu-Layland bound."""

import pytest

from repro import AdmissionError, MachineConfig, SimConfig, units
from repro.baselines import RateMonotonicSystem, liu_layland_bound
from repro.sim.trace import SegmentKind
from repro.workloads import single_entry_definition


def ms(x):
    return units.ms_to_ticks(x)


def make_system():
    return RateMonotonicSystem(machine=MachineConfig.ideal(), sim=SimConfig(seed=7))


class TestBound:
    def test_known_values(self):
        assert liu_layland_bound(1) == pytest.approx(1.0)
        assert liu_layland_bound(2) == pytest.approx(0.8284, abs=1e-3)
        assert liu_layland_bound(3) == pytest.approx(0.7798, abs=1e-3)

    def test_bound_decreases_toward_ln2(self):
        import math

        assert liu_layland_bound(100) == pytest.approx(math.log(2), abs=0.01)

    def test_zero_tasks(self):
        assert liu_layland_bound(0) == 0.0


class TestScheduling:
    def test_admitted_set_meets_deadlines(self):
        system = make_system()
        system.admit(single_entry_definition("fast", 10, 0.3))
        system.admit(single_entry_definition("slow", 40, 0.4))
        system.run_for(ms(400))
        assert not system.trace.misses()

    def test_shorter_period_always_preempts(self):
        system = make_system()
        slow = system.admit(single_entry_definition("slow", 50, 0.5, greedy=True))
        fast = system.admit(single_entry_definition("fast", 10, 0.2))
        system.run_for(ms(200))
        # The fast task's granted work is never split: it always runs
        # at top priority from its period start.
        for outcome in system.trace.deadlines_for(fast.tid):
            assert outcome.delivered == outcome.granted
        assert not system.trace.misses(fast.tid)

    def test_fixed_priorities_ignore_deadlines(self):
        # The classic RM-vs-EDF case: a long-period task whose deadline
        # is imminent still loses the CPU to a short-period task.
        system = make_system()
        long = system.admit(single_entry_definition("long", 100, 0.4, greedy=True))
        short = system.admit(single_entry_definition("short", 10, 0.3))
        system.run_for(ms(100))
        short_segments = [
            s
            for s in system.trace.segments_for(short.tid)
            if s.kind is SegmentKind.GRANTED
        ]
        # Short ran at the head of each of its periods despite long's
        # single approaching deadline.
        assert len(short_segments) >= 9


class TestAdmission:
    def test_bound_denies_what_edf_accepts(self):
        """Three 30 % tasks: 90 % > LL bound (78 %) -> RM denies the
        third; the Resource Distributor (EDF) runs all three clean."""
        system = make_system()
        system.admit(single_entry_definition("a", 10, 0.3))
        system.admit(single_entry_definition("b", 17, 0.3))
        with pytest.raises(AdmissionError):
            system.admit(single_entry_definition("c", 31, 0.3))

        from repro.core.distributor import ResourceDistributor

        rd = ResourceDistributor(machine=MachineConfig.ideal(), sim=SimConfig(seed=7))
        for name, period in (("a", 10), ("b", 17), ("c", 31)):
            rd.admit(single_entry_definition(name, period, 0.3))
        rd.run_for(ms(400))
        assert not rd.trace.misses()

    def test_single_task_up_to_full_utilization(self):
        system = make_system()
        system.admit(single_entry_definition("solo", 10, 0.95))
        system.run_for(ms(100))
        assert not system.trace.misses()

    def test_harmonic_sets_blocked_by_bound_anyway(self):
        # Harmonic periods are actually schedulable to 100 % under RM,
        # but the utilization-bound test can't see that — the
        # conservatism the RD avoids by using EDF.
        system = make_system()
        system.admit(single_entry_definition("a", 10, 0.45))
        with pytest.raises(AdmissionError):
            system.admit(single_entry_definition("b", 20, 0.45))
