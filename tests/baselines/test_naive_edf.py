"""Naive EDF baseline: optimal in underload, domino misses in overload."""

import pytest

from repro import MachineConfig, SimConfig, units
from repro.baselines import NaiveEdfSystem
from repro.metrics import miss_rate
from repro.workloads import single_entry_definition


def ms(x):
    return units.ms_to_ticks(x)


def make_system():
    return NaiveEdfSystem(machine=MachineConfig.ideal(), sim=SimConfig(seed=7))


class TestUnderload:
    def test_edf_is_optimal_under_100_percent(self):
        system = make_system()
        for i, (period, rate) in enumerate([(10, 0.4), (20, 0.3), (40, 0.25)]):
            system.admit(single_entry_definition(f"t{i}", period, rate))
        system.run_for(ms(400))
        assert not system.trace.misses()

    def test_full_utilization_schedulable(self):
        system = make_system()
        system.admit(single_entry_definition("a", 10, 0.5))
        system.admit(single_entry_definition("b", 20, 0.5))
        system.run_for(ms(200))
        assert not system.trace.misses()


class TestOverload:
    def test_overload_cascades_misses(self):
        system = make_system()
        threads = [
            system.admit(single_entry_definition(f"t{i}", 10, 0.4)) for i in range(3)
        ]
        system.run_for(ms(200))
        # 120 % demand: at least one task misses persistently, and the
        # system as a whole cannot protect anyone by shedding load.
        rates = [miss_rate(system.trace, t.tid) for t in threads]
        assert any(r > 0.5 for r in rates)

    def test_no_admission_control(self):
        system = make_system()
        for i in range(6):
            system.admit(single_entry_definition(f"t{i}", 10, 0.5))
        system.run_for(ms(50))
        assert len(list(system.kernel.periodic_threads())) == 6

    def test_rd_zero_misses_on_same_offered_load(self):
        """Head-to-head on the load shape naive EDF trips over."""
        from repro.core.distributor import ResourceDistributor
        from repro.tasks.busyloop import busyloop_definition

        system = make_system()
        for i in range(3):
            system.admit(single_entry_definition(f"t{i}", 10, 0.4))
        system.run_for(ms(200))
        naive_misses = len(system.trace.misses())

        rd = ResourceDistributor(machine=MachineConfig.ideal(), sim=SimConfig(seed=7))
        for i in range(3):
            rd.admit(busyloop_definition(f"t{i}", steps=9))
        rd.run_for(ms(200))
        assert naive_misses > 0
        assert len(rd.trace.misses()) == 0
