"""Processor Capacity Reserves baseline: enforcement + over-reservation."""

import pytest

from repro import AdmissionError, MachineConfig, SimConfig, units
from repro.baselines import ReservesSystem
from repro.core.distributor import ResourceDistributor
from repro.tasks.busyloop import busyloop_definition
from repro.workloads import single_entry_definition


def ms(x):
    return units.ms_to_ticks(x)


def make_system():
    return ReservesSystem(machine=MachineConfig.ideal(), sim=SimConfig(seed=7))


class TestReservations:
    def test_reserved_tasks_meet_deadlines(self):
        system = make_system()
        threads = [
            system.admit(single_entry_definition(f"t{i}", 10, 0.3)) for i in range(3)
        ]
        system.run_for(ms(100))
        assert not system.trace.misses()
        for t in threads:
            assert len(system.trace.deadlines_for(t.tid)) >= 9

    def test_misbehaving_task_cannot_impinge_on_reserved(self):
        system = make_system()
        hog = system.admit(single_entry_definition("hog", 10, 0.5, greedy=True))
        polite = system.admit(single_entry_definition("polite", 10, 0.4))
        system.run_for(ms(100))
        assert not system.trace.misses(polite.tid)


class TestOverReservation:
    """The RD paper's critique: reservations foster over-reservation."""

    def test_admission_denied_where_rd_degrades(self):
        # Three tasks whose maxima are 50 % but minima are 10 %.
        defs = [busyloop_definition(f"t{i}", steps=9) for i in range(3)]

        reserves = make_system()
        reserves.admit(defs[0], entry_index=4)  # reserve 50 %
        reserves.admit(defs[1], entry_index=4)
        with pytest.raises(AdmissionError):
            reserves.admit(defs[2], entry_index=4)  # 150 % > capacity

        # The Resource Distributor admits all three by shedding load.
        rd = ResourceDistributor(machine=MachineConfig.ideal(), sim=SimConfig(seed=7))
        for d in [busyloop_definition(f"r{i}", steps=9) for i in range(3)]:
            rd.admit(d)
        rd.run_for(ms(50))
        assert not rd.trace.misses()

    def test_reserved_total_visible(self):
        system = make_system()
        system.admit(single_entry_definition("a", 10, 0.5))
        system.admit(single_entry_definition("b", 10, 0.3))
        assert system.reserved_total() == pytest.approx(0.8)

    def test_reserved_but_unused_time_is_wasted_capacity(self):
        # A task reserving 60 % but using 10 % still blocks admission of
        # a 50 % task — the over-reservation waste.
        system = make_system()

        from repro.core.resource_list import ResourceList, ResourceListEntry
        from repro.tasks.base import Compute, DonePeriod, TaskDefinition

        def light_user(ctx):
            yield Compute(ms(1))
            yield DonePeriod()

        over = TaskDefinition(
            name="over",
            resource_list=ResourceList(
                [ResourceListEntry(ms(10), ms(6), light_user, "over")]
            ),
        )
        system.admit(over)
        with pytest.raises(AdmissionError):
            system.admit(single_entry_definition("denied", 10, 0.5))
