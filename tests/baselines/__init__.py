"""Test package."""
