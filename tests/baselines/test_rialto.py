"""Rialto baseline: constraint denial by accident of timing."""

import pytest

from repro import MachineConfig, SimConfig, units
from repro.baselines import RialtoSystem
from repro.workloads import single_entry_definition


def ms(x):
    return units.ms_to_ticks(x)


def make_system(seed=7):
    return RialtoSystem(machine=MachineConfig.ideal(), sim=SimConfig(seed=seed))


class TestUnderload:
    def test_all_constraints_granted(self):
        system = make_system()
        threads = [
            system.admit(single_entry_definition(f"t{i}", 10, 0.3)) for i in range(3)
        ]
        system.run_for(ms(100))
        for t in threads:
            assert system.denials.denial_rate(t.tid) == 0.0
        assert not system.trace.misses()


class TestAccidentOfTiming:
    def test_denial_follows_request_order_not_importance(self):
        system = make_system()
        # "video" asks first each period purely because it was admitted
        # first; "audio" — which the user cares about more — is denied.
        video = system.admit(single_entry_definition("video", 10, 0.6))
        audio = system.admit(single_entry_definition("audio", 10, 0.6))
        system.run_for(ms(200))
        assert system.denials.denial_rate(video.tid) == 0.0
        assert system.denials.denial_rate(audio.tid) > 0.9

    def test_reversing_admission_order_flips_the_victim(self):
        system = make_system()
        audio = system.admit(single_entry_definition("audio", 10, 0.6))
        video = system.admit(single_entry_definition("video", 10, 0.6))
        system.run_for(ms(200))
        assert system.denials.denial_rate(audio.tid) == 0.0
        assert system.denials.denial_rate(video.tid) > 0.9

    def test_denied_periods_do_no_work(self):
        system = make_system()
        system.admit(single_entry_definition("a", 10, 0.6))
        b = system.admit(single_entry_definition("b", 10, 0.6))
        system.run_for(ms(100))
        # b's denied periods consumed no granted CPU.
        assert system.trace.busy_ticks(b.tid) < ms(10)

    def test_granted_constraints_are_honoured(self):
        system = make_system()
        a = system.admit(single_entry_definition("a", 10, 0.6))
        system.admit(single_entry_definition("b", 10, 0.6))
        system.run_for(ms(100))
        assert not system.trace.misses(a.tid)


class TestDenialLog:
    def test_log_counts(self):
        system = make_system()
        a = system.admit(single_entry_definition("a", 10, 0.6))
        b = system.admit(single_entry_definition("b", 10, 0.6))
        system.run_for(ms(50))
        log = system.denials
        assert log.granted.get(a.tid, 0) >= 4
        assert log.denied.get(b.tid, 0) >= 4

    def test_denial_rate_empty_is_zero(self):
        system = make_system()
        assert system.denials.denial_rate(42) == 0.0
