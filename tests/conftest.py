"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import MachineConfig, SimConfig
from repro.core.distributor import ResourceDistributor
from repro.workloads import single_entry_definition


@pytest.fixture
def ideal_rd() -> ResourceDistributor:
    """A Resource Distributor on a frictionless machine (no switch
    costs, no interrupt reserve) — for algorithm-invariant tests."""
    return ResourceDistributor(machine=MachineConfig.ideal(), sim=SimConfig(seed=7))


@pytest.fixture
def real_rd() -> ResourceDistributor:
    """A Resource Distributor with the paper's calibrated machine."""
    return ResourceDistributor(machine=MachineConfig(), sim=SimConfig(seed=7))


def admit_simple(rd: ResourceDistributor, name: str, period_ms: float, rate: float, greedy: bool = False):
    """Admit a one-level task and return its thread."""
    return rd.admit(single_entry_definition(name, period_ms, rate, greedy=greedy))
