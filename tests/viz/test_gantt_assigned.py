"""Gantt rendering of sporadic (assigned) execution."""

import pytest

from repro import SporadicServer, units
from repro.sim.trace import SegmentKind
from repro.tasks.base import Compute
from repro.viz import render_gantt

from tests.conftest import admit_simple


def ms(x):
    return units.ms_to_ticks(x)


class TestAssignedGlyph:
    def test_assigned_time_renders_with_its_own_glyph(self, ideal_rd):
        def job(ctx):
            remaining = ms(3)
            while remaining > 0:
                step = min(units.us_to_ticks(100), remaining)
                yield Compute(step)
                remaining -= step

        server = SporadicServer(ideal_rd, greedy=True, slice_ticks=ms(2))
        task = server.spawn("batch", job)
        admit_simple(ideal_rd, "periodic", period_ms=10, rate=0.3)
        ideal_rd.run_for(ms(200))

        assert any(
            s.kind is SegmentKind.ASSIGNED and s.thread_id == task.tid
            for s in ideal_rd.trace.segments
        )
        out = render_gantt(
            ideal_rd.trace,
            {task.tid: "batch", server.thread.tid: "SS"},
            0,
            ms(200),
            width=80,
            show_axis=False,
        )
        batch_row = next(line for line in out.splitlines() if "batch" in line)
        assert "a" in batch_row.split("|")[1]

    def test_system_overhead_renders_on_calibrated_machine(self, real_rd):
        admit_simple(real_rd, "a", period_ms=10, rate=0.4)
        admit_simple(real_rd, "b", period_ms=10, rate=0.4)
        real_rd.run_for(ms(100))
        out = render_gantt(
            real_rd.trace, {-1: "system"}, 0, ms(100), width=100, show_axis=False
        )
        system_row = out.splitlines()[0]
        assert "x" in system_row.split("|")[1]
