"""QOS staircase rendering."""

import pytest

from repro import units
from repro.sim.trace import GrantChangeRecord, TraceRecorder
from repro.viz import render_qos_staircase


def ms(x):
    return units.ms_to_ticks(x)


@pytest.fixture
def trace():
    t = TraceRecorder()
    t.record_grant_change(GrantChangeRecord(0, 1, ms(10), ms(9), entry_index=0))
    t.record_grant_change(GrantChangeRecord(ms(50), 1, ms(10), ms(4), entry_index=5))
    t.record_grant_change(
        GrantChangeRecord(ms(80), 1, 0, 0, entry_index=-1, reason="removed")
    )
    return t


class TestStaircase:
    def test_levels_render_in_their_windows(self, trace):
        out = render_qos_staircase(trace, 1, levels=9, start=0, end=ms(100), width=50)
        lines = out.splitlines()
        row0 = lines[1].split("|")[1]
        row5 = lines[6].split("|")[1]
        # Level 0 for the first half, level 5 from 50-80 ms.
        assert row0[:24].strip("#") == ""
        assert "#" in row5[25:40]
        assert "#" not in row5[:24]

    def test_removal_renders_as_gap(self, trace):
        out = render_qos_staircase(trace, 1, levels=9, start=0, end=ms(100), width=50)
        row0 = out.splitlines()[1].split("|")[1]
        assert "." in row0[41:]

    def test_window_validation(self, trace):
        with pytest.raises(ValueError):
            render_qos_staircase(trace, 1, levels=9, start=10, end=10)
        with pytest.raises(ValueError):
            render_qos_staircase(trace, 1, levels=0, start=0, end=100)

    def test_end_to_end_with_figure5(self):
        from repro.metrics import allocation_series
        from repro.scenarios import figure5

        scenario = figure5().run_for(ms(150))
        thread2 = scenario.threads["thread2"]
        out = render_qos_staircase(
            scenario.trace,
            thread2.tid,
            levels=9,
            start=0,
            end=ms(150),
            name="thread2",
        )
        # The staircase descends: level 0 early, level 7 (20 %) late.
        lines = out.splitlines()
        assert "#" in lines[1]  # level 0 seen
        assert "#" in lines[8]  # level 7 seen
