"""Test package."""
