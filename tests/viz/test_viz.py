"""Gantt and table rendering."""

import pytest

from repro import units
from repro.sim.trace import RunSegment, SegmentKind, TraceRecorder
from repro.viz import format_table, render_gantt


@pytest.fixture
def trace():
    t = TraceRecorder()
    half = units.ms_to_ticks(5)
    t.record_segment(RunSegment(1, 0, half, SegmentKind.GRANTED, period_index=0))
    t.record_segment(RunSegment(2, half, 2 * half, SegmentKind.OVERTIME, period_index=0))
    return t


class TestGantt:
    def test_rows_for_each_thread(self, trace):
        out = render_gantt(trace, {1: "a", 2: "b"}, 0, units.ms_to_ticks(10), width=20)
        lines = out.splitlines()
        assert "a (1)" in lines[0]
        assert "b (2)" in lines[1]

    def test_glyphs_match_kinds(self, trace):
        out = render_gantt(
            trace, {1: "a", 2: "b"}, 0, units.ms_to_ticks(10), width=20, show_axis=False
        )
        row_a, row_b = out.splitlines()
        assert "#" in row_a and "-" not in row_a
        assert "-" in row_b and "#" not in row_b

    def test_first_half_vs_second_half(self, trace):
        out = render_gantt(
            trace, {1: "a", 2: "b"}, 0, units.ms_to_ticks(10), width=20, show_axis=False
        )
        row_a = out.splitlines()[0].split("|")[1]
        assert row_a[:10].strip("#") == ""
        assert row_a[10:].strip() == ""

    def test_axis_shows_ms(self, trace):
        out = render_gantt(trace, {1: "a"}, 0, units.ms_to_ticks(10), width=20)
        assert "10.0 ms" in out
        assert "legend" in out

    def test_empty_window_rejected(self, trace):
        with pytest.raises(ValueError):
            render_gantt(trace, {1: "a"}, 100, 100)

    def test_threads_outside_names_excluded(self, trace):
        out = render_gantt(
            trace, {1: "a"}, 0, units.ms_to_ticks(10), width=20, show_axis=False
        )
        assert len(out.splitlines()) == 1


class TestTables:
    def test_headers_and_alignment(self):
        out = format_table(["Task", "Rate"], [["MPEG", "33%"], ["Modem", "10%"]])
        lines = out.splitlines()
        assert lines[0].startswith("Task")
        assert lines[2].startswith("MPEG")
        assert lines[3].endswith("10%")

    def test_title(self):
        out = format_table(["A"], [[1]], title="Table 4")
        assert out.splitlines()[0] == "Table 4"

    def test_empty_rows(self):
        out = format_table(["A", "B"], [])
        assert "A" in out
