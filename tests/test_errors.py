"""Error hierarchy: everything is catchable as ReproError."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ResourceListError,
    errors.AdmissionError,
    errors.GrantError,
    errors.PolicyError,
    errors.SchedulerError,
    errors.TaskError,
    errors.ClockError,
    errors.SimulationError,
    errors.SanitizerViolation,
]


class TestHierarchy:
    @pytest.mark.parametrize("exc", ALL_ERRORS)
    def test_subclasses_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)
        assert issubclass(exc, Exception)

    def test_library_raises_only_repro_errors_for_user_mistakes(self, ideal_rd):
        """One catch-all suffices for defensive callers."""
        from repro.workloads import single_entry_definition

        with pytest.raises(errors.ReproError):
            ideal_rd.exit_thread(999)
        ideal_rd.admit(single_entry_definition("a", 10, 0.9))
        with pytest.raises(errors.ReproError):
            ideal_rd.admit(single_entry_definition("b", 10, 0.5))
