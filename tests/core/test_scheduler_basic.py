"""Scheduler basics: EDF order, enforcement, overtime, idle."""

import pytest

from repro import MachineConfig, SimConfig, units
from repro.core.distributor import ResourceDistributor
from repro.sim.trace import SegmentKind
from repro.workloads import single_entry_definition

from tests.conftest import admit_simple


def ms(x):
    return units.ms_to_ticks(x)


class TestEdfOrdering:
    def test_shorter_period_runs_first(self, ideal_rd):
        fast = admit_simple(ideal_rd, "fast", period_ms=10, rate=0.2)
        slow = admit_simple(ideal_rd, "slow", period_ms=40, rate=0.2)
        ideal_rd.run_for(ms(40))
        first = next(s for s in ideal_rd.trace.segments if s.kind is SegmentKind.GRANTED)
        assert first.thread_id == fast.tid
        assert not ideal_rd.trace.misses()

    def test_tie_broken_by_thread_id(self, ideal_rd):
        a = admit_simple(ideal_rd, "a", period_ms=10, rate=0.2)
        b = admit_simple(ideal_rd, "b", period_ms=10, rate=0.2)
        ideal_rd.run_for(ms(10))
        granted = [s for s in ideal_rd.trace.segments if s.kind is SegmentKind.GRANTED]
        assert granted[0].thread_id == a.tid

    def test_earlier_deadline_preempts(self, ideal_rd):
        # A long-period thread is mid-grant when the short-period thread
        # gets a fresh period with an earlier deadline.
        long = admit_simple(ideal_rd, "long", period_ms=100, rate=0.6, greedy=True)
        short = admit_simple(ideal_rd, "short", period_ms=10, rate=0.3)
        ideal_rd.run_for(ms(50))
        # The short thread must run in every one of its periods.
        for outcome in ideal_rd.trace.deadlines_for(short.tid):
            assert outcome.delivered == outcome.granted
        assert not ideal_rd.trace.misses()


class TestEnforcement:
    def test_grant_is_capped_when_others_are_ready(self, ideal_rd):
        greedy = admit_simple(ideal_rd, "greedy", period_ms=10, rate=0.5, greedy=True)
        polite = admit_simple(ideal_rd, "polite", period_ms=10, rate=0.4)
        ideal_rd.run_for(ms(100))
        # Enforcement: the greedy thread cannot starve the polite one.
        assert not ideal_rd.trace.misses(polite.tid)
        granted = ideal_rd.trace.busy_ticks(polite.tid)
        assert granted >= ms(4) * 9  # ~0.4 of every closed period

    def test_unused_capacity_flows_as_overtime(self, ideal_rd):
        greedy = admit_simple(ideal_rd, "greedy", period_ms=10, rate=0.3, greedy=True)
        ideal_rd.run_for(ms(50))
        overtime = sum(
            s.length
            for s in ideal_rd.trace.segments_for(greedy.tid)
            if s.kind is SegmentKind.OVERTIME
        )
        # ~70 % of the machine arrives as overtime: 100 % allocation of
        # available resources to ready tasks (first principle 2).
        assert overtime >= ms(30)

    def test_done_thread_leaves_capacity_to_others(self, ideal_rd):
        # "If a task requests a resource that an earlier task reserved
        # but is not using, the later task will be granted that resource"
        donor = admit_simple(ideal_rd, "donor", period_ms=10, rate=0.5)
        taker = admit_simple(ideal_rd, "taker", period_ms=10, rate=0.4, greedy=True)
        ideal_rd.run_for(ms(50))
        taker_total = ideal_rd.trace.busy_ticks(taker.tid)
        # The taker gets its 40 % plus the idle half of the donor's 50 %.
        assert taker_total >= ms(22)


class TestIdle:
    def test_idle_runs_when_nothing_admitted(self, ideal_rd):
        ideal_rd.run_for(ms(10))
        idle = sum(
            s.length for s in ideal_rd.trace.segments if s.kind is SegmentKind.IDLE
        )
        assert idle == ms(10)

    def test_idle_fills_gaps_when_tasks_decline_overtime(self, ideal_rd):
        admit_simple(ideal_rd, "worker", period_ms=10, rate=0.3)
        ideal_rd.run_for(ms(20))
        idle = sum(
            s.length for s in ideal_rd.trace.segments if s.kind is SegmentKind.IDLE
        )
        assert idle == pytest.approx(ms(14), abs=ms(1))


class TestTimerEconomy:
    """The RD takes exactly the switches the task set requires."""

    def test_same_period_threads_do_not_preempt_each_other(self, ideal_rd):
        a = admit_simple(ideal_rd, "a", period_ms=10, rate=0.4)
        b = admit_simple(ideal_rd, "b", period_ms=10, rate=0.4)
        ideal_rd.run_for(ms(100))
        # a runs to completion, then b: each period has exactly the
        # a->b switch plus the boundary switch back to a.
        for thread in (a, b):
            segments = [
                s
                for s in ideal_rd.trace.segments_for(thread.tid)
                if s.kind is SegmentKind.GRANTED
            ]
            by_period = {}
            for s in segments:
                by_period.setdefault(s.period_index, []).append(s)
            for period_segments in by_period.values():
                assert len(period_segments) == 1  # never split: no preemption

    def test_at_least_two_switches_per_shortest_period(self, real_rd):
        admit_simple(real_rd, "fast", period_ms=5, rate=0.3)
        admit_simple(real_rd, "slow", period_ms=50, rate=0.5, greedy=True)
        real_rd.run_for(ms(500))
        # Paper: "we take (at least) twice as many interrupts as the
        # shortest period in the system" -> >= 2 switches per 5 ms.
        assert real_rd.trace.switch_count() >= 2 * (500 // 5) * 0.9


class TestSmallOverlapOverride:
    def test_tiny_remaining_grant_finishes_without_preemption(self):
        machine = MachineConfig.ideal()
        machine = type(machine)(
            interrupt_reserve=0.0,
            switch_costs=machine.switch_costs,
            overlap_override_ticks=units.us_to_ticks(100),
            admission_cost_ticks=0,
        )
        rd = ResourceDistributor(machine=machine, sim=SimConfig(seed=1))
        # Long-period thread computes 30.05 ms; short-period thread's
        # boundary at 30 ms would preempt with only 50 us left.
        long = rd.admit(single_entry_definition("long", 100, 0.35, greedy=True))
        short = rd.admit(single_entry_definition("short", 30, 0.3))
        rd.run_for(ms(100))
        # With the override, the long thread's grant segments are not
        # split at 30 ms +- tiny overlap; verify it misses nothing.
        assert not rd.trace.misses()


class TestExternalEvents:
    def test_event_fires_at_time(self, ideal_rd):
        fired = []
        ideal_rd.at(ms(5), lambda: fired.append(ideal_rd.now))
        ideal_rd.run_for(ms(10))
        assert fired == [ms(5)]

    def test_past_event_rejected(self, ideal_rd):
        ideal_rd.run_for(ms(10))
        with pytest.raises(Exception):
            ideal_rd.at(ms(5), lambda: None)
