"""Every AdmissionError raise site: message content and no residue.

A denied request must leave the system exactly as it was — no partially
registered thread, no committed capacity, no entry in the grant set.
Each test pins the raise site's message so a refactor that merges or
rewords denials shows up here.
"""

import pytest

from repro import MachineConfig, SimConfig, errors
from repro.core.admission import AdmissionController
from repro.core.distributor import ResourceDistributor
from repro.workloads import single_entry_definition

from tests.conftest import admit_simple


@pytest.fixture
def ac() -> AdmissionController:
    return AdmissionController(capacity=0.9, bandwidth_capacity=0.8)


class TestControllerConstruction:
    @pytest.mark.parametrize("capacity", [0.0, -0.1, 1.5])
    def test_rejects_bad_cpu_capacity(self, capacity):
        with pytest.raises(errors.AdmissionError, match=r"capacity must be in \(0, 1\]"):
            AdmissionController(capacity=capacity)

    @pytest.mark.parametrize("bandwidth", [0.0, -0.5, 2.0])
    def test_rejects_bad_bandwidth_capacity(self, bandwidth):
        with pytest.raises(errors.AdmissionError, match="bandwidth capacity"):
            AdmissionController(capacity=0.9, bandwidth_capacity=bandwidth)


class TestAdmitDenials:
    def test_duplicate_admission(self, ac):
        ac.admit(1, 0.2)
        with pytest.raises(errors.AdmissionError, match="thread 1 is already admitted"):
            ac.admit(1, 0.1)
        assert ac.committed == pytest.approx(0.2)  # first admission intact

    @pytest.mark.parametrize("rate", [0.0, -0.2, 1.01])
    def test_invalid_minimum_rate(self, ac, rate):
        with pytest.raises(errors.AdmissionError, match=r"minimum rate must be in \(0, 1\]"):
            ac.admit(1, rate)
        assert 1 not in ac
        assert ac.committed == 0.0

    @pytest.mark.parametrize("bandwidth", [-0.1, 1.5])
    def test_invalid_minimum_bandwidth(self, ac, bandwidth):
        with pytest.raises(
            errors.AdmissionError, match=r"minimum bandwidth must be in \[0, 1\]"
        ):
            ac.admit(1, 0.2, bandwidth)
        assert 1 not in ac
        assert ac.committed_bandwidth == 0.0

    def test_cpu_over_capacity(self, ac):
        ac.admit(1, 0.6)
        with pytest.raises(errors.AdmissionError, match="over the capacities"):
            ac.admit(2, 0.5)
        assert 2 not in ac
        assert ac.committed == pytest.approx(0.6)
        assert len(ac) == 1

    def test_bandwidth_over_capacity(self, ac):
        ac.admit(1, 0.1, 0.7)
        with pytest.raises(errors.AdmissionError, match="over the capacities"):
            ac.admit(2, 0.1, 0.2)
        assert 2 not in ac
        assert ac.committed_bandwidth == pytest.approx(0.7)


class TestReleaseAndLookups:
    def test_release_unknown(self, ac):
        with pytest.raises(errors.AdmissionError, match="thread 7 is not admitted"):
            ac.release(7)

    def test_min_rate_unknown(self, ac):
        with pytest.raises(errors.AdmissionError, match="thread 7 is not admitted"):
            ac.min_rate(7)

    def test_min_bandwidth_unknown(self, ac):
        with pytest.raises(errors.AdmissionError, match="thread 7 is not admitted"):
            ac.min_bandwidth(7)


class TestChangeMinRate:
    def test_unknown_thread(self, ac):
        with pytest.raises(errors.AdmissionError, match="thread 7 is not admitted"):
            ac.change_min_rate(7, 0.3)

    def test_invalid_new_rate(self, ac):
        ac.admit(1, 0.2)
        with pytest.raises(errors.AdmissionError, match="minimum rate"):
            ac.change_min_rate(1, 0.0)
        assert ac.min_rate(1) == pytest.approx(0.2)

    def test_growth_that_no_longer_fits(self, ac):
        ac.admit(1, 0.2)
        ac.admit(2, 0.6)
        with pytest.raises(errors.AdmissionError, match="would no longer fit"):
            ac.change_min_rate(1, 0.5)
        assert ac.min_rate(1) == pytest.approx(0.2)  # commitment unchanged
        assert ac.committed == pytest.approx(0.8)


class TestResourceManagerDenials:
    """Denials through the full Resource Distributor leave no residue."""

    def test_denied_request_admittance_message_and_state(self):
        rd = ResourceDistributor(machine=MachineConfig.ideal(), sim=SimConfig(seed=9))
        admit_simple(rd, "big", period_ms=10, rate=0.9)
        threads_before = dict(rd.kernel.threads)
        committed_before = rd.resource_manager.admission.committed
        with pytest.raises(errors.AdmissionError, match="cannot admit 'late'") as exc:
            rd.admit(single_entry_definition("late", 10, 0.5))
        # Message names both sides of the failed comparison.
        assert "does not fit beside the committed" in str(exc.value)
        # No residue: no new thread, no new commitment, no grant entry.
        assert rd.kernel.threads == threads_before
        assert rd.resource_manager.admission.committed == pytest.approx(
            committed_before
        )
        grant_set = rd.resource_manager.last_result.grant_set
        admitted = set(rd.resource_manager.admitted_ids())
        assert set(grant_set.thread_ids()) <= admitted
        assert len(admitted) == 1

    def test_denied_admission_does_not_disturb_running_threads(self):
        rd = ResourceDistributor(machine=MachineConfig.ideal(), sim=SimConfig(seed=9))
        survivor = admit_simple(rd, "big", period_ms=10, rate=0.9)
        with pytest.raises(errors.AdmissionError):
            rd.admit(single_entry_definition("late", 10, 0.5))
        from repro import units

        rd.run_for(units.ms_to_ticks(50))
        outcomes = [d for d in rd.trace.deadlines if d.thread_id == survivor.tid]
        assert outcomes and not any(d.missed for d in outcomes)

    def test_lifecycle_calls_on_unknown_thread(self, ideal_rd):
        for call in (
            ideal_rd.exit_thread,
            ideal_rd.enter_quiescent,
            ideal_rd.wake,
            ideal_rd.resource_manager.usage,
            ideal_rd.resource_manager.is_quiescent,
        ):
            with pytest.raises(errors.AdmissionError, match="thread 999 is not admitted"):
                call(999)
        assert ideal_rd.resource_manager.admitted_ids() == ()
