"""Policy Box persistence: export/load round trips."""

import json

import pytest

from repro.core.policy_box import PolicyBox
from repro.errors import PolicyError


def build_box():
    box = PolicyBox(capacity=0.96)
    vid = box.register_task("video")
    aud = box.register_task("audio")
    bg = box.register_task("background")
    box.set_default({vid: 24, aud: 12, bg: 60})
    box.set_default({vid: 30, aud: 12})
    box.set_override({vid: 34, aud: 6, bg: 56})
    return box


class TestRoundTrip:
    def test_export_is_json_safe(self):
        data = build_box().export_policies()
        json.dumps(data)  # must not raise
        assert data["tasks"] == ["video", "audio", "background"]
        assert len(data["defaults"]) == 2
        assert len(data["overrides"]) == 1

    def test_load_reproduces_resolutions(self):
        original = build_box()
        restored = PolicyBox.load_policies(original.export_policies())
        ids_o = {n: original.policy_id(n) for n in ("video", "audio", "background")}
        ids_r = {n: restored.policy_id(n) for n in ("video", "audio", "background")}
        pol_o = original.resolve(set(ids_o.values()))
        pol_r = restored.resolve(set(ids_r.values()))
        shares_o = {n: pol_o.shares[ids_o[n]] for n in ids_o}
        shares_r = {n: pol_r.shares[ids_r[n]] for n in ids_r}
        assert shares_o == shares_r

    def test_overrides_survive_the_round_trip(self):
        restored = PolicyBox.load_policies(build_box().export_policies())
        vid = restored.policy_id("video")
        aud = restored.policy_id("audio")
        bg = restored.policy_id("background")
        policy = restored.resolve({vid, aud, bg})
        # The override (34/6/56), not the default (24/12/60), applies.
        assert policy.shares[aud] == pytest.approx(0.06)

    def test_loaded_box_validates_like_a_fresh_one(self):
        restored = PolicyBox.load_policies(build_box().export_policies())
        with pytest.raises(PolicyError):
            restored.set_default({restored.policy_id("video"): 200})

    def test_empty_export(self):
        box = PolicyBox(capacity=0.9)
        data = box.export_policies()
        restored = PolicyBox.load_policies(data)
        assert restored.known_policies() == []
