"""Data Streamer bandwidth as a second managed resource (§7 extension).

The paper: "we do not specifically manage bandwidth as a resource, but
we will need to do so when the number of applications using the Data
Streamer increases."  These tests cover the extension: admission over
two running sums, grant control honouring both budgets, and the
wake-up guarantee holding in both dimensions.
"""

import pytest

from repro import AdmissionError, MachineConfig, SimConfig, TaskDefinition, units
from repro.core.admission import AdmissionController
from repro.core.distributor import ResourceDistributor
from repro.core.grant_control import GrantController, GrantRequest
from repro.core.policy_box import PolicyBox
from repro.core.resource_list import ResourceList, ResourceListEntry
from repro.errors import ResourceListError
from repro.workloads import grant_follower


def ms(x):
    return units.ms_to_ticks(x)


def bw_list(*levels):
    """levels: (cpu_rate, bandwidth) tuples, best first."""
    period = ms(10)
    return ResourceList(
        [
            ResourceListEntry(
                period,
                max(1, round(period * rate)),
                grant_follower,
                bandwidth=bw,
            )
            for rate, bw in levels
        ]
    )


def definition(name, *levels):
    return TaskDefinition(name=name, resource_list=bw_list(*levels))


class TestEntryValidation:
    def test_bandwidth_must_be_fraction(self):
        with pytest.raises(ResourceListError):
            ResourceListEntry(ms(10), ms(1), grant_follower, bandwidth=1.5)
        with pytest.raises(ResourceListError):
            ResourceListEntry(ms(10), ms(1), grant_follower, bandwidth=-0.1)

    def test_default_is_zero(self):
        assert ResourceListEntry(ms(10), ms(1), grant_follower).bandwidth == 0.0


class TestAdmissionVector:
    def test_bandwidth_denial(self):
        ac = AdmissionController(capacity=0.96, bandwidth_capacity=0.5)
        ac.admit(1, 0.1, 0.4)
        assert not ac.can_admit(0.1, 0.2)
        with pytest.raises(AdmissionError):
            ac.admit(2, 0.1, 0.2)

    def test_cpu_and_bandwidth_tracked_independently(self):
        ac = AdmissionController(capacity=0.96, bandwidth_capacity=1.0)
        ac.admit(1, 0.5, 0.9)
        assert ac.committed == pytest.approx(0.5)
        assert ac.committed_bandwidth == pytest.approx(0.9)
        ac.release(1)
        assert ac.committed_bandwidth == pytest.approx(0.0)

    def test_change_min_checks_bandwidth(self):
        ac = AdmissionController(capacity=0.96, bandwidth_capacity=0.5)
        ac.admit(1, 0.1, 0.3)
        ac.admit(2, 0.1, 0.2)
        with pytest.raises(AdmissionError):
            ac.change_min_rate(1, 0.1, 0.4)
        assert ac.min_bandwidth(1) == pytest.approx(0.3)


class TestGrantControlBudgets:
    @pytest.fixture
    def box(self):
        return PolicyBox(capacity=0.96)

    def test_fast_path_blocked_by_bandwidth(self, box):
        gc = GrantController(0.96, box, bandwidth_capacity=0.5)
        # CPU-wise trivial (20 % total), bandwidth-wise impossible at
        # the maxima (0.8): the policy path must shed to lower levels.
        reqs = [
            GrantRequest(1, box.register_task("a"), bw_list((0.1, 0.4), (0.05, 0.1))),
            GrantRequest(2, box.register_task("b"), bw_list((0.1, 0.4), (0.05, 0.1))),
        ]
        result = gc.compute(reqs)
        gs = result.grant_set
        assert gs.total_bandwidth <= 0.5 + 1e-9
        assert result.passes >= 1

    def test_bandwidth_demotion_frees_the_streamer(self, box):
        gc = GrantController(0.96, box, bandwidth_capacity=0.6)
        reqs = [
            GrantRequest(
                1, box.register_task("a"), bw_list((0.3, 0.5), (0.2, 0.3), (0.1, 0.05))
            ),
            GrantRequest(
                2, box.register_task("b"), bw_list((0.3, 0.5), (0.2, 0.3), (0.1, 0.05))
            ),
        ]
        result = gc.compute(reqs)
        gs = result.grant_set
        assert gs.total_bandwidth <= 0.6 + 1e-9
        assert gs.total_rate <= 0.96 + 1e-9
        # Both threads still hold a grant (admitted => granted).
        assert 1 in gs and 2 in gs

    def test_promotion_respects_bandwidth_slack(self, box):
        gc = GrantController(0.96, box, bandwidth_capacity=0.5)
        # After demotion there is plenty of CPU slack but no bandwidth
        # slack; promotion must not recreate the bandwidth overload.
        reqs = [
            GrantRequest(
                1, box.register_task("a"), bw_list((0.4, 0.5), (0.3, 0.45), (0.05, 0.0))
            ),
            GrantRequest(
                2, box.register_task("b"), bw_list((0.4, 0.5), (0.3, 0.45), (0.05, 0.0))
            ),
        ]
        result = gc.compute(reqs)
        assert result.grant_set.total_bandwidth <= 0.5 + 1e-9


class TestEndToEnd:
    def make_rd(self, bw_capacity=0.6):
        return ResourceDistributor(
            machine=MachineConfig(
                interrupt_reserve=0.0,
                switch_costs=MachineConfig.ideal().switch_costs,
                overlap_override_ticks=0,
                admission_cost_ticks=0,
                bandwidth_capacity=bw_capacity,
            ),
            sim=SimConfig(seed=6),
        )

    def test_bandwidth_admission_denial_end_to_end(self):
        rd = self.make_rd(bw_capacity=0.5)
        rd.admit(definition("dma-hog", (0.1, 0.4)))
        with pytest.raises(AdmissionError):
            rd.admit(definition("dma-hog2", (0.1, 0.2)))

    def test_bandwidth_overload_degrades_instead_of_missing(self):
        rd = self.make_rd(bw_capacity=0.6)
        a = rd.admit(definition("a", (0.3, 0.5), (0.2, 0.3), (0.1, 0.05)))
        b = rd.admit(definition("b", (0.3, 0.5), (0.2, 0.3), (0.1, 0.05)))
        rd.run_for(ms(100))
        assert not rd.trace.misses()
        total_bw = a.grant.entry.bandwidth + b.grant.entry.bandwidth
        assert total_bw <= 0.6 + 1e-9

    def test_quiescent_wake_guaranteed_in_both_dimensions(self):
        rd = self.make_rd(bw_capacity=0.6)
        sleeper_def = TaskDefinition(
            name="sleeper",
            resource_list=bw_list((0.2, 0.3), (0.1, 0.2)),
            start_quiescent=True,
        )
        sleeper = rd.admit(sleeper_def)
        active = rd.admit(definition("active", (0.3, 0.5), (0.2, 0.3), (0.1, 0.05)))
        rd.run_for(ms(30))
        # While the sleeper is quiescent the active task can hold 0.5 bw.
        assert active.grant.entry.bandwidth == pytest.approx(0.5)
        rd.wake(sleeper.tid)
        rd.run_for(ms(50))
        assert sleeper.grant is not None
        total_bw = sleeper.grant.entry.bandwidth + active.grant.entry.bandwidth
        assert total_bw <= 0.6 + 1e-9
        assert not rd.trace.misses()
