"""Kernel corner cases: ops at boundaries, assignments, postponement."""

import pytest

from repro import SporadicServer, TaskDefinition, units
from repro.core.resource_list import ResourceList, ResourceListEntry
from repro.core.threads import ThreadState
from repro.errors import SimulationError
from repro.tasks.base import AssignGrant, Block, Compute, DonePeriod, InsertIdleCycles
from repro.tasks.channels import Channel

from tests.conftest import admit_simple


def ms(x):
    return units.ms_to_ticks(x)


def one_entry(name, fn, period_ms=10, rate=0.4):
    period = ms(period_ms)
    return TaskDefinition(
        name=name,
        resource_list=ResourceList(
            [ResourceListEntry(period, round(period * rate), fn, name)]
        ),
    )


class TestInsertIdleCycles:
    def test_multiple_inserts_accumulate(self, ideal_rd):
        starts = []

        def task(ctx):
            starts.append(ctx.delivery.period_start)
            yield Compute(ms(1))
            yield InsertIdleCycles(ms(1))
            yield InsertIdleCycles(ms(2))
            yield DonePeriod()

        ideal_rd.admit(one_entry("poster", task))
        ideal_rd.run_for(ms(50))
        gaps = {b - a for a, b in zip(starts, starts[1:])}
        # 10 ms period + 3 ms accumulated postponement each period.
        assert gaps == {ms(13)}

    def test_postponed_thread_does_not_run_between_periods(self, ideal_rd):
        def task(ctx):
            yield Compute(ms(2))
            yield InsertIdleCycles(ms(5))
            yield DonePeriod()

        thread = ideal_rd.admit(one_entry("poster", task))
        ideal_rd.run_for(ms(60))
        for a, b in zip(
            ideal_rd.trace.segments_for(thread.tid),
            ideal_rd.trace.segments_for(thread.tid)[1:],
        ):
            assert b.start - a.end >= ms(10) + ms(5) - ms(2) - 1


class TestAssignGrantEdges:
    def test_assign_to_unknown_task_is_ignored(self, ideal_rd):
        def assigner(ctx):
            yield AssignGrant(9999, ms(1))
            yield Compute(ms(1))
            yield DonePeriod()

        thread = ideal_rd.admit(one_entry("assigner", assigner))
        ideal_rd.run_for(ms(30))
        assert not ideal_rd.trace.misses()
        assert thread.assignment_target is None

    def test_assign_to_periodic_thread_is_ignored(self, ideal_rd):
        other = admit_simple(ideal_rd, "other", period_ms=10, rate=0.2)

        def assigner(ctx):
            yield AssignGrant(other.tid, ms(1))
            yield Compute(ms(1))
            yield DonePeriod()

        thread = ideal_rd.admit(one_entry("assigner", assigner))
        ideal_rd.run_for(ms(30))
        assert thread.assignment_target is None

    def test_assignment_survives_period_boundaries(self, ideal_rd):
        """A 30 ms assignment against a 1 ms/10 ms server grant spans
        many periods ('the assignment extends over multiple periods')."""
        progress = []

        def long_job(ctx):
            for _ in range(300):
                yield Compute(units.us_to_ticks(100))
                progress.append(ctx.now)

        server = SporadicServer(
            ideal_rd,
            period=ms(10),
            cpu_ticks=ms(1),
            slice_ticks=ms(30),
            greedy=False,
        )
        job = server.spawn("long", long_job)
        admit_simple(ideal_rd, "load", period_ms=10, rate=0.8, greedy=True)
        ideal_rd.run_for(ms(400))
        assert job.state is ThreadState.EXITED
        spread = progress[-1] - progress[0]
        assert spread > ms(100)  # work spread across many server periods


class TestBlockingCorners:
    def test_block_with_pending_post_does_not_block(self, ideal_rd):
        channel = Channel("pre")
        channel.post()
        ran = []

        def task(ctx):
            yield Block(channel)
            ran.append(ctx.now)
            yield Compute(ms(1))
            yield DonePeriod()

        thread = ideal_rd.admit(one_entry("taker", task))
        ideal_rd.run_for(ms(15))
        assert ran  # the pre-posted item was consumed without blocking
        # Period 0 produced no Block record; the fresh period-1 call
        # blocks (callback semantics, empty channel).
        period0_blocks = [
            b for b in ideal_rd.trace.blocks if b.blocked and b.time < ms(10)
        ]
        assert period0_blocks == []

    def test_two_threads_blocked_on_one_channel_wake_in_turn(self, ideal_rd):
        channel = Channel("shared")
        woken = []

        def make(name):
            def task(ctx):
                yield Block(channel)
                woken.append(name)
                yield Compute(ms(1))

            return one_entry(name, task, rate=0.2)

        ideal_rd.admit(make("a"))
        ideal_rd.admit(make("b"))
        ideal_rd.at(ms(15), channel.post)
        ideal_rd.at(ms(25), channel.post)
        ideal_rd.run_for(ms(60))
        assert sorted(woken) == ["a", "b"]


class TestEventApi:
    def test_past_event_rejected(self, ideal_rd):
        ideal_rd.run_for(ms(10))
        with pytest.raises(SimulationError):
            ideal_rd.kernel.at(ms(5), lambda: None)

    def test_run_until_requires_policy(self):
        from repro import MachineConfig, SimConfig
        from repro.core.kernel import Kernel

        kernel = Kernel(MachineConfig.ideal(), SimConfig(seed=0))
        with pytest.raises(SimulationError):
            kernel.run_until(1000)

    def test_double_policy_bind_rejected(self, ideal_rd):
        with pytest.raises(SimulationError):
            ideal_rd.kernel.bind_policy(object())


class TestZeroWorkPeriods:
    def test_instant_done_task_is_fine(self, ideal_rd):
        """A task that declares done immediately consumes nothing but
        still closes periods without being counted as missing."""

        def lazy(ctx):
            yield DonePeriod()

        thread = ideal_rd.admit(one_entry("lazy", lazy))
        ideal_rd.run_for(ms(50))
        outcomes = ideal_rd.trace.deadlines_for(thread.tid)
        assert len(outcomes) == 5
        assert not any(o.missed for o in outcomes)
