"""Quiescent tasks (section 5.3): admitted but consuming nothing."""

import pytest

from repro import AdmissionError, units
from repro.core.threads import ThreadState
from repro.tasks.busyloop import busyloop_definition
from repro.tasks.cooldown import CooldownTask
from repro.tasks.modem import Modem

from tests.conftest import admit_simple


def ms(x):
    return units.ms_to_ticks(x)


class TestAdmissionAccounting:
    def test_quiescent_minimum_counts_for_admission(self, ideal_rd):
        modem = Modem()
        ideal_rd.admit(modem.definition(start_quiescent=True))  # min 10 %
        # 91 % would fit alone but not beside the quiescent 10 %.
        with pytest.raises(AdmissionError):
            admit_simple(ideal_rd, "hog", period_ms=10, rate=0.91)

    def test_quiescent_thread_gets_no_grant(self, ideal_rd):
        modem = Modem()
        t = ideal_rd.admit(modem.definition(start_quiescent=True))
        ideal_rd.run_for(ms(20))
        assert t.state is ThreadState.QUIESCENT
        assert t.grant is None
        assert ideal_rd.trace.busy_ticks(t.tid) == 0

    def test_other_threads_use_quiescent_capacity(self, ideal_rd):
        modem = Modem()
        ideal_rd.admit(modem.definition(start_quiescent=True))
        greedy = ideal_rd.admit(busyloop_definition("dvd"))
        ideal_rd.run_for(ms(30))
        # While the modem sleeps, the DVD gets its maximum (90 %).
        assert greedy.grant.rate == pytest.approx(0.9)


class TestWake:
    def test_wake_is_guaranteed_to_succeed(self):
        # Zero switch costs for determinism, but the paper's 4 % reserve
        # so the 90 % DVD + 10 % modem no longer fit together.
        from repro import ContextSwitchCosts, MachineConfig, SimConfig
        from repro.core.distributor import ResourceDistributor

        rd = ResourceDistributor(
            machine=MachineConfig(switch_costs=ContextSwitchCosts.zero()),
            sim=SimConfig(seed=3),
        )
        modem = Modem()
        quiet = rd.admit(modem.definition(start_quiescent=True))
        dvd = rd.admit(busyloop_definition("dvd"))
        rd.run_for(ms(30))
        rd.wake(quiet.tid)
        rd.run_for(ms(40))
        assert quiet.state is ThreadState.ACTIVE
        assert quiet.grant is not None
        # The DVD shed load to make room; nobody missed a deadline.
        assert dvd.grant.rate < 0.9
        assert not rd.trace.misses()

    def test_wake_mid_run_answers_promptly(self, ideal_rd):
        modem = Modem()
        quiet = ideal_rd.admit(modem.definition(start_quiescent=True))
        ideal_rd.admit(busyloop_definition("dvd"))
        ideal_rd.at(ms(50), lambda: ideal_rd.wake(quiet.tid))
        ideal_rd.run_for(ms(100))
        first_run = min(
            (s.start for s in ideal_rd.trace.segments_for(quiet.tid)), default=None
        )
        assert first_run is not None
        # Prompt: within a couple of modem periods of the phone ringing.
        assert first_run - ms(50) <= 2 * 270_000

    def test_wake_idempotent(self, ideal_rd):
        modem = Modem()
        t = ideal_rd.admit(modem.definition(start_quiescent=False))
        ideal_rd.wake(t.tid)  # already awake: no-op
        ideal_rd.run_for(ms(10))
        assert t.state is ThreadState.ACTIVE


class TestEnterQuiescent:
    def test_running_thread_can_go_quiescent(self, ideal_rd):
        modem = Modem()
        t = ideal_rd.admit(modem.definition(start_quiescent=False))
        ideal_rd.run_for(ms(15))
        ideal_rd.enter_quiescent(t.tid)
        ideal_rd.run_for(ms(15))
        assert t.state is ThreadState.QUIESCENT
        assert t.grant is None
        assert ideal_rd.resource_manager.is_quiescent(t.tid)

    def test_quiescence_toggle_round_trip(self, ideal_rd):
        modem = Modem()
        t = ideal_rd.admit(modem.definition(start_quiescent=False))
        ideal_rd.run_for(ms(15))
        ideal_rd.enter_quiescent(t.tid)
        ideal_rd.run_for(ms(15))
        ideal_rd.wake(t.tid)
        ideal_rd.run_for(ms(15))
        assert t.state is ThreadState.ACTIVE
        assert not ideal_rd.trace.misses()


class TestCooldownScenario:
    def test_overheat_runs_cooldown_without_terminating_anyone(self, ideal_rd):
        cooldown = CooldownTask()
        cool = ideal_rd.admit(cooldown.definition())
        dvd = ideal_rd.admit(busyloop_definition("dvd"))
        ideal_rd.at(ms(40), lambda: ideal_rd.wake(cool.tid), "overheat!")
        ideal_rd.run_for(ms(100))
        assert cooldown.stats.noop_ticks > 0
        assert dvd.state is ThreadState.ACTIVE
        assert not ideal_rd.trace.misses()
