"""Admission control: the O(1) running-sum test."""

import pytest

from repro.core.admission import AdmissionController
from repro.errors import AdmissionError


@pytest.fixture
def ac():
    return AdmissionController(capacity=0.96)


class TestAdmission:
    def test_admits_within_capacity(self, ac):
        ac.admit(1, 0.5)
        ac.admit(2, 0.4)
        assert ac.committed == pytest.approx(0.9)

    def test_denies_over_capacity(self, ac):
        ac.admit(1, 0.9)
        assert not ac.can_admit(0.1)
        with pytest.raises(AdmissionError):
            ac.admit(2, 0.1)

    def test_admits_exactly_to_capacity(self, ac):
        ac.admit(1, 0.96)
        assert ac.headroom == pytest.approx(0.0)

    def test_rejects_double_admit(self, ac):
        ac.admit(1, 0.1)
        with pytest.raises(AdmissionError):
            ac.admit(1, 0.1)

    def test_rejects_bad_rate(self, ac):
        with pytest.raises(AdmissionError):
            ac.admit(1, 0.0)
        with pytest.raises(AdmissionError):
            ac.admit(2, 1.5)

    def test_denial_leaves_state_unchanged(self, ac):
        ac.admit(1, 0.9)
        before = ac.committed
        with pytest.raises(AdmissionError):
            ac.admit(2, 0.2)
        assert ac.committed == before
        assert 2 not in ac


class TestRelease:
    def test_release_frees_capacity(self, ac):
        ac.admit(1, 0.9)
        ac.release(1)
        assert ac.can_admit(0.9)

    def test_release_unknown_raises(self, ac):
        with pytest.raises(AdmissionError):
            ac.release(42)

    def test_admit_release_cycle_does_not_drift(self, ac):
        # Repeated float adds/subtracts must not leak capacity.
        for _ in range(10_000):
            ac.admit(1, 0.7)
            ac.release(1)
        assert ac.committed == pytest.approx(0.0, abs=1e-6)
        ac.admit(1, 0.96)  # still fits


class TestChangeMinRate:
    def test_shrink_always_allowed(self, ac):
        ac.admit(1, 0.5)
        ac.change_min_rate(1, 0.1)
        assert ac.min_rate(1) == 0.1
        assert ac.can_admit(0.8)

    def test_grow_checked(self, ac):
        ac.admit(1, 0.5)
        ac.admit(2, 0.4)
        with pytest.raises(AdmissionError):
            ac.change_min_rate(1, 0.6)
        # Failed change leaves the old commitment.
        assert ac.min_rate(1) == 0.5

    def test_change_unknown_raises(self, ac):
        with pytest.raises(AdmissionError):
            ac.change_min_rate(9, 0.1)


class TestQueries:
    def test_len_and_contains(self, ac):
        ac.admit(1, 0.1)
        assert len(ac) == 1
        assert 1 in ac

    def test_min_rate_unknown(self, ac):
        with pytest.raises(AdmissionError):
            ac.min_rate(5)

    def test_capacity_validation(self):
        with pytest.raises(AdmissionError):
            AdmissionController(0.0)
        with pytest.raises(AdmissionError):
            AdmissionController(1.5)
