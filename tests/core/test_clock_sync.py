"""Clock synchronization (section 5.4): skew estimation and
InsertIdleCycles pacing."""

import pytest

from repro import TaskDefinition, units
from repro.core.clock_sync import (
    SkewEstimator,
    conservative_period,
    postpone_for_period,
    ticks_per_external_period,
)
from repro.core.resource_list import ResourceList, ResourceListEntry
from repro.errors import ClockError
from repro.sim.clock import DriftingClock
from repro.tasks.base import Compute, DonePeriod, InsertIdleCycles


def ms(x):
    return units.ms_to_ticks(x)


class TestSkewEstimator:
    def test_estimates_known_skew(self):
        clock = DriftingClock("ext", skew_ppm=120.0)
        est = SkewEstimator(clock)
        est.sample(0)
        est.sample(27_000_000)  # one second later
        assert est.estimate_ppm() == pytest.approx(120.0, abs=0.01)

    def test_estimates_negative_skew(self):
        clock = DriftingClock("ext", skew_ppm=-80.0)
        est = SkewEstimator(clock)
        est.sample(1_000)
        est.sample(54_000_000)
        assert est.estimate_ppm() == pytest.approx(-80.0, abs=0.01)

    def test_needs_two_spanning_samples(self):
        est = SkewEstimator(DriftingClock("ext"))
        assert not est.ready
        est.sample(5)
        est.sample(5)
        assert not est.ready
        with pytest.raises(ClockError):
            est.estimate_ppm()

    def test_rejects_out_of_order_samples(self):
        est = SkewEstimator(DriftingClock("ext"))
        est.sample(100)
        with pytest.raises(ClockError):
            est.sample(50)

    def test_window_is_bounded(self):
        est = SkewEstimator(DriftingClock("ext"), max_samples=4)
        for i in range(10):
            est.sample(i * 1000)
        assert len(est.samples) == 4

    def test_tracks_skew_changes(self):
        clock = DriftingClock("ext", skew_ppm=50.0)
        est = SkewEstimator(clock, max_samples=2)
        est.sample(0)
        est.sample(27_000_000)
        clock.set_skew_ppm(-50.0, master_now=27_000_000)
        est.sample(27_000_000)
        est.sample(54_000_000)
        assert est.estimate_ppm() == pytest.approx(-50.0, abs=0.01)


class TestPeriodArithmetic:
    def test_zero_skew_is_identity(self):
        assert ticks_per_external_period(900_000, 0.0) == pytest.approx(900_000)

    def test_slow_external_clock_stretches_period(self):
        # External clock 100 ppm slow: its "900,000 ticks" take longer
        # in TCI ticks.
        assert ticks_per_external_period(900_000, -100.0) > 900_000

    def test_postpone_for_slow_clock(self):
        post = postpone_for_period(900_000, 900_000, skew_ppm=-100.0)
        assert post == pytest.approx(90, abs=1)  # 900_000 * 100e-6

    def test_no_postpone_for_fast_clock_at_nominal_period(self):
        assert postpone_for_period(900_000, 900_000, skew_ppm=100.0) == 0

    def test_conservative_period_shorter_than_nominal(self):
        period = conservative_period(900_000, max_skew_ppm=200.0)
        assert period < 900_000
        # With the conservative period, even the fastest skew needs a
        # non-negative postponement.
        for skew in (-200.0, 0.0, 200.0):
            assert postpone_for_period(period, 900_000, skew) >= 0

    def test_conservative_rejects_negative_magnitude(self):
        with pytest.raises(ClockError):
            conservative_period(900_000, -5.0)

    def test_stopped_clock_rejected(self):
        with pytest.raises(ClockError):
            ticks_per_external_period(900_000, -1e6)


class TestInsertIdleCyclesEndToEnd:
    def test_postponed_periods_track_slow_external_clock(self, ideal_rd):
        """A task paced by a 1000 ppm-slow external clock postpones each
        period start so its phase error stays bounded."""
        external = DriftingClock("stream2", skew_ppm=-1000.0)
        period = ms(10)
        starts = []

        def synced(ctx):
            starts.append(ctx.delivery.period_start)
            yield Compute(ms(1))
            # Estimate the drift (here: exact) and stretch the period.
            post = postpone_for_period(period, period, skew_ppm=-1000.0)
            yield InsertIdleCycles(post)
            yield DonePeriod()

        ideal_rd.admit(
            TaskDefinition(
                name="synced",
                resource_list=ResourceList(
                    [ResourceListEntry(period, ms(2), synced, "synced")]
                ),
            )
        )
        ideal_rd.run_for(ms(500))
        assert len(starts) >= 40
        # Phase error vs. the external clock's frame times stays within
        # one postponement quantum.
        for k, start in enumerate(starts):
            ideal_frame = k * ticks_per_external_period(period, -1000.0)
            assert abs(start - ideal_frame) <= 2 * 270 + 1  # 2 quanta

    def test_unsynced_task_accumulates_phase_error(self, ideal_rd):
        period = ms(10)
        starts = []

        def unsynced(ctx):
            starts.append(ctx.delivery.period_start)
            yield Compute(ms(1))
            yield DonePeriod()

        ideal_rd.admit(
            TaskDefinition(
                name="unsynced",
                resource_list=ResourceList(
                    [ResourceListEntry(period, ms(2), unsynced, "u")]
                ),
            )
        )
        ideal_rd.run_for(ms(500))
        last = len(starts) - 1
        ideal_frame = last * ticks_per_external_period(period, -1000.0)
        # Without InsertIdleCycles the drift has accumulated to many
        # postponement quanta by the end of the run.
        assert abs(starts[last] - ideal_frame) > 10 * 270

    def test_negative_insert_idle_rejected(self):
        from repro.errors import TaskError

        with pytest.raises(TaskError):
            InsertIdleCycles(-1)
