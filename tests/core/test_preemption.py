"""Controlled preemption and grace periods (section 5.6)."""

import pytest

from repro import ContextSwitchCosts, MachineConfig, SimConfig, TaskDefinition, units
from repro.core.distributor import ResourceDistributor
from repro.core.resource_list import ResourceList, ResourceListEntry
from repro.sim.trace import SwitchKind
from repro.tasks.base import Compute, PreemptionConfig
from repro.workloads import single_entry_definition


def ms(x):
    return units.ms_to_ticks(x)


def us(x):
    return units.us_to_ticks(x)


def greedy(ctx):
    while True:
        yield Compute(us(50))


def make_rd(grace_us=200):
    machine = MachineConfig(
        interrupt_reserve=0.0,
        switch_costs=ContextSwitchCosts.zero(),
        overlap_override_ticks=0,
        grace_period_ticks=us(grace_us),
        admission_cost_ticks=0,
    )
    return ResourceDistributor(machine=machine, sim=SimConfig(seed=5))


def controlled_definition(name, check_interval_us, exception_log=None):
    return TaskDefinition(
        name=name,
        resource_list=ResourceList(
            [ResourceListEntry(ms(30), ms(12), greedy, name)]
        ),
        preemption=PreemptionConfig(check_interval=us(check_interval_us)),
        exception_callback=(exception_log.append if exception_log is not None else None),
    )


class TestGraceYield:
    def test_cooperative_task_switches_voluntarily(self):
        rd = make_rd(grace_us=200)
        rd.admit(controlled_definition("nice", check_interval_us=100))
        rd.admit(single_entry_definition("short", period_ms=10, rate=0.3))
        rd.run_for(ms(120))
        # The controlled task notices the grace notification and yields:
        # its forced preemptions become voluntary switches.
        voluntary = rd.trace.switch_count(SwitchKind.VOLUNTARY)
        involuntary = rd.trace.switch_count(SwitchKind.INVOLUNTARY)
        assert voluntary > 0
        assert involuntary == 0

    def test_without_registration_preemptions_are_involuntary(self):
        rd = make_rd()
        rd.admit(
            TaskDefinition(
                name="rude",
                resource_list=ResourceList(
                    [ResourceListEntry(ms(30), ms(12), greedy, "rude")]
                ),
            )
        )
        rd.admit(single_entry_definition("short", period_ms=10, rate=0.3))
        rd.run_for(ms(120))
        assert rd.trace.switch_count(SwitchKind.INVOLUNTARY) > 0

    def test_grace_overrun_charged_to_the_task(self):
        rd = make_rd(grace_us=200)
        t = rd.admit(controlled_definition("nice", check_interval_us=150))
        rd.admit(single_entry_definition("short", period_ms=10, rate=0.3))
        rd.run_for(ms(60))
        # Grace usage is charged: total used time still never exceeds
        # the grant by more than one grace per preemption.
        for outcome in rd.trace.deadlines_for(t.tid):
            assert outcome.delivered <= outcome.granted


class TestGraceMiss:
    def test_slow_checker_is_involuntarily_preempted_with_exception(self):
        exceptions = []
        rd = make_rd(grace_us=100)
        t = rd.admit(
            controlled_definition("slow", check_interval_us=5_000, exception_log=exceptions)
        )
        rd.admit(single_entry_definition("short", period_ms=10, rate=0.3))
        rd.run_for(ms(120))
        assert rd.trace.switch_count(SwitchKind.INVOLUNTARY) > 0
        assert exceptions, "exception callback must fire after a missed grace"
        assert t.missed_grace_count > 0

    def test_missed_grace_flag_visible_to_task(self):
        rd = make_rd(grace_us=100)
        seen = []

        def watcher(ctx):
            seen.append(ctx.missed_grace)
            while True:
                yield Compute(us(50))

        rd.admit(
            TaskDefinition(
                name="watcher",
                resource_list=ResourceList(
                    [ResourceListEntry(ms(30), ms(12), watcher, "w")]
                ),
                preemption=PreemptionConfig(check_interval=us(5_000)),
            )
        )
        rd.admit(single_entry_definition("short", period_ms=10, rate=0.3))
        rd.run_for(ms(120))
        assert True in seen or len(seen) >= 2  # flag observed on a later call


class TestGraceEconomy:
    def test_grace_postpones_other_task_only_briefly(self):
        rd = make_rd(grace_us=200)
        rd.admit(controlled_definition("nice", check_interval_us=100))
        short = rd.admit(single_entry_definition("short", period_ms=10, rate=0.3))
        rd.run_for(ms(120))
        # The short-period task still never misses: grace is far smaller
        # than its slack.
        assert not rd.trace.misses(short.tid)

    def test_polling_flag_is_exposed(self):
        rd = make_rd()
        polls = []

        def poller(ctx):
            while True:
                polls.append(ctx.preemption_pending())
                yield Compute(us(50))

        rd.admit(
            TaskDefinition(
                name="poller",
                resource_list=ResourceList(
                    [ResourceListEntry(ms(30), ms(12), poller, "p")]
                ),
                preemption=PreemptionConfig(check_interval=us(100)),
            )
        )
        rd.admit(single_entry_definition("short", period_ms=10, rate=0.3))
        rd.run_for(ms(60))
        assert True in polls  # the notification location was set
