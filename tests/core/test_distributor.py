"""Resource Manager + Distributor: admission, exit, grant activation."""

import pytest

from repro import AdmissionError, ResourceListError, units
from repro.core.threads import ThreadState
from repro.sim.trace import SegmentKind
from repro.tasks.base import TaskDefinition
from repro.core.resource_list import ResourceList, ResourceListEntry
from repro.tasks.busyloop import busyloop_definition
from repro.workloads import grant_follower, single_entry_definition

from tests.conftest import admit_simple


def ms(x):
    return units.ms_to_ticks(x)


class TestAdmission:
    def test_admit_denies_when_minima_do_not_fit(self, ideal_rd):
        admit_simple(ideal_rd, "big", period_ms=10, rate=0.8)
        with pytest.raises(AdmissionError):
            admit_simple(ideal_rd, "too-much", period_ms=10, rate=0.3)

    def test_denial_leaves_system_intact(self, ideal_rd):
        t = admit_simple(ideal_rd, "big", period_ms=10, rate=0.8)
        try:
            admit_simple(ideal_rd, "too-much", period_ms=10, rate=0.3)
        except AdmissionError:
            pass
        ideal_rd.run_for(ms(30))
        assert not ideal_rd.trace.misses()
        assert t.state is ThreadState.ACTIVE

    def test_admission_considers_minimum_not_maximum(self, ideal_rd):
        # Maxima are 90 % each but minima are 10 %: all five admit.
        threads = [ideal_rd.admit(busyloop_definition(f"t{i}")) for i in range(5)]
        assert len(threads) == 5

    def test_minimum_entry_with_exclusive_units_rejected(self, ideal_rd):
        entry = ResourceListEntry(
            ms(10), ms(1), grant_follower, exclusive=frozenset({"data_streamer"})
        )
        with pytest.raises(ResourceListError):
            ideal_rd.admit(TaskDefinition(name="bad", resource_list=ResourceList([entry])))

    def test_unknown_exclusive_unit_rejected(self, ideal_rd):
        entries = [
            ResourceListEntry(
                ms(10), ms(2), grant_follower, exclusive=frozenset({"quantum-fpu"})
            ),
            ResourceListEntry(ms(10), ms(1), grant_follower),
        ]
        with pytest.raises(Exception):
            ideal_rd.admit(TaskDefinition(name="bad", resource_list=ResourceList(entries)))


class TestActivation:
    def test_new_grant_starts_in_unallocated_time(self, ideal_rd):
        # A thread admitted mid-run must not disturb the running thread's
        # current period: its first period starts in unallocated time.
        first = admit_simple(ideal_rd, "first", period_ms=10, rate=0.6)
        added = {}
        ideal_rd.at(ms(12), lambda: added.update(t=admit_simple(ideal_rd, "second", 10, 0.3)))
        ideal_rd.run_for(ms(40))
        second = added["t"]
        assert not ideal_rd.trace.misses()
        # The second thread's first period began strictly after the
        # admission request, once the first thread's grant was satisfied.
        first_grant = next(
            g for g in ideal_rd.trace.grant_changes if g.thread_id == second.tid
        )
        assert first_grant.time >= ms(12)

    def test_activation_counted(self, ideal_rd):
        admit_simple(ideal_rd, "a", period_ms=10, rate=0.3)
        ideal_rd.run_for(ms(5))
        assert ideal_rd.scheduler.activation_count >= 1


class TestExit:
    def test_exit_releases_capacity(self, ideal_rd):
        t = admit_simple(ideal_rd, "a", period_ms=10, rate=0.9)
        ideal_rd.run_for(ms(15))
        ideal_rd.exit_thread(t.tid)
        ideal_rd.run_for(ms(15))
        assert t.state is ThreadState.EXITED
        # Capacity is free again.
        admit_simple(ideal_rd, "b", period_ms=10, rate=0.9)

    def test_exit_takes_effect_at_period_boundary(self, ideal_rd):
        t = admit_simple(ideal_rd, "a", period_ms=10, rate=0.5)
        ideal_rd.run_for(ms(2))  # mid period 0
        ideal_rd.exit_thread(t.tid)
        ideal_rd.run_for(ms(20))
        # Period 0 still closed normally (grant honoured to the end).
        outcomes = ideal_rd.trace.deadlines_for(t.tid)
        assert outcomes and outcomes[0].delivered == outcomes[0].granted
        assert t.state is ThreadState.EXITED

    def test_exit_unknown_thread_raises(self, ideal_rd):
        with pytest.raises(AdmissionError):
            ideal_rd.exit_thread(99)

    def test_remaining_threads_reclaim_capacity(self, ideal_rd):
        stay = ideal_rd.admit(busyloop_definition("stay"))
        leave = ideal_rd.admit(busyloop_definition("leave"))
        ideal_rd.run_for(ms(30))
        degraded_rate = stay.grant.rate
        ideal_rd.exit_thread(leave.tid)
        ideal_rd.run_for(ms(30))
        assert stay.grant.rate > degraded_rate  # promoted back toward max


class TestChangeResourceList:
    def test_change_requires_fitting_minimum(self, ideal_rd):
        admit_simple(ideal_rd, "other", period_ms=10, rate=0.5)
        t = admit_simple(ideal_rd, "me", period_ms=10, rate=0.4)
        bigger = single_entry_definition("me", period_ms=10, rate=0.6)
        with pytest.raises(AdmissionError):
            ideal_rd.resource_manager.change_resource_list(t.tid, bigger)

    def test_change_applies_new_grants(self, ideal_rd):
        t = admit_simple(ideal_rd, "me", period_ms=10, rate=0.4)
        ideal_rd.run_for(ms(15))
        smaller = single_entry_definition("me", period_ms=10, rate=0.2)
        ideal_rd.resource_manager.change_resource_list(t.tid, smaller)
        ideal_rd.run_for(ms(25))
        assert t.grant.rate == pytest.approx(0.2)
        assert not ideal_rd.trace.misses()


class TestGrantSetView:
    def test_current_grant_set_exposed(self, ideal_rd):
        t = admit_simple(ideal_rd, "a", period_ms=10, rate=0.3)
        gs = ideal_rd.current_grant_set
        assert gs is not None
        assert gs[t.tid].rate == pytest.approx(0.3)

    def test_thread_lookup(self, ideal_rd):
        t = admit_simple(ideal_rd, "a", period_ms=10, rate=0.3)
        assert ideal_rd.thread(t.tid) is t
