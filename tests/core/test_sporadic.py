"""Sporadic Server (section 5.1): grant assignment, round robin, liveness."""

import pytest

from repro import SporadicServer, units
from repro.core.threads import ThreadState
from repro.sim.trace import SegmentKind
from repro.tasks.base import Block, Compute
from repro.tasks.channels import Channel

from tests.conftest import admit_simple


def ms(x):
    return units.ms_to_ticks(x)


def finite_job(total_ms):
    def job(ctx):
        chunk = units.us_to_ticks(100)
        remaining = ms(total_ms)
        while remaining > 0:
            step = min(chunk, remaining)
            yield Compute(step)
            remaining -= step

    return job


class TestAssignment:
    def test_sporadic_work_is_charged_to_the_server(self, ideal_rd):
        server = SporadicServer(ideal_rd, greedy=False)
        task = server.spawn("batch", finite_job(2))
        ideal_rd.run_for(ms(500))
        assigned = [
            s
            for s in ideal_rd.trace.segments
            if s.thread_id == task.tid and s.kind is SegmentKind.ASSIGNED
        ]
        assert assigned
        assert all(s.charged_to == server.thread.tid for s in assigned)

    def test_sporadic_task_completes_and_exits(self, ideal_rd):
        server = SporadicServer(ideal_rd, greedy=False)
        task = server.spawn("batch", finite_job(2))
        ideal_rd.run_for(ms(500))
        assert task.state is ThreadState.EXITED
        assert server.queue_length() == 0

    def test_sporadic_progress_is_bounded_by_server_grant(self, ideal_rd):
        # Server: 1 ms guaranteed per 100 ms, plus whatever overtime it
        # wins on EDF ties (once per coinciding boundary).  A 5 ms job
        # therefore cannot finish inside the first 100 ms, but completes
        # well within 800 ms.
        server = SporadicServer(ideal_rd, greedy=False)
        admit_simple(ideal_rd, "load", period_ms=10, rate=0.9, greedy=True)
        task = server.spawn("batch", finite_job(5))
        ideal_rd.run_for(ms(100))
        assert task.state is ThreadState.ACTIVE  # not done yet
        assert ideal_rd.trace.busy_ticks(task.tid) <= ms(2)
        ideal_rd.run_for(ms(700))
        assert task.state is ThreadState.EXITED

    def test_no_guarantees_but_liveness(self, ideal_rd):
        """A conventional task keeps making progress even with a 90 %
        periodic load (guaranteed liveness for non-real-time tasks)."""
        server = SporadicServer(ideal_rd, greedy=False)
        admit_simple(ideal_rd, "mm", period_ms=10, rate=0.9, greedy=True)
        task = server.spawn("shell", finite_job(3))
        ideal_rd.run_for(ms(800))
        assert task.state is ThreadState.EXITED


class TestRoundRobin:
    def test_multiple_sporadics_share_the_server(self, ideal_rd):
        server = SporadicServer(
            ideal_rd, slice_ticks=ms(1), greedy=False
        )
        a = server.spawn("a", finite_job(2))
        b = server.spawn("b", finite_job(2))
        ideal_rd.run_for(ms(900))
        # Both ran; neither was starved by the other.
        assert a.state is ThreadState.EXITED
        assert b.state is ThreadState.EXITED
        progress_a = ideal_rd.trace.busy_ticks(a.tid)
        progress_b = ideal_rd.trace.busy_ticks(b.tid)
        assert progress_a == pytest.approx(ms(2), abs=ms(0.2))
        assert progress_b == pytest.approx(ms(2), abs=ms(0.2))


class TestBlockingSporadic:
    def test_blocked_sporadic_returns_cpu_to_server(self, ideal_rd):
        channel = Channel("io")

        def io_task(ctx):
            yield Compute(ms(1))
            yield Block(channel)
            yield Compute(ms(1))

        server = SporadicServer(ideal_rd, greedy=False)
        task = server.spawn("io", io_task)
        other = server.spawn("other", finite_job(1))
        ideal_rd.at(ms(700), channel.post)
        ideal_rd.run_for(ms(1000))
        # The blocked task did not wedge the server: "other" finished
        # long before the wake, and "io" finished after it.
        assert other.state is ThreadState.EXITED
        assert task.state is ThreadState.EXITED


class TestGreedyServer:
    def test_greedy_server_soaks_unallocated_time(self, ideal_rd):
        server = SporadicServer(ideal_rd, greedy=True)
        admit_simple(ideal_rd, "light", period_ms=10, rate=0.2)
        ideal_rd.run_for(ms(100))
        server_time = ideal_rd.trace.busy_ticks(server.thread.tid)
        # ~80 % of the machine is unallocated; the greedy server gets it.
        assert server_time >= ms(60)

    def test_server_runs_at_least_every_period_of_shortest_task(self, ideal_rd):
        server = SporadicServer(ideal_rd, greedy=True)
        admit_simple(ideal_rd, "t", period_ms=10, rate=0.5)
        ideal_rd.run_for(ms(200))
        segs = ideal_rd.trace.segments_for(server.thread.tid)
        gaps = [b.start - a.end for a, b in zip(segs, segs[1:])]
        assert max(gaps) <= ms(10)
