"""Sporadic Server (section 5.1): grant assignment, round robin, liveness."""

import pytest

from repro import SporadicServer, units
from repro.core.threads import ThreadState
from repro.sim.trace import SegmentKind
from repro.tasks.base import Block, Compute
from repro.tasks.channels import Channel

from tests.conftest import admit_simple


def ms(x):
    return units.ms_to_ticks(x)


def finite_job(total_ms):
    def job(ctx):
        chunk = units.us_to_ticks(100)
        remaining = ms(total_ms)
        while remaining > 0:
            step = min(chunk, remaining)
            yield Compute(step)
            remaining -= step

    return job


class TestAssignment:
    def test_sporadic_work_is_charged_to_the_server(self, ideal_rd):
        server = SporadicServer(ideal_rd, greedy=False)
        task = server.spawn("batch", finite_job(2))
        ideal_rd.run_for(ms(500))
        assigned = [
            s
            for s in ideal_rd.trace.segments
            if s.thread_id == task.tid and s.kind is SegmentKind.ASSIGNED
        ]
        assert assigned
        assert all(s.charged_to == server.thread.tid for s in assigned)

    def test_sporadic_task_completes_and_exits(self, ideal_rd):
        server = SporadicServer(ideal_rd, greedy=False)
        task = server.spawn("batch", finite_job(2))
        ideal_rd.run_for(ms(500))
        assert task.state is ThreadState.EXITED
        assert server.queue_length() == 0

    def test_sporadic_progress_is_bounded_by_server_grant(self, ideal_rd):
        # Server: 1 ms guaranteed per 100 ms, plus whatever overtime it
        # wins on EDF ties (once per coinciding boundary).  A 5 ms job
        # therefore cannot finish inside the first 100 ms, but completes
        # well within 800 ms.
        server = SporadicServer(ideal_rd, greedy=False)
        admit_simple(ideal_rd, "load", period_ms=10, rate=0.9, greedy=True)
        task = server.spawn("batch", finite_job(5))
        ideal_rd.run_for(ms(100))
        assert task.state is ThreadState.ACTIVE  # not done yet
        assert ideal_rd.trace.busy_ticks(task.tid) <= ms(2)
        ideal_rd.run_for(ms(700))
        assert task.state is ThreadState.EXITED

    def test_no_guarantees_but_liveness(self, ideal_rd):
        """A conventional task keeps making progress even with a 90 %
        periodic load (guaranteed liveness for non-real-time tasks)."""
        server = SporadicServer(ideal_rd, greedy=False)
        admit_simple(ideal_rd, "mm", period_ms=10, rate=0.9, greedy=True)
        task = server.spawn("shell", finite_job(3))
        ideal_rd.run_for(ms(800))
        assert task.state is ThreadState.EXITED


class TestRoundRobin:
    def test_multiple_sporadics_share_the_server(self, ideal_rd):
        server = SporadicServer(
            ideal_rd, slice_ticks=ms(1), greedy=False
        )
        a = server.spawn("a", finite_job(2))
        b = server.spawn("b", finite_job(2))
        ideal_rd.run_for(ms(900))
        # Both ran; neither was starved by the other.
        assert a.state is ThreadState.EXITED
        assert b.state is ThreadState.EXITED
        progress_a = ideal_rd.trace.busy_ticks(a.tid)
        progress_b = ideal_rd.trace.busy_ticks(b.tid)
        assert progress_a == pytest.approx(ms(2), abs=ms(0.2))
        assert progress_b == pytest.approx(ms(2), abs=ms(0.2))


class TestBlockingSporadic:
    def test_blocked_sporadic_returns_cpu_to_server(self, ideal_rd):
        channel = Channel("io")

        def io_task(ctx):
            yield Compute(ms(1))
            yield Block(channel)
            yield Compute(ms(1))

        server = SporadicServer(ideal_rd, greedy=False)
        task = server.spawn("io", io_task)
        other = server.spawn("other", finite_job(1))
        ideal_rd.at(ms(700), channel.post)
        ideal_rd.run_for(ms(1000))
        # The blocked task did not wedge the server: "other" finished
        # long before the wake, and "io" finished after it.
        assert other.state is ThreadState.EXITED
        assert task.state is ThreadState.EXITED


class TestReplenishment:
    def test_budget_replenishes_every_server_period(self, ideal_rd):
        """With the machine saturated by a greedy real-time task, the
        server gets exactly its 1 ms budget per 100 ms period: service
        stops when the budget exhausts and resumes at replenishment."""
        server = SporadicServer(ideal_rd, greedy=False)
        admit_simple(ideal_rd, "load", period_ms=10, rate=0.9, greedy=True)
        task = server.spawn("batch", finite_job(10))
        progress = []
        for _ in range(4):
            ideal_rd.run_for(ms(100))
            progress.append(ideal_rd.trace.busy_ticks(task.tid))
        # Each period window delivered some service (replenishment
        # happened) but never much more than the 1 ms budget (exhaustion
        # actually stopped the server mid-period).
        deltas = [b - a for a, b in zip([0] + progress, progress)]
        assert all(delta >= ms(0.5) for delta in deltas)
        assert all(delta <= ms(2) for delta in deltas)

    def test_service_pauses_between_exhaustion_and_replenishment(self, ideal_rd):
        """Once the budget is gone, no assigned segment appears until the
        next server period opens."""
        server = SporadicServer(ideal_rd, greedy=False)
        admit_simple(ideal_rd, "load", period_ms=10, rate=0.9, greedy=True)
        task = server.spawn("batch", finite_job(10))
        ideal_rd.run_for(ms(400))
        assigned = [
            s
            for s in ideal_rd.trace.segments
            if s.thread_id == task.tid and s.kind is SegmentKind.ASSIGNED
        ]
        assert assigned
        gaps = [b.start - a.end for a, b in zip(assigned, assigned[1:])]
        # At least one exhaustion gap spanning most of the 100 ms period
        # (the server serves around each boundary it wins, then starves
        # until its budget replenishes at the next one).
        assert max(gaps) >= ms(80)


class TestFullGrantSet:
    def test_assignment_still_works_when_admission_is_full(self, ideal_rd):
        """A grant set using every schedulable cycle leaves the server
        exactly its admitted minimum — sporadic liveness survives."""
        server = SporadicServer(ideal_rd, greedy=False)
        admit_simple(ideal_rd, "a", period_ms=10, rate=0.50, greedy=True)
        admit_simple(ideal_rd, "b", period_ms=10, rate=0.49, greedy=True)
        # The machine is now exactly full: server 1% + 50% + 49%.
        with pytest.raises(Exception):
            admit_simple(ideal_rd, "c", period_ms=10, rate=0.01)
        task = server.spawn("batch", finite_job(3))
        ideal_rd.run_for(ms(400))
        progress = ideal_rd.trace.busy_ticks(task.tid)
        # ~1 ms per 100 ms period, no overtime available anywhere.
        assert ms(2) <= progress <= ms(5)
        assigned = [
            s
            for s in ideal_rd.trace.segments
            if s.thread_id == task.tid and s.kind is SegmentKind.ASSIGNED
        ]
        assert all(s.charged_to == server.thread.tid for s in assigned)


class TestQuiescentInteraction:
    def test_greedy_server_soaks_time_released_by_quiescent_task(self, ideal_rd):
        """A task going quiescent releases its grant; the greedy server
        absorbs the freed time, and loses it again on wake (§5.3 + §5.1)."""
        server = SporadicServer(ideal_rd, greedy=True)
        heavy = admit_simple(ideal_rd, "heavy", period_ms=10, rate=0.8, greedy=True)
        batch = server.spawn("batch", finite_job(1000))
        ideal_rd.at(ms(200), lambda: ideal_rd.enter_quiescent(heavy.tid))
        ideal_rd.at(ms(400), lambda: ideal_rd.wake(heavy.tid))
        ideal_rd.run_for(ms(600))
        # The server's soaked time shows up as ASSIGNED segments under
        # the sporadic task (charged to the server) plus the server's
        # own poll slices — count both.
        segs = ideal_rd.trace.segments_for(server.thread.tid) + [
            s
            for s in ideal_rd.trace.segments_for(batch.tid)
            if s.charged_to == server.thread.tid
        ]

        def busy(lo, hi):
            return sum(
                min(s.end, hi) - max(s.start, lo)
                for s in segs
                if s.end > lo and s.start < hi
            )

        active_before = busy(ms(100), ms(200))
        quiescent_window = busy(ms(250), ms(350))
        active_after = busy(ms(450), ms(550))
        # While the heavy task is quiescent the server owns almost the
        # whole machine; before and after, at most the ~20% leftover.
        assert quiescent_window >= ms(80)
        assert active_before <= ms(35)
        assert active_after <= ms(35)

    def test_wake_after_quiescence_is_never_denied(self, ideal_rd):
        server = SporadicServer(ideal_rd, greedy=True)
        heavy = admit_simple(ideal_rd, "heavy", period_ms=10, rate=0.8, greedy=True)
        ideal_rd.at(ms(100), lambda: ideal_rd.enter_quiescent(heavy.tid))
        ideal_rd.at(ms(200), lambda: ideal_rd.wake(heavy.tid))
        ideal_rd.run_for(ms(400))
        # The quiescent task's minimum stayed committed: it is granted
        # again after the wake and misses nothing.
        assert heavy.state is ThreadState.ACTIVE
        assert ideal_rd.trace.misses(heavy.tid) == []
        assert server.thread.state is ThreadState.ACTIVE


class TestGreedyServer:
    def test_greedy_server_soaks_unallocated_time(self, ideal_rd):
        server = SporadicServer(ideal_rd, greedy=True)
        admit_simple(ideal_rd, "light", period_ms=10, rate=0.2)
        ideal_rd.run_for(ms(100))
        server_time = ideal_rd.trace.busy_ticks(server.thread.tid)
        # ~80 % of the machine is unallocated; the greedy server gets it.
        assert server_time >= ms(60)

    def test_server_runs_at_least_every_period_of_shortest_task(self, ideal_rd):
        server = SporadicServer(ideal_rd, greedy=True)
        admit_simple(ideal_rd, "t", period_ms=10, rate=0.5)
        ideal_rd.run_for(ms(200))
        segs = ideal_rd.trace.segments_for(server.thread.tid)
        gaps = [b.start - a.end for a, b in zip(segs, segs[1:])]
        assert max(gaps) <= ms(10)
