"""Direct unit tests of the RD scheduler's timer rules (section 4.2).

"The Scheduler sets a timer interrupt for the next context switch.
This occurs at the earlier of: (1) the end of the grant for this thread
for this period, or (2) the beginning of a new period for another
thread whose next-period end precedes the period end for the thread
about to run."
"""

import pytest

from repro import MachineConfig, SimConfig, units
from repro.core.distributor import ResourceDistributor
from repro.workloads import single_entry_definition


def ms(x):
    return units.ms_to_ticks(x)


def build(*specs, overlap_us=0.0):
    """specs: (name, period_ms, rate).  Returns (rd, threads...)"""
    machine = MachineConfig(
        interrupt_reserve=0.0,
        switch_costs=MachineConfig.ideal().switch_costs,
        overlap_override_ticks=units.us_to_ticks(overlap_us),
        admission_cost_ticks=0,
    )
    rd = ResourceDistributor(machine=machine, sim=SimConfig(seed=0))
    threads = [
        rd.admit(single_entry_definition(name, period, rate, greedy=True))
        for name, period, rate in specs
    ]
    rd.run_for(1)  # activate first grants at t=0..1
    return rd, threads


class TestGrantEndRule:
    def test_sole_thread_timer_is_grant_end(self):
        rd, (t,) = build(("solo", 10, 0.4))
        timer = rd.scheduler.timer_for(t, rd.now)
        # Grant end: now + remaining.
        assert timer == rd.now + t.remaining

    def test_timer_capped_by_own_deadline(self):
        rd, (t,) = build(("solo", 10, 0.4))
        # Artificially inflate remaining beyond the deadline.
        t.remaining = ms(50)
        assert rd.scheduler.timer_for(t, rd.now) == t.deadline


class TestBoundaryRule:
    def test_earlier_deadline_boundary_preempts(self):
        rd, (long, short) = build(("long", 50, 0.5), ("short", 10, 0.3))
        # While the long thread runs, the short thread's next period
        # start (its current deadline) must bound the timer: the short
        # thread's next-period end (20 ms) precedes long's deadline.
        timer = rd.scheduler.timer_for(long, rd.now)
        assert timer <= short.deadline

    def test_later_deadline_boundary_does_not_preempt(self):
        # Reverse: the long thread's boundary never preempts the short
        # one (long's next-period end is far past short's deadline).
        rd, (long, short) = build(("long", 50, 0.2), ("short", 10, 0.3))
        timer = rd.scheduler.timer_for(short, rd.now)
        assert timer == rd.now + short.remaining

    def test_equal_periods_do_not_preempt(self):
        rd, (a, b) = build(("a", 10, 0.4), ("b", 10, 0.4))
        timer = rd.scheduler.timer_for(a, rd.now)
        # b's boundary coincides with a's deadline: strict "precedes"
        # means no preemption point before a's own limits.
        assert timer == rd.now + a.remaining


class TestOverlapOverride:
    def test_small_overlap_extends_to_grant_end(self):
        # Long grant ends 100 us past short's boundary: with a 200 us
        # override the timer skips the boundary.
        rd, (long, short) = build(
            ("long", 30, 7.1 / 30), ("short", 10, 0.3), overlap_us=200.0
        )
        # Simulate the moment: long has run 7 ms by t=10 ms boundary.
        rd.run_until(ms(3))  # short ran 0-3
        timer = rd.scheduler.timer_for(long, rd.now)
        assert timer == rd.now + long.remaining  # grant end at 10.1 ms

    def test_zero_threshold_preempts_at_boundary(self):
        rd, (long, short) = build(
            ("long", 30, 7.1 / 30), ("short", 10, 0.3), overlap_us=0.0
        )
        rd.run_until(ms(3))
        timer = rd.scheduler.timer_for(long, rd.now)
        assert timer == short.deadline  # the 10 ms boundary


class TestUnallocatedTimer:
    def test_idle_timer_is_next_fresh_allocation(self):
        rd, (t,) = build(("solo", 10, 0.4))
        idle = rd.kernel.idle
        timer = rd.scheduler.timer_for(idle, rd.now)
        assert timer == t.deadline

    def test_idle_timer_infinite_with_no_threads(self):
        rd = ResourceDistributor(machine=MachineConfig.ideal(), sim=SimConfig(seed=0))
        timer = rd.scheduler.timer_for(rd.kernel.idle, 0)
        assert timer == units.INFINITE

    def test_overtime_runner_preempted_by_any_boundary(self):
        rd, (greedy, other) = build(("greedy", 10, 0.3), ("other", 40, 0.2))
        # Run until greedy is in overtime (its grant exhausted).
        rd.run_until(ms(6))
        assert not greedy.eligible_time_remaining(rd.now)
        timer = rd.scheduler.timer_for(greedy, rd.now)
        # Bounded by its own next period start (10 ms).
        assert timer <= greedy.deadline
