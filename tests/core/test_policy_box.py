"""Policy Box: Table 5 rankings, overrides, and invented policies."""

import pytest

from repro.core.policy_box import PolicyBox
from repro.errors import PolicyError


@pytest.fixture
def box():
    return PolicyBox(capacity=0.96)


def register_four(box):
    return [box.register_task(f"Task{i}") for i in range(1, 5)]


class TestRegistration:
    def test_ids_are_stable(self, box):
        a = box.register_task("MPEG")
        b = box.register_task("MPEG")
        assert a == b

    def test_name_round_trip(self, box):
        pid = box.register_task("AC3")
        assert box.task_name(pid) == "AC3"
        assert box.policy_id("AC3") == pid

    def test_unknown_lookups_raise(self, box):
        with pytest.raises(PolicyError):
            box.task_name(99)
        with pytest.raises(PolicyError):
            box.policy_id("nope")


class TestTable5:
    """The example Policy Box of Table 5."""

    @pytest.fixture
    def table5(self, box):
        t1, t2, t3, t4 = register_four(box)
        box.set_default({t1: 10, t2: 85})
        box.set_default({t1: 20, t3: 75})
        box.set_default({t1: 10, t4: 85})
        box.set_default({t1: 10, t2: 50, t3: 35})
        box.set_default({t1: 10, t2: 35, t4: 50})
        box.set_default({t1: 10, t3: 35, t4: 50})
        box.set_default({t1: 5, t2: 35, t3: 20, t4: 35})
        return box, (t1, t2, t3, t4)

    def test_exact_match_lookup(self, table5):
        box, (t1, t2, t3, t4) = table5
        policy = box.resolve({t1, t2})
        assert policy.shares[t1] == pytest.approx(0.10)
        assert policy.shares[t2] == pytest.approx(0.85)
        assert not policy.invented

    def test_four_way_policy(self, table5):
        box, ids = table5
        policy = box.resolve(set(ids))
        assert policy.shares[ids[0]] == pytest.approx(0.05)
        assert sum(policy.shares.values()) == pytest.approx(0.95)

    def test_order_of_set_does_not_matter(self, table5):
        box, (t1, t2, t3, t4) = table5
        assert box.resolve({t2, t1}).shares == box.resolve({t1, t2}).shares

    def test_seven_known_policies(self, table5):
        box, _ = table5
        assert len(box.known_policies()) == 7

    def test_describe_renders_rows(self, table5):
        box, _ = table5
        text = box.describe()
        assert "Task1" in text
        assert "85" in text


class TestInvention:
    def test_unknown_set_invents_equal_shares(self, box):
        ids = register_four(box)
        policy = box.resolve({ids[0], ids[1], ids[2]})
        assert policy.invented
        for pid in ids[:3]:
            assert policy.shares[pid] == pytest.approx(0.96 / 3)

    def test_invented_policy_names_exclusive_preference(self, box):
        ids = register_four(box)
        policy = box.resolve(set(ids))
        assert policy.exclusive_preference == min(ids)

    def test_invention_counted(self, box):
        ids = register_four(box)
        box.resolve({ids[0]})
        assert box.invention_count == 1
        assert box.lookup_count == 1

    def test_empty_set_raises(self, box):
        with pytest.raises(PolicyError):
            box.resolve(set())

    def test_unregistered_ids_raise(self, box):
        with pytest.raises(PolicyError):
            box.resolve({42})


class TestOverrides:
    def test_override_wins_over_default(self, box):
        t1 = box.register_task("video")
        t2 = box.register_task("audio")
        # Default: degrade video before audio.
        box.set_default({t1: 30, t2: 60})
        # Loud environment: the user reverses the preference.
        box.set_override({t1: 60, t2: 30})
        policy = box.resolve({t1, t2})
        assert policy.shares[t1] > policy.shares[t2]

    def test_clear_override_restores_default(self, box):
        t1 = box.register_task("video")
        t2 = box.register_task("audio")
        box.set_default({t1: 30, t2: 60})
        box.set_override({t1: 60, t2: 30})
        box.clear_override({t1, t2})
        policy = box.resolve({t1, t2})
        assert policy.shares[t2] > policy.shares[t1]


class TestValidation:
    def test_rankings_must_fit_capacity(self, box):
        t1 = box.register_task("a")
        t2 = box.register_task("b")
        with pytest.raises(PolicyError):
            box.set_default({t1: 60, t2: 40})  # 100 % > 96 %

    def test_rankings_must_be_positive(self, box):
        t1 = box.register_task("a")
        with pytest.raises(PolicyError):
            box.set_default({t1: 0})

    def test_rankings_must_reference_registered_tasks(self, box):
        with pytest.raises(PolicyError):
            box.set_default({77: 10})

    def test_empty_policy_rejected(self, box):
        with pytest.raises(PolicyError):
            box.set_default({})

    def test_capacity_validation(self):
        with pytest.raises(PolicyError):
            PolicyBox(capacity=0.0)
