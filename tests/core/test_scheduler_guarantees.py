"""The five scheduling guarantees of section 4.2.

1. The task will receive a grant from its resource list.
2. The grant will be delivered in each period.
3. Unless the task has the smallest CPU requirement, it may be
   preempted each period.
4. The grant will not change mid-period.
5. The task will not be involuntarily terminated.

Plus: guarantees are void for blocked periods and resume in the first
full unblocked period, and the worst-case latency bound
(2*period - 2*cpu) holds.
"""

import pytest

from repro import units
from repro.core.threads import ThreadState
from repro.sim.trace import SegmentKind
from repro.tasks.base import Block, Compute, TaskDefinition
from repro.tasks.channels import Channel
from repro.core.resource_list import ResourceList, ResourceListEntry
from repro.workloads import single_entry_definition

from tests.conftest import admit_simple


def ms(x):
    return units.ms_to_ticks(x)


class TestGrantFromResourceList:
    def test_grant_is_always_a_listed_entry(self, ideal_rd):
        defs = [
            single_entry_definition(f"t{i}", period_ms=10, rate=0.2) for i in range(4)
        ]
        threads = [ideal_rd.admit(d) for d in defs]
        ideal_rd.run_for(ms(20))
        for thread, definition in zip(threads, defs):
            assert thread.grant is not None
            assert thread.grant.entry in definition.resource_list.entries


class TestDeliveryEveryPeriod:
    def test_full_delivery_every_period_underload(self, ideal_rd):
        threads = [
            admit_simple(ideal_rd, f"t{i}", period_ms=10 * (i + 1), rate=0.2)
            for i in range(4)
        ]
        ideal_rd.run_for(ms(200))
        for thread in threads:
            outcomes = ideal_rd.trace.deadlines_for(thread.tid)
            assert outcomes, "thread must have closed periods"
            for outcome in outcomes:
                assert outcome.delivered == outcome.granted

    def test_full_delivery_even_when_system_oversubscribed(self, ideal_rd):
        # Maxima sum to 240 %: heavy overload.  Admitted tasks still
        # get their (degraded) grant in every period.
        from repro.tasks.busyloop import busyloop_definition

        threads = [ideal_rd.admit(busyloop_definition(f"t{i}")) for i in range(4)]
        ideal_rd.run_for(ms(100))
        assert not ideal_rd.trace.misses()
        for thread in threads:
            assert len(ideal_rd.trace.deadlines_for(thread.tid)) >= 9


class TestPreemptionShape:
    def test_smallest_requirement_never_preempted(self, ideal_rd):
        small = admit_simple(ideal_rd, "small", period_ms=10, rate=0.05)
        admit_simple(ideal_rd, "big1", period_ms=30, rate=0.4, greedy=True)
        admit_simple(ideal_rd, "big2", period_ms=40, rate=0.4, greedy=True)
        ideal_rd.run_for(ms(120))
        granted = [
            s
            for s in ideal_rd.trace.segments_for(small.tid)
            if s.kind is SegmentKind.GRANTED
        ]
        by_period = {}
        for s in granted:
            by_period.setdefault(s.period_index, 0)
            by_period[s.period_index] += 1
        assert all(count == 1 for count in by_period.values())


class TestNoMidPeriodChange:
    def test_grant_changes_only_at_boundaries(self, ideal_rd):
        from repro.tasks.busyloop import busyloop_definition

        t1 = ideal_rd.admit(busyloop_definition("t1"))
        # Overload arrives mid-run; t1's grant must shrink, but only at
        # a period boundary.
        ideal_rd.at(ms(35), lambda: ideal_rd.admit(busyloop_definition("t2")))
        ideal_rd.at(ms(55), lambda: ideal_rd.admit(busyloop_definition("t3")))
        ideal_rd.run_for(ms(100))
        period = ms(10)
        changes = [
            g for g in ideal_rd.trace.grant_changes if g.thread_id == t1.tid
        ]
        assert len(changes) >= 2  # initial + at least one degradation
        for change in changes:
            assert change.time % period == 0, "grant changed mid-period"


class TestNoInvoluntaryTermination:
    def test_overload_degrades_instead_of_killing(self, ideal_rd):
        from repro.tasks.busyloop import busyloop_definition

        threads = [ideal_rd.admit(busyloop_definition(f"t{i}")) for i in range(5)]
        ideal_rd.run_for(ms(100))
        for thread in threads:
            assert thread.state is ThreadState.ACTIVE
            assert thread.grant is not None
            # Still receiving non-zero grants every period.
            last = ideal_rd.trace.deadlines_for(thread.tid)[-1]
            assert last.granted > 0


class TestBlockedPeriods:
    @pytest.fixture
    def blocking_setup(self, ideal_rd):
        channel = Channel("data")

        def blocker(ctx):
            yield Compute(ms(1))
            yield Block(channel)
            yield Compute(ms(1))

        definition = TaskDefinition(
            name="blocker",
            resource_list=ResourceList(
                [ResourceListEntry(ms(10), ms(4), blocker, "blocker")]
            ),
        )
        thread = ideal_rd.admit(definition)
        return ideal_rd, thread, channel

    def test_blocked_period_is_voided_not_missed(self, blocking_setup):
        rd, thread, channel = blocking_setup
        rd.run_for(ms(30))
        outcomes = rd.trace.deadlines_for(thread.tid)
        assert outcomes
        assert all(o.voided for o in outcomes)
        assert not rd.trace.misses(thread.tid)

    def test_guarantee_resumes_after_wake(self, blocking_setup):
        rd, thread, channel = blocking_setup
        rd.at(ms(15), channel.post)
        rd.run_for(ms(60))
        outcomes = rd.trace.deadlines_for(thread.tid)
        # The wake happened mid-period 1; period 2 onward the thread
        # blocks again (callback semantics restart the function), but
        # the period of the wake itself stays voided, never missed.
        assert not rd.trace.misses(thread.tid)
        assert any(o.voided for o in outcomes)


class TestLatencyBound:
    def test_worst_case_latency_is_2p_minus_2c(self, ideal_rd):
        # The bound is structural: the grant can finish at the start of
        # one period and at the end of the next.  Verify no gap between
        # consecutive grant completions exceeds 2*period - 2*cpu... plus
        # nothing: with zero switch cost the bound is exact.
        thread = admit_simple(ideal_rd, "t", period_ms=10, rate=0.3)
        admit_simple(ideal_rd, "noise", period_ms=7, rate=0.5, greedy=True)
        ideal_rd.run_for(ms(300))
        period, cpu = ms(10), ms(3)
        completions = []
        remaining = {}
        for seg in ideal_rd.trace.segments_for(thread.tid):
            if seg.kind is not SegmentKind.GRANTED:
                continue
            got = remaining.get(seg.period_index, 0) + seg.length
            remaining[seg.period_index] = got
            if got >= cpu:
                completions.append(seg.end)
        gaps = [b - a for a, b in zip(completions, completions[1:])]
        assert gaps
        assert max(gaps) <= 2 * period - 2 * cpu + 1
