"""Grant-set recompute memoization and burst coalescing.

The grant set is a pure function of (admitted resource lists, policy
tables, capacity); the Resource Manager memoizes on that signature and
``deferred_recompute`` / ``admit_many`` coalesce admission bursts into
one computation.  These are the regression tests pinning down how many
computations a burst actually costs.
"""

import pytest

from repro import AdmissionError, MachineConfig, SimConfig, units
from repro.core.distributor import ResourceDistributor
from repro.workloads import single_entry_definition


def make_rd(**kwargs):
    return ResourceDistributor(
        machine=MachineConfig.ideal(), sim=SimConfig(seed=0), **kwargs
    )


def burst(count, rate=0.02):
    return [
        single_entry_definition(f"burst{i}", 10, rate) for i in range(count)
    ]


class TestBurstCoalescing:
    def test_sequential_admissions_recompute_per_task(self):
        rd = make_rd()
        for definition in burst(8):
            rd.admit(definition)
        assert rd.resource_manager.recompute_count == 8

    def test_admit_many_coalesces_to_one_recompute(self):
        rd = make_rd()
        threads = rd.admit_many(burst(8))
        assert len(threads) == 8
        assert rd.resource_manager.recompute_count == 1

    def test_batched_and_sequential_grants_agree(self):
        sequential = make_rd()
        for definition in burst(6):
            sequential.admit(definition)
        batched = make_rd()
        batched.admit_many(burst(6))
        a = sequential.resource_manager.last_result.grant_set
        b = batched.resource_manager.last_result.grant_set
        assert a.thread_ids() == b.thread_ids()
        for tid in a.thread_ids():
            assert a.get(tid).cpu_ticks == b.get(tid).cpu_ticks
            assert a.get(tid).period == b.get(tid).period

    def test_nested_deferral_recomputes_once_at_the_outermost_exit(self):
        rd = make_rd()
        manager = rd.resource_manager
        with manager.deferred_recompute():
            rd.admit(single_entry_definition("a", 10, 0.1))
            with manager.deferred_recompute():
                rd.admit(single_entry_definition("b", 10, 0.1))
            assert manager.recompute_count == 0
        assert manager.recompute_count == 1

    def test_clean_deferral_block_recomputes_nothing(self):
        rd = make_rd()
        with rd.resource_manager.deferred_recompute():
            pass
        assert rd.resource_manager.recompute_count == 0

    def test_mid_batch_denial_keeps_earlier_admissions(self):
        rd = make_rd()
        definitions = burst(2, rate=0.3) + [single_entry_definition("hog", 10, 0.9)]
        with pytest.raises(AdmissionError):
            rd.admit_many(definitions)
        manager = rd.resource_manager
        assert len(manager.admitted_ids()) == 2
        # The deferred recompute still ran on unwind, so the survivors
        # have grants.
        assert manager.recompute_count == 1
        assert set(manager.last_result.grant_set.thread_ids()) == set(
            manager.admitted_ids()
        )

    def test_batch_runs_identically_to_sequential(self):
        """Whole-run equivalence: grants only activate at unallocated
        time, so coalescing the startup burst must not change the
        schedule."""
        a = make_rd()
        for definition in burst(5, rate=0.1):
            a.admit(definition)
        b = make_rd()
        b.admit_many(burst(5, rate=0.1))
        a.run_for(units.ms_to_ticks(60))
        b.run_for(units.ms_to_ticks(60))
        sa = [(s.thread_id, s.start, s.end, s.kind) for s in a.trace.segments]
        sb = [(s.thread_id, s.start, s.end, s.kind) for s in b.trace.segments]
        assert sa == sb


class TestMemoization:
    def test_unchanged_signature_is_a_memo_hit(self):
        rd = make_rd()
        rd.admit(single_entry_definition("a", 10, 0.2))
        manager = rd.resource_manager
        before = manager.recompute_count
        result = manager.last_result
        manager._recompute()  # nothing changed since the admission
        assert manager.recompute_count == before
        assert manager.memo_hits == 1
        assert manager.last_result is result

    def test_population_change_invalidates(self):
        rd = make_rd()
        rd.admit(single_entry_definition("a", 10, 0.2))
        rd.admit(single_entry_definition("b", 10, 0.2))
        manager = rd.resource_manager
        assert manager.recompute_count == 2
        assert manager.memo_hits == 0

    def test_quiescence_and_wake_invalidate(self):
        rd = make_rd()
        t = rd.admit(single_entry_definition("a", 10, 0.2))
        rd.admit(single_entry_definition("b", 10, 0.2))
        manager = rd.resource_manager
        base = manager.recompute_count
        rd.enter_quiescent(t.tid)
        rd.wake(t.tid)
        assert manager.recompute_count == base + 2
        assert manager.memo_hits == 0

    def test_policy_revision_invalidates(self):
        rd = make_rd()
        a = rd.admit(single_entry_definition("a", 10, 0.2))
        b = rd.admit(single_entry_definition("b", 10, 0.2))
        manager = rd.resource_manager
        base = manager.recompute_count
        rd.set_policy_override(
            {a.policy_id: 30.0, b.policy_id: 40.0}
        )
        assert manager.recompute_count == base + 1
        rd.clear_policy_override({a.policy_id, b.policy_id})
        assert manager.recompute_count == base + 2
        assert manager.memo_hits == 0

    def test_memo_hit_under_sanitizer_cross_checks_silently(self):
        rd = make_rd(sanitize=True, sanitize_strict=True)
        rd.admit(single_entry_definition("a", 10, 0.2))
        manager = rd.resource_manager
        box = rd.policy_box
        lookups = box.lookup_count
        manager._recompute()
        assert manager.memo_hits == 1
        assert rd.sanitizer.ok
        assert rd.sanitizer.memo_reuses_checked == 1
        # The cross-check recomputation is side-effect free: no policy
        # lookups were recorded.
        assert box.lookup_count == lookups

    def test_sanitizer_catches_a_stale_memo(self):
        rd = make_rd(sanitize=True, sanitize_strict=False)
        rd.admit(single_entry_definition("a", 10, 0.2))
        manager = rd.resource_manager
        # Corrupt the memo: change the population while forcing the
        # signature to look unchanged.
        rd.admit(single_entry_definition("b", 10, 0.2))
        manager._memo_signature = manager._signature()
        stale = manager.last_result
        rd.admit(single_entry_definition("c", 10, 0.2))
        manager._memo_signature = manager._signature()
        manager.last_result = stale
        manager._recompute()
        assert not rd.sanitizer.ok
        assert any(
            "memo" in v.rule for v in rd.sanitizer.report.violations
        )
