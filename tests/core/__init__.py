"""Test package."""
