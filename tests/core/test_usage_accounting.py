"""Resource Manager accounting: grant usage reported per thread."""

import pytest

from repro import AdmissionError, units

from tests.conftest import admit_simple


def ms(x):
    return units.ms_to_ticks(x)


class TestUsage:
    def test_full_user_consumes_its_grants(self, ideal_rd):
        thread = admit_simple(ideal_rd, "worker", period_ms=10, rate=0.4)
        ideal_rd.run_for(ms(100))
        usage = ideal_rd.resource_manager.usage(thread.tid)
        assert usage.periods == 10
        assert usage.granted_ticks == 10 * ms(4)
        assert usage.used_ticks == usage.granted_ticks
        assert usage.grant_utilization == pytest.approx(1.0)
        assert usage.overtime_ticks == 0

    def test_greedy_user_shows_overtime(self, ideal_rd):
        thread = admit_simple(ideal_rd, "greedy", period_ms=10, rate=0.4, greedy=True)
        ideal_rd.run_for(ms(100))
        usage = ideal_rd.resource_manager.usage(thread.tid)
        assert usage.overtime_ticks > 0

    def test_light_user_shows_partial_utilization(self, ideal_rd):
        from repro import TaskDefinition
        from repro.core.resource_list import ResourceList, ResourceListEntry
        from repro.tasks.base import Compute, DonePeriod

        def light(ctx):
            yield Compute(ms(1))
            yield DonePeriod()

        thread = ideal_rd.admit(
            TaskDefinition(
                name="light",
                resource_list=ResourceList(
                    [ResourceListEntry(ms(10), ms(4), light, "light")]
                ),
            )
        )
        ideal_rd.run_for(ms(100))
        usage = ideal_rd.resource_manager.usage(thread.tid)
        assert usage.grant_utilization == pytest.approx(0.25)

    def test_summary_covers_population(self, ideal_rd):
        admit_simple(ideal_rd, "a", period_ms=10, rate=0.3)
        admit_simple(ideal_rd, "b", period_ms=20, rate=0.3)
        ideal_rd.run_for(ms(60))
        summary = ideal_rd.resource_manager.usage_summary()
        assert [u.name for u in summary] == ["a", "b"]
        assert all(u.periods > 0 for u in summary)

    def test_quiescent_thread_reports_zero_usage(self, ideal_rd):
        from repro.tasks.modem import Modem

        thread = ideal_rd.admit(Modem().definition(start_quiescent=True))
        ideal_rd.run_for(ms(50))
        usage = ideal_rd.resource_manager.usage(thread.tid)
        assert usage.quiescent
        assert usage.used_ticks == 0
        assert usage.grant_utilization == 0.0

    def test_unknown_thread_raises(self, ideal_rd):
        with pytest.raises(AdmissionError):
            ideal_rd.resource_manager.usage(404)
