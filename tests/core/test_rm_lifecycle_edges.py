"""Resource Manager lifecycle edge cases."""

import pytest

from repro import AdmissionError, units
from repro.core.threads import ThreadState
from repro.tasks.modem import Modem
from repro.workloads import single_entry_definition

from tests.conftest import admit_simple


def ms(x):
    return units.ms_to_ticks(x)


class TestQuiescentEdges:
    def test_exit_while_quiescent(self, ideal_rd):
        modem = Modem()
        thread = ideal_rd.admit(modem.definition(start_quiescent=True))
        ideal_rd.run_for(ms(20))
        ideal_rd.exit_thread(thread.tid)
        assert thread.state is ThreadState.EXITED
        # Its pre-committed minimum is released.
        admit_simple(ideal_rd, "big", period_ms=10, rate=0.95)

    def test_double_enter_quiescent_is_idempotent(self, ideal_rd):
        thread = admit_simple(ideal_rd, "t", period_ms=10, rate=0.3)
        ideal_rd.run_for(ms(15))
        ideal_rd.enter_quiescent(thread.tid)
        ideal_rd.enter_quiescent(thread.tid)
        ideal_rd.run_for(ms(20))
        assert thread.state is ThreadState.QUIESCENT

    def test_quiesce_then_exit_before_boundary(self, ideal_rd):
        thread = admit_simple(ideal_rd, "t", period_ms=10, rate=0.3)
        ideal_rd.run_for(ms(12))
        ideal_rd.enter_quiescent(thread.tid)
        ideal_rd.exit_thread(thread.tid)
        ideal_rd.run_for(ms(20))
        assert thread.state is ThreadState.EXITED
        assert thread.tid not in ideal_rd.resource_manager.admitted_ids()

    def test_change_resource_list_while_quiescent(self, ideal_rd):
        thread = admit_simple(ideal_rd, "t", period_ms=10, rate=0.3)
        ideal_rd.run_for(ms(15))
        ideal_rd.enter_quiescent(thread.tid)
        ideal_rd.run_for(ms(15))
        smaller = single_entry_definition("t", period_ms=10, rate=0.1)
        ideal_rd.resource_manager.change_resource_list(thread.tid, smaller)
        ideal_rd.wake(thread.tid)
        ideal_rd.run_for(ms(30))
        assert thread.grant.rate == pytest.approx(0.1)


class TestExitEdges:
    def test_double_exit_raises(self, ideal_rd):
        thread = admit_simple(ideal_rd, "t", period_ms=10, rate=0.3)
        ideal_rd.exit_thread(thread.tid)
        with pytest.raises(AdmissionError):
            ideal_rd.exit_thread(thread.tid)

    def test_exit_before_first_activation(self, ideal_rd):
        # Admit and exit without ever running: the thread never held a
        # period, so it exits immediately.
        thread = admit_simple(ideal_rd, "t", period_ms=10, rate=0.3)
        ideal_rd.exit_thread(thread.tid)
        assert thread.state is ThreadState.EXITED
        ideal_rd.run_for(ms(20))
        assert ideal_rd.trace.busy_ticks(thread.tid) == 0

    def test_wake_after_exit_raises(self, ideal_rd):
        thread = admit_simple(ideal_rd, "t", period_ms=10, rate=0.3)
        ideal_rd.exit_thread(thread.tid)
        with pytest.raises(AdmissionError):
            ideal_rd.wake(thread.tid)

    def test_readmission_under_same_name_keeps_policy_identity(self, ideal_rd):
        t1 = admit_simple(ideal_rd, "app", period_ms=10, rate=0.3)
        pid1 = t1.policy_id
        ideal_rd.exit_thread(t1.tid)
        ideal_rd.run_for(ms(20))
        t2 = admit_simple(ideal_rd, "app", period_ms=10, rate=0.3)
        assert t2.policy_id == pid1
        assert t2.tid != t1.tid
