"""Runtime Policy Box modification (the paper's §7 open issue)."""

import pytest

from repro import ContextSwitchCosts, MachineConfig, SimConfig, units
from repro.core.distributor import ResourceDistributor
from repro.tasks.ac3 import Ac3Decoder
from repro.tasks.busyloop import busyloop_definition
from repro.tasks.mpeg import MpegDecoder


def ms(x):
    return units.ms_to_ticks(x)


@pytest.fixture
def overloaded():
    """Video + audio + background with designer defaults installed."""
    rd = ResourceDistributor(
        machine=MachineConfig(switch_costs=ContextSwitchCosts.zero()),
        sim=SimConfig(seed=21),
    )
    mpeg = MpegDecoder("video")
    ac3 = Ac3Decoder("audio")
    vid = rd.policy_box.register_task("video")
    aud = rd.policy_box.register_task("audio")
    bg = rd.policy_box.register_task("background")
    rd.policy_box.set_default({vid: 24, aud: 12, bg: 60})
    threads = {
        "video": rd.admit(mpeg.definition()),
        "audio": rd.admit(ac3.definition()),
        "background": rd.admit(busyloop_definition("background")),
    }
    return rd, threads, (vid, aud, bg)


class TestRuntimeOverride:
    def test_override_mid_run_changes_grants(self, overloaded):
        rd, threads, (vid, aud, bg) = overloaded
        rd.run_for(ms(200))
        assert threads["audio"].grant.entry_index == 0  # full quality
        # Loud room: the user flips the preference mid-run.
        rd.at(
            ms(200),
            lambda: rd.set_policy_override({vid: 34, aud: 6, bg: 56}),
            "user override",
        )
        rd.run_for(ms(300))
        assert threads["audio"].grant.entry_index == 1  # downmixed
        assert threads["video"].grant.entry_index == 0  # full video

    def test_override_never_breaks_guarantees(self, overloaded):
        rd, threads, (vid, aud, bg) = overloaded
        for k in range(1, 6):
            rankings = (
                {vid: 34, aud: 6, bg: 56} if k % 2 else {vid: 24, aud: 12, bg: 60}
            )
            rd.at(ms(100 * k), lambda r=rankings: rd.set_policy_override(r))
        rd.run_for(ms(700))
        assert not rd.trace.misses()

    def test_clear_override_restores_default(self, overloaded):
        rd, threads, (vid, aud, bg) = overloaded
        rd.set_policy_override({vid: 34, aud: 6, bg: 56})
        rd.run_for(ms(200))
        assert threads["audio"].grant.entry_index == 1
        rd.clear_policy_override({vid, aud, bg})
        rd.run_for(ms(200))
        assert threads["audio"].grant.entry_index == 0

    def test_grant_changes_land_on_period_boundaries(self, overloaded):
        rd, threads, (vid, aud, bg) = overloaded
        rd.at(ms(205), lambda: rd.set_policy_override({vid: 34, aud: 6, bg: 56}))
        rd.run_for(ms(500))
        audio_period = threads["audio"].definition.resource_list.maximum.period
        for change in rd.trace.grant_changes:
            if change.thread_id == threads["audio"].tid and change.reason == "grant change":
                assert change.time % audio_period == 0

    def test_policy_change_with_no_tasks_is_harmless(self):
        rd = ResourceDistributor(sim=SimConfig(seed=1))
        pid = rd.policy_box.register_task("x")
        rd.set_policy_override({pid: 50})
        rd.run_for(ms(10))  # nothing admitted: nothing to recompute
