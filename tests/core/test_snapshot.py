"""Scheduler queue snapshots for debugging."""

import pytest

from repro import units

from tests.conftest import admit_simple


def ms(x):
    return units.ms_to_ticks(x)


class TestSnapshot:
    def test_queues_reflect_states(self, ideal_rd):
        fresh = admit_simple(ideal_rd, "fresh", period_ms=10, rate=0.3)
        greedy = admit_simple(ideal_rd, "greedy", period_ms=10, rate=0.2, greedy=True)
        ideal_rd.run_for(ms(6))  # fresh done (3 ms), greedy in overtime
        snap = ideal_rd.scheduler.snapshot(ideal_rd.now)
        tr_ids = [row[0] for row in snap["time_remaining"]]
        ot_ids = [row[0] for row in snap["overtime_requested"]]
        te_ids = [row[0] for row in snap["time_expired"]]
        assert fresh.tid not in tr_ids  # declared done
        assert fresh.tid in te_ids
        assert greedy.tid in ot_ids  # exhausted grant, work pending

    def test_time_remaining_is_deadline_ordered(self, ideal_rd):
        admit_simple(ideal_rd, "slow", period_ms=40, rate=0.2)
        admit_simple(ideal_rd, "fast", period_ms=10, rate=0.2)
        snap = ideal_rd.scheduler.snapshot(0)
        deadlines = [row[2] for row in snap["time_remaining"]]
        assert deadlines == sorted(deadlines)

    def test_pending_activation_listed(self, ideal_rd):
        admit_simple(ideal_rd, "a", period_ms=10, rate=0.3)
        # Before the first run, the grant awaits unallocated time.
        snap = ideal_rd.scheduler.snapshot(0)
        assert snap["pending_activation"]
        ideal_rd.run_for(ms(5))
        snap = ideal_rd.scheduler.snapshot(ideal_rd.now)
        assert snap["pending_activation"] == []
