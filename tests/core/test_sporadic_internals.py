"""Sporadic Server internals: queue maintenance and configuration."""

import pytest

from repro import SporadicServer, units
from repro.core.threads import ThreadState
from repro.tasks.base import Compute


def ms(x):
    return units.ms_to_ticks(x)


def finite(total_ms):
    def job(ctx):
        remaining = ms(total_ms)
        while remaining > 0:
            step = min(units.us_to_ticks(100), remaining)
            yield Compute(step)
            remaining -= step

    return job


class TestQueue:
    def test_queue_length_tracks_spawns(self, ideal_rd):
        server = SporadicServer(ideal_rd, greedy=False)
        assert server.queue_length() == 0
        server.spawn("a", finite(1))
        server.spawn("b", finite(1))
        assert server.queue_length() == 2

    def test_finished_tasks_pruned(self, ideal_rd):
        server = SporadicServer(ideal_rd, greedy=False)
        server.spawn("a", finite(0.5))
        ideal_rd.run_for(units.sec_to_ticks(1))
        assert server.queue_length() == 0

    def test_next_ready_skips_blocked(self, ideal_rd):
        from repro.tasks.base import Block
        from repro.tasks.channels import Channel

        channel = Channel("never")

        def stuck(ctx):
            yield Block(channel)

        server = SporadicServer(ideal_rd, greedy=False)
        server.spawn("stuck", stuck)
        runner = server.spawn("runner", finite(1))
        ideal_rd.run_for(units.sec_to_ticks(1))
        # The blocked task did not wedge the queue.
        assert runner.state is ThreadState.EXITED
        assert server.queue_length() == 1  # the stuck one remains


class TestConfiguration:
    def test_server_definition_reflects_parameters(self, ideal_rd):
        server = SporadicServer(
            ideal_rd, period=ms(50), cpu_ticks=ms(2), slice_ticks=ms(5), greedy=False
        )
        entry = server.definition.resource_list.maximum
        assert entry.period == ms(50)
        assert entry.cpu_ticks == ms(2)

    def test_server_is_an_ordinary_admitted_task(self, ideal_rd):
        server = SporadicServer(ideal_rd)
        assert server.thread.tid in ideal_rd.resource_manager.admitted_ids()
        # Its CPU share is tunable through the Policy Box like any task.
        assert ideal_rd.policy_box.policy_id("SporadicServer") == server.thread.policy_id

    def test_non_greedy_server_leaves_idle_time(self, ideal_rd):
        from repro.sim.trace import SegmentKind

        SporadicServer(ideal_rd, greedy=False)
        ideal_rd.run_for(ms(100))
        idle = sum(
            s.length for s in ideal_rd.trace.segments if s.kind is SegmentKind.IDLE
        )
        assert idle > ms(90)
