"""Resource lists: Table 1 semantics and validation."""

import pytest

from repro.core.resource_list import ResourceList, ResourceListEntry
from repro.errors import ResourceListError


def _fn(ctx):
    yield  # pragma: no cover - never driven


def entry(period, cpu, **kwargs):
    return ResourceListEntry(period=period, cpu_ticks=cpu, function=_fn, **kwargs)


class TestEntry:
    def test_rate_is_cpu_over_period(self):
        # Table 2's top row: 300,000 / 900,000 = 33.3 %.
        assert entry(900_000, 300_000).rate == pytest.approx(1 / 3)

    def test_rejects_cpu_over_period(self):
        with pytest.raises(ResourceListError):
            entry(900_000, 900_001)

    def test_rejects_zero_cpu(self):
        with pytest.raises(ResourceListError):
            entry(900_000, 0)

    def test_rejects_float_cpu(self):
        with pytest.raises(ResourceListError):
            entry(900_000, 1000.5)

    def test_rejects_out_of_range_period(self):
        with pytest.raises(ValueError):
            entry(100, 10)

    def test_rejects_non_callable_function(self):
        with pytest.raises(ResourceListError):
            ResourceListEntry(period=900_000, cpu_ticks=100, function="nope")

    def test_full_rate_entry_allowed(self):
        assert entry(900_000, 900_000).rate == 1.0


class TestListOrdering:
    def test_requires_strictly_decreasing_rates(self):
        with pytest.raises(ResourceListError):
            ResourceList([entry(900_000, 100_000), entry(900_000, 200_000)])

    def test_rejects_equal_rates(self):
        with pytest.raises(ResourceListError):
            ResourceList([entry(900_000, 100_000), entry(900_000, 100_000)])

    def test_rejects_empty(self):
        with pytest.raises(ResourceListError):
            ResourceList([])

    def test_max_and_min(self):
        rl = ResourceList([entry(900_000, 300_000), entry(900_000, 100_000)])
        assert rl.maximum.cpu_ticks == 300_000
        assert rl.minimum.cpu_ticks == 100_000

    def test_single_entry_is_both_max_and_min(self):
        rl = ResourceList([entry(900_000, 300_000)])
        assert rl.maximum is rl.minimum

    def test_mixed_periods_ordered_by_rate(self):
        # Table 2 mixes periods; ordering is by rate, not period.
        rl = ResourceList(
            [
                entry(900_000, 300_000),  # 33.3 %
                entry(3_600_000, 900_000),  # 25.0 %
                entry(2_700_000, 600_000),  # 22.2 %
                entry(3_600_000, 600_000),  # 16.7 %
            ]
        )
        assert [round(e.rate, 3) for e in rl] == [0.333, 0.25, 0.222, 0.167]


class TestSelection:
    @pytest.fixture
    def rl(self):
        return ResourceList(
            [entry(900_000, 450_000), entry(900_000, 270_000), entry(900_000, 90_000)]
        )  # 50 %, 30 %, 10 %

    def test_best_fitting_exact(self, rl):
        assert rl.best_fitting(0.5).cpu_ticks == 450_000

    def test_best_fitting_rounds_down_to_useful_level(self, rl):
        # 45 % cannot run the 50 % level; the useful quantum is 30 %.
        assert rl.best_fitting(0.45).cpu_ticks == 270_000

    def test_best_fitting_below_minimum_is_none(self, rl):
        assert rl.best_fitting(0.05) is None

    def test_straddling_middle(self, rl):
        above, below = rl.straddling(0.4)
        assert above.rate == pytest.approx(0.5)
        assert below.rate == pytest.approx(0.3)

    def test_straddling_above_all(self, rl):
        above, below = rl.straddling(0.9)
        assert above is None
        assert below.rate == pytest.approx(0.5)

    def test_straddling_below_all(self, rl):
        above, below = rl.straddling(0.01)
        assert above.rate == pytest.approx(0.1)
        assert below is None

    def test_straddling_exact_level_counts_as_above(self, rl):
        above, below = rl.straddling(0.3)
        assert above.rate == pytest.approx(0.3)
        assert below.rate == pytest.approx(0.1)

    def test_index_of(self, rl):
        assert rl.index_of(rl.minimum) == 2
        other = entry(900_000, 450_000)
        with pytest.raises(ResourceListError):
            rl.index_of(other)


class TestDescribe:
    def test_describe_contains_rates(self):
        rl = ResourceList([entry(900_000, 300_000, label="FullDecompress")])
        text = rl.describe()
        assert "FullDecompress" in text
        assert "33.3%" in text
