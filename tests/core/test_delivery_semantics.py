"""Grant delivery semantics (section 5.5): callback, return, filter."""

import pytest

from repro import Semantics, TaskDefinition, units
from repro.core.resource_list import ResourceList, ResourceListEntry
from repro.tasks.base import Compute, DonePeriod

from tests.conftest import admit_simple


def ms(x):
    return units.ms_to_ticks(x)


class TestCallbackSemantics:
    def test_function_restarts_every_period(self, ideal_rd):
        starts = []

        def task(ctx):
            starts.append(ctx.now)
            yield Compute(ms(2))

        definition = TaskDefinition(
            name="cb",
            resource_list=ResourceList([ResourceListEntry(ms(10), ms(3), task)]),
            semantics=Semantics.CALLBACK,
        )
        ideal_rd.admit(definition)
        ideal_rd.run_for(ms(50))
        assert len(starts) == 5  # one fresh call per period

    def test_delivery_reports_previous_completion(self, ideal_rd):
        reports = []

        def task(ctx):
            reports.append(
                (ctx.delivery.previous_completed, ctx.delivery.previous_used)
            )
            yield Compute(ms(2))

        definition = TaskDefinition(
            name="cb",
            resource_list=ResourceList([ResourceListEntry(ms(10), ms(3), task)]),
        )
        ideal_rd.admit(definition)
        ideal_rd.run_for(ms(30))
        # First delivery: vacuous previous call, counted as completed.
        assert reports[0] == (True, 0)
        # Later deliveries: completed, having used 2 ms.
        assert reports[1] == (True, ms(2))
        assert reports[2] == (True, ms(2))

    def test_incomplete_previous_call_reported(self, ideal_rd):
        reports = []

        def task(ctx):
            reports.append(ctx.delivery.previous_completed)
            yield Compute(ms(100))  # can never finish in one grant

        definition = TaskDefinition(
            name="cb",
            resource_list=ResourceList([ResourceListEntry(ms(10), ms(3), task)]),
        )
        ideal_rd.admit(definition)
        ideal_rd.run_for(ms(30))
        assert reports[0] is True
        assert reports[1] is False  # previous call was cut off


class TestReturnSemantics:
    def test_generator_resumes_across_periods(self, ideal_rd):
        starts = []

        def task(ctx):
            starts.append(ctx.now)
            while True:
                yield Compute(ms(1))

        definition = TaskDefinition(
            name="ret",
            resource_list=ResourceList([ResourceListEntry(ms(10), ms(3), task)]),
            semantics=Semantics.RETURN,
        )
        ideal_rd.admit(definition)
        ideal_rd.run_for(ms(50))
        assert len(starts) == 1  # never restarted

    def test_exhausted_generator_restarts_even_with_return_semantics(self, ideal_rd):
        starts = []

        def task(ctx):
            starts.append(ctx.now)
            yield Compute(ms(1))  # finishes well inside the grant

        definition = TaskDefinition(
            name="ret",
            resource_list=ResourceList([ResourceListEntry(ms(10), ms(3), task)]),
            semantics=Semantics.RETURN,
        )
        ideal_rd.admit(definition)
        ideal_rd.run_for(ms(30))
        assert len(starts) == 3


class TestGrantChangeSemantics:
    def _two_level_definition(self, fn, semantics, filter_callback=None):
        return TaskDefinition(
            name="task",
            resource_list=ResourceList(
                [
                    ResourceListEntry(ms(10), ms(8), fn, "high"),
                    ResourceListEntry(ms(10), ms(1), fn, "low"),
                ]
            ),
            semantics=semantics,
            filter_callback=filter_callback,
        )

    def test_return_task_restarts_on_grant_change_by_default(self, ideal_rd):
        starts = []

        def task(ctx):
            starts.append(ctx.grant.entry_index)
            while True:
                yield Compute(ms(1))

        ideal_rd.admit(self._two_level_definition(task, Semantics.RETURN))
        # Force a degradation by admitting a competitor.
        ideal_rd.at(ms(25), lambda: admit_simple(ideal_rd, "rival", 10, 0.5))
        ideal_rd.run_for(ms(80))
        # Started once at high QOS, restarted once when the grant changed.
        assert starts[0] == 0
        assert 1 in starts[1:]

    def test_filter_callback_chooses_return(self, ideal_rd):
        starts = []
        filtered = []

        def task(ctx):
            starts.append(ctx.now)
            while True:
                yield Compute(ms(1))

        def keep_going(old, new):
            filtered.append((old.entry_index, new.entry_index))
            return Semantics.RETURN

        ideal_rd.admit(
            self._two_level_definition(task, Semantics.RETURN, keep_going)
        )
        ideal_rd.at(ms(25), lambda: admit_simple(ideal_rd, "rival", 10, 0.5))
        ideal_rd.run_for(ms(80))
        assert len(starts) == 1  # filter elected to continue
        assert filtered  # and it was actually consulted

    def test_filter_not_consulted_when_grant_unchanged(self, ideal_rd):
        filtered = []

        def task(ctx):
            while True:
                yield Compute(ms(1))

        def spy(old, new):
            filtered.append(1)
            return Semantics.RETURN

        ideal_rd.admit(self._two_level_definition(task, Semantics.RETURN, spy))
        ideal_rd.run_for(ms(50))
        assert not filtered
