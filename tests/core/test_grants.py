"""Grants and grant sets: the <= capacity invariant."""

import pytest

from repro.core.grants import Grant, GrantSet
from repro.core.resource_list import ResourceListEntry
from repro.errors import GrantError


def _fn(ctx):
    yield  # pragma: no cover


def grant(tid, period, cpu, exclusive=frozenset(), index=0):
    entry = ResourceListEntry(
        period=period, cpu_ticks=cpu, function=_fn, exclusive=frozenset(exclusive)
    )
    return Grant(thread_id=tid, entry=entry, entry_index=index)


class TestGrant:
    def test_delegates_to_entry(self):
        g = grant(1, 900_000, 300_000)
        assert g.period == 900_000
        assert g.cpu_ticks == 300_000
        assert g.rate == pytest.approx(1 / 3)


class TestGrantSet:
    def test_total_rate_and_slack(self):
        gs = GrantSet(
            {1: grant(1, 900_000, 300_000), 2: grant(2, 900_000, 90_000)},
            capacity=0.96,
        )
        assert gs.total_rate == pytest.approx(300_000 / 900_000 + 0.1)
        assert gs.slack == pytest.approx(0.96 - gs.total_rate)

    def test_rejects_over_capacity(self):
        with pytest.raises(GrantError):
            GrantSet(
                {1: grant(1, 900_000, 600_000), 2: grant(2, 900_000, 600_000)},
                capacity=0.96,
            )

    def test_rejects_mismatched_key(self):
        with pytest.raises(GrantError):
            GrantSet({2: grant(1, 900_000, 100_000)}, capacity=1.0)

    def test_lookup(self):
        g = grant(1, 900_000, 100_000)
        gs = GrantSet({1: g}, capacity=1.0)
        assert gs[1] is g
        assert gs.get(2) is None
        with pytest.raises(GrantError):
            gs[2]

    def test_contains_and_len(self):
        gs = GrantSet({1: grant(1, 900_000, 100_000)}, capacity=1.0)
        assert 1 in gs
        assert 2 not in gs
        assert len(gs) == 1

    def test_empty_set_is_valid(self):
        gs = GrantSet({}, capacity=0.96)
        assert gs.total_rate == 0.0

    def test_exclusive_owner(self):
        gs = GrantSet(
            {1: grant(1, 900_000, 100_000, {"ffu.video_scaler"})}, capacity=1.0
        )
        assert gs.exclusive_owner("ffu.video_scaler") == 1
        assert gs.exclusive_owner("data_streamer") is None

    def test_exclusive_double_grant_detected(self):
        gs = GrantSet(
            {
                1: grant(1, 900_000, 100_000, {"ffu.video_scaler"}),
                2: grant(2, 900_000, 100_000, {"ffu.video_scaler"}),
            },
            capacity=1.0,
        )
        with pytest.raises(GrantError):
            gs.exclusive_owner("ffu.video_scaler")

    def test_describe_table4_format(self):
        gs = GrantSet({1: grant(1, 270_000, 27_000)}, capacity=0.96)
        assert "10.0%" in gs.describe()
