"""Grant control: fast path, policy correlation, exclusive arbitration."""

import pytest

from repro.core.grant_control import GrantController, GrantRequest
from repro.core.policy_box import PolicyBox
from repro.core.resource_list import ResourceList, ResourceListEntry
from repro.errors import GrantError

PERIOD = 270_000  # 10 ms


def _fn(ctx):
    yield  # pragma: no cover


def make_list(*rates, exclusive_on_top=None):
    entries = []
    for i, rate in enumerate(rates):
        exclusive = frozenset()
        if exclusive_on_top and i < exclusive_on_top[0]:
            exclusive = frozenset({exclusive_on_top[1]})
        entries.append(
            ResourceListEntry(
                period=PERIOD,
                cpu_ticks=round(PERIOD * rate),
                function=_fn,
                exclusive=exclusive,
            )
        )
    return ResourceList(entries)


@pytest.fixture
def box():
    return PolicyBox(capacity=0.96)


def controller(box):
    return GrantController(capacity=0.96, policy_box=box)


def request(tid, box, *rates, name=None, quiescent=False, exclusive_on_top=None):
    pid = box.register_task(name or f"t{tid}")
    return GrantRequest(
        thread_id=tid,
        policy_id=pid,
        resource_list=make_list(*rates, exclusive_on_top=exclusive_on_top),
        quiescent=quiescent,
    )


class TestFastPath:
    def test_underload_gives_everyone_max(self, box):
        gc = controller(box)
        result = gc.compute(
            [request(1, box, 0.4, 0.1), request(2, box, 0.3, 0.1)]
        )
        assert result.passes == 0
        assert result.policy is None
        assert result.grant_set[1].rate == pytest.approx(0.4)
        assert result.grant_set[2].rate == pytest.approx(0.3)

    def test_empty_population(self, box):
        gc = controller(box)
        result = gc.compute([])
        assert len(result.grant_set) == 0

    def test_exact_capacity_fits(self, box):
        gc = controller(box)
        result = gc.compute(
            [request(1, box, 0.5, 0.1), request(2, box, 0.46, 0.1)]
        )
        assert result.passes == 0

    def test_duplicate_thread_ids_rejected(self, box):
        gc = controller(box)
        r = request(1, box, 0.4, 0.1)
        with pytest.raises(GrantError):
            gc.compute([r, r])


class TestQuiescent:
    def test_quiescent_threads_get_no_grant(self, box):
        gc = controller(box)
        result = gc.compute(
            [request(1, box, 0.4, 0.1), request(2, box, 0.3, 0.1, quiescent=True)]
        )
        assert 1 in result.grant_set
        assert 2 not in result.grant_set

    def test_quiescent_resources_flow_to_others(self, box):
        gc = controller(box)
        # Two 60 %-max tasks: together they overload, but with one
        # quiescent the other gets its maximum.
        active = request(1, box, 0.6, 0.1)
        sleeper = request(2, box, 0.6, 0.1, quiescent=True)
        result = gc.compute([active, sleeper])
        assert result.passes == 0
        assert result.grant_set[1].rate == pytest.approx(0.6)


class TestPolicyCorrelation:
    def test_overload_consults_policy_box(self, box):
        gc = controller(box)
        result = gc.compute(
            [request(1, box, 0.9, 0.1), request(2, box, 0.9, 0.1)]
        )
        assert result.policy is not None
        assert result.policy.invented

    def test_invented_policy_splits_evenly(self, box):
        gc = controller(box)
        # Table 6-style lists: nine 10 % steps.
        rates = [0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1]
        reqs = [request(i, box, *rates) for i in (1, 2, 3)]
        result = gc.compute(reqs)
        # 0.96 / 3 = 0.32 -> "above" entries are 40 % each, which
        # overflow (1.2); the demotion pass settles everyone at 30 %.
        for tid in (1, 2, 3):
            assert result.grant_set[tid].rate == pytest.approx(0.3)
        assert result.passes == 2

    def test_figure5_three_thread_stage(self, box):
        gc = controller(box)
        # Two Table 6 threads plus the 1 % Sporadic Server: targets are
        # 0.32 each, the busy threads take the 40 % entries just above,
        # and everything fits in one pass -- the paper's "drops to 4 ms
        # when one thread is added".
        rates = [0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1]
        reqs = [request(i, box, *rates) for i in (1, 2)]
        ss = GrantRequest(
            thread_id=3,
            policy_id=box.register_task("SporadicServer"),
            resource_list=ResourceList(
                [ResourceListEntry(2_700_000, 27_000, _fn, "SS")]
            ),
        )
        result = gc.compute(reqs + [ss])
        assert result.passes == 1
        assert result.grant_set[1].rate == pytest.approx(0.4)
        assert result.grant_set[2].rate == pytest.approx(0.4)

    def test_demotion_when_above_sum_overflows(self, box):
        gc = controller(box)
        rates = [0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1]
        reqs = [request(i, box, *rates) for i in (1, 2, 3, 4, 5)]
        result = gc.compute(reqs)
        # 0.96 / 5 = 0.192 -> above = 20 % x 5 = 1.0 > 0.96: one thread
        # is demoted to 10 %.
        granted = sorted(result.grant_set[tid].rate for tid in (1, 2, 3, 4, 5))
        assert granted == pytest.approx([0.1, 0.2, 0.2, 0.2, 0.2])
        assert result.passes == 2

    def test_explicit_policy_shapes_grants(self, box):
        gc = controller(box)
        important = request(1, box, 0.8, 0.6, 0.2, name="important")
        background = request(2, box, 0.8, 0.6, 0.2, name="background")
        box.set_default(
            {box.policy_id("important"): 65, box.policy_id("background"): 25}
        )
        result = gc.compute([important, background])
        assert not result.policy.invented
        assert result.grant_set[1].rate > result.grant_set[2].rate

    def test_deep_demotion_when_one_level_is_not_enough(self, box):
        gc = controller(box)
        # B's only level is 90 %, far above its invented 48 % target, so
        # it cannot be demoted; A's "just below" entry (9 %) still
        # overflows alongside it (0.99 > 0.96).  The second demotion
        # sweep keeps walking A down to its minimum (1 %), which the
        # admission invariant guarantees to fit — no blunt fallback.
        a = request(1, box, 0.5, 0.09, 0.01, name="A")
        b = request(2, box, 0.9, name="B")
        result = gc.compute([a, b])
        assert not result.minimum_fallback
        assert result.grant_set[1].rate == pytest.approx(0.01)
        assert result.grant_set[2].rate == pytest.approx(0.9)
        assert result.grant_set.total_rate <= 0.96 + 1e-9

    def test_promotion_restores_demotions_within_policy_ceiling(self, box):
        gc = controller(box)
        # Targets 0.3 / 0.12 / 0.5.  Pass 1 overshoots (0.97); pass 2
        # demotes A (largest overshoot above target) to 0.25; pass 3
        # restores A back to its policy level 0.333... no — the ceiling
        # is the pass-1 selection, so A returns exactly to 0.333's
        # sanctioned sibling.  Constructed concretely below:
        a = request(1, box, 0.4, 0.25, 0.05, name="A")  # target 0.3 -> above 0.4
        b = request(2, box, 0.12, 0.06, name="B")  # target 0.12 -> above 0.12
        c = request(3, box, 0.5, 0.4, 0.1, name="C")  # target 0.5 -> above 0.5
        box.set_default(
            {box.policy_id("A"): 30, box.policy_id("B"): 12, box.policy_id("C"): 50}
        )
        result = gc.compute([a, b, c])
        # Pass 1: 0.4 + 0.12 + 0.5 = 1.02 > 0.96.  A overshoots most
        # (+0.10) and is demoted to 0.25 -> 0.87.  Pass 3 slack (0.09)
        # cannot restore A's 0.4 (needs 0.15), and nobody may exceed
        # their pass-1 ceiling.
        assert result.passes == 3
        assert result.grant_set[1].rate == pytest.approx(0.25)
        assert result.grant_set[2].rate == pytest.approx(0.12)
        assert result.grant_set[3].rate == pytest.approx(0.5)
        assert result.grant_set.total_rate <= 0.96 + 1e-9

    def test_promotion_never_exceeds_policy_level(self, box):
        gc = controller(box)
        # B is demoted for capacity; the leftover slack could lift A
        # past its policy-sanctioned level, but must not: runtime
        # overtime, not grants, distributes unallocated capacity.
        a = request(1, box, 0.6, 0.5, 0.05, name="A")
        b = request(2, box, 0.6, 0.05, name="B")
        result = gc.compute([a, b])  # invented targets: 0.48 each
        assert result.grant_set[1].rate == pytest.approx(0.5)
        assert result.grant_set[2].rate == pytest.approx(0.05)


class TestExclusiveUnits:
    def test_fast_path_avoided_on_conflict(self, box):
        gc = controller(box)
        # Both maxima need the scaler; rates alone would fit.
        a = request(1, box, 0.3, 0.1, exclusive_on_top=(1, "scaler"))
        b = request(2, box, 0.3, 0.1, exclusive_on_top=(1, "scaler"))
        result = gc.compute([a, b])
        owners = [
            tid
            for tid in (1, 2)
            if "scaler" in result.grant_set[tid].exclusive
        ]
        assert len(owners) <= 1

    def test_preferred_thread_gets_the_unit(self, box):
        gc = controller(box)
        a = request(1, box, 0.5, 0.1, name="A", exclusive_on_top=(1, "scaler"))
        b = request(2, box, 0.5, 0.1, name="B", exclusive_on_top=(1, "scaler"))
        box.set_default({box.policy_id("A"): 20, box.policy_id("B"): 70})
        result = gc.compute([a, b])
        # B is ranked higher: B holds the scaler, A is pushed off it.
        assert "scaler" in result.grant_set[2].exclusive
        assert "scaler" not in result.grant_set[1].exclusive
        assert result.exclusive_assignment == {"scaler": 2}

    def test_minimum_requiring_exclusive_rejected(self, box):
        gc = controller(box)
        entries = [
            ResourceListEntry(
                period=PERIOD,
                cpu_ticks=round(PERIOD * r),
                function=_fn,
                exclusive=frozenset({"scaler"}),
            )
            for r in (0.9, 0.8)
        ]
        bad = GrantRequest(
            thread_id=1,
            policy_id=box.register_task("bad"),
            resource_list=ResourceList(entries),
        )
        other = request(2, box, 0.9, 0.8, exclusive_on_top=(2, "scaler"))
        with pytest.raises(GrantError):
            gc.compute([other, bad])


class TestResultInvariants:
    def test_total_never_exceeds_capacity(self, box):
        gc = controller(box)
        rates = [0.9, 0.5, 0.25, 0.12, 0.05]
        reqs = [request(i, box, *rates) for i in range(1, 8)]
        result = gc.compute(reqs)
        assert result.grant_set.total_rate <= 0.96 + 1e-9

    def test_capacity_validation(self, box):
        with pytest.raises(GrantError):
            GrantController(capacity=0.0, policy_box=box)
