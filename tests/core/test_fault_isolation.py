"""Fault isolation: application crashes never break the guarantees."""

import pytest

from repro import TaskDefinition, units
from repro.core.threads import ThreadState
from repro.core.resource_list import ResourceList, ResourceListEntry
from repro.tasks.base import Compute

from tests.conftest import admit_simple


def ms(x):
    return units.ms_to_ticks(x)


def crasher_definition(name, crash_after_ms=5):
    def crasher(ctx):
        yield Compute(ms(crash_after_ms))
        raise RuntimeError("decoder hit corrupt bitstream")

    return TaskDefinition(
        name=name,
        resource_list=ResourceList([ResourceListEntry(ms(10), ms(6), crasher, name)]),
    )


def bad_protocol_definition(name):
    def misbehaver(ctx):
        yield Compute(ms(1))
        yield "not an op"

    return TaskDefinition(
        name=name,
        resource_list=ResourceList([ResourceListEntry(ms(10), ms(3), misbehaver, name)]),
    )


class TestPeriodicCrash:
    def test_crash_is_contained(self, ideal_rd):
        crasher = ideal_rd.admit(crasher_definition("crasher"))
        healthy = admit_simple(ideal_rd, "healthy", period_ms=10, rate=0.3)
        ideal_rd.run_for(ms(100))
        assert crasher.state is ThreadState.EXITED
        assert healthy.state is ThreadState.ACTIVE
        assert not ideal_rd.trace.misses(healthy.tid)

    def test_crash_is_recorded(self, ideal_rd):
        ideal_rd.admit(crasher_definition("crasher"))
        ideal_rd.run_for(ms(20))
        assert len(ideal_rd.kernel.crashes) == 1
        time, tid, message = ideal_rd.kernel.crashes[0]
        assert "corrupt bitstream" in message
        assert time == ms(5)

    def test_crashed_capacity_is_reclaimed(self, ideal_rd):
        ideal_rd.admit(crasher_definition("crasher"))  # 60 % commitment
        ideal_rd.run_for(ms(30))
        # After the crash, a 90 % task fits again.
        admit_simple(ideal_rd, "big", period_ms=10, rate=0.9)
        ideal_rd.run_for(ms(30))
        assert not ideal_rd.trace.misses()

    def test_crash_mid_overload_promotes_survivors(self, ideal_rd):
        from repro.tasks.busyloop import busyloop_definition

        survivor = ideal_rd.admit(busyloop_definition("survivor"))
        ideal_rd.admit(crasher_definition("crasher"))
        ideal_rd.run_for(ms(50))
        # With the crasher gone, the survivor climbs back to its max.
        assert survivor.grant.rate == pytest.approx(0.9)

    def test_protocol_misuse_is_a_crash(self, ideal_rd):
        bad = ideal_rd.admit(bad_protocol_definition("bad"))
        good = admit_simple(ideal_rd, "good", period_ms=10, rate=0.3)
        ideal_rd.run_for(ms(50))
        assert bad.state is ThreadState.EXITED
        assert ideal_rd.kernel.crashes
        assert not ideal_rd.trace.misses(good.tid)


class TestSporadicCrash:
    def test_sporadic_crash_returns_cpu_to_server(self, ideal_rd):
        from repro import SporadicServer

        def boom(ctx):
            yield Compute(ms(1))
            raise ValueError("sporadic job failed")

        def fine(ctx):
            total = ms(2)
            while total > 0:
                step = min(units.us_to_ticks(100), total)
                yield Compute(step)
                total -= step

        server = SporadicServer(ideal_rd, greedy=False)
        bad = server.spawn("boom", boom)
        good = server.spawn("fine", fine)
        ideal_rd.run_for(units.sec_to_ticks(1))
        assert bad.state is ThreadState.EXITED
        assert good.state is ThreadState.EXITED  # ran to completion
        assert server.thread.state is ThreadState.ACTIVE
        assert ideal_rd.kernel.crashes


class TestCrashDuringCallbacks:
    def test_crash_in_filter_callback_is_contained(self, ideal_rd):
        from repro import Semantics

        def task(ctx):
            while True:
                yield Compute(ms(1))

        def bad_filter(old, new):
            raise RuntimeError("filter blew up")

        definition = TaskDefinition(
            name="filtered",
            resource_list=ResourceList(
                [
                    ResourceListEntry(ms(10), ms(8), task, "hi"),
                    ResourceListEntry(ms(10), ms(1), task, "lo"),
                ]
            ),
            semantics=Semantics.RETURN,
            filter_callback=bad_filter,
        )
        ideal_rd.admit(definition)
        victim = admit_simple(ideal_rd, "victim", period_ms=10, rate=0.3)
        # Force a grant change so the filter fires.
        ideal_rd.at(ms(25), lambda: admit_simple(ideal_rd, "rival", 10, 0.5))
        ideal_rd.run_for(ms(100))
        # The victim and rival still never miss.
        assert not ideal_rd.trace.misses(victim.tid)
