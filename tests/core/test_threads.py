"""SimThread: queue-eligibility predicates in isolation."""

import pytest

from repro import units
from repro.core.grants import Grant
from repro.core.resource_list import ResourceListEntry
from repro.core.threads import SimThread, ThreadKind, ThreadState
from repro.workloads import grant_follower


def make_thread(kind=ThreadKind.PERIODIC):
    return SimThread(tid=1, name="t", kind=kind)


def give_grant(thread, now=0, period_ms=10, rate=0.5):
    period = units.ms_to_ticks(period_ms)
    entry = ResourceListEntry(period, round(period * rate), grant_follower)
    thread.grant = Grant(thread_id=thread.tid, entry=entry, entry_index=0)
    thread.period_index = 0
    thread.period_start = now
    thread.deadline = now + period
    thread.remaining = entry.cpu_ticks
    return thread


class TestTimeRemainingEligibility:
    def test_fresh_period_is_eligible(self):
        thread = give_grant(make_thread())
        assert thread.eligible_time_remaining(0)

    def test_not_before_period_start(self):
        thread = give_grant(make_thread(), now=100)
        assert not thread.eligible_time_remaining(50)
        assert thread.eligible_time_remaining(100)

    def test_not_when_grant_consumed(self):
        thread = give_grant(make_thread())
        thread.remaining = 0
        assert not thread.eligible_time_remaining(0)

    def test_not_when_declared_done(self):
        thread = give_grant(make_thread())
        thread.declared_done = True
        assert not thread.eligible_time_remaining(0)

    def test_not_when_blocked_or_quiescent(self):
        for state in (ThreadState.BLOCKED, ThreadState.QUIESCENT, ThreadState.EXITED):
            thread = give_grant(make_thread())
            thread.state = state
            assert not thread.eligible_time_remaining(0)

    def test_not_without_grant(self):
        assert not make_thread().eligible_time_remaining(0)


class TestOvertimeEligibility:
    def test_idle_always_eligible(self):
        idle = make_thread(ThreadKind.IDLE)
        assert idle.eligible_overtime(0)

    def test_exhausted_grant_with_live_generator(self):
        thread = give_grant(make_thread())
        thread.remaining = 0
        thread.gen = iter(())  # a live generator object
        thread.gen_exhausted = False
        thread.restart_pending = False
        assert thread.eligible_overtime(0)

    def test_done_without_overtime_request_is_not_eligible(self):
        thread = give_grant(make_thread())
        thread.remaining = 0
        thread.gen = iter(())
        thread.declared_done = True
        thread.wants_overtime = False
        assert not thread.eligible_overtime(0)

    def test_done_with_overtime_request_is_eligible(self):
        thread = give_grant(make_thread())
        thread.declared_done = True
        thread.wants_overtime = True
        thread.gen = iter(())
        thread.gen_exhausted = False
        assert thread.eligible_overtime(0)

    def test_time_remaining_wins_over_overtime(self):
        thread = give_grant(make_thread())
        assert thread.eligible_time_remaining(0)
        assert not thread.eligible_overtime(0)


class TestPendingWork:
    def test_fresh_period_counts_as_work(self):
        thread = give_grant(make_thread())
        thread.restart_pending = True
        assert thread.has_pending_work()

    def test_partial_compute_counts(self):
        thread = make_thread()
        thread.pending_compute = 100
        assert thread.has_pending_work()

    def test_exhausted_generator_is_no_work(self):
        thread = give_grant(make_thread())
        thread.restart_pending = False
        thread.gen = iter(())
        thread.gen_exhausted = True
        assert not thread.has_pending_work()

    def test_completed_call(self):
        thread = make_thread()
        assert thread.completed_call()  # no generator: vacuously done
        thread.gen = iter(())
        thread.gen_exhausted = False
        assert not thread.completed_call()
        thread.declared_done = True
        assert thread.completed_call()


class TestAssignment:
    def test_clear_assignment(self):
        thread = make_thread()
        target = make_thread(ThreadKind.SPORADIC)
        thread.assignment_target = target
        thread.assignment_remaining = 100
        thread.clear_assignment()
        assert thread.assignment_target is None
        assert thread.assignment_remaining == 0
