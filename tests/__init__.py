"""Test package."""
