"""Prometheus text exposition: headers, labels, histograms, byte stability."""

from repro.obs.prom import render_prometheus
from repro.obs.registry import MetricsRegistry


def build():
    registry = MetricsRegistry()
    c = registry.counter("repro_hops_total", "RPC hops", ("node",))
    c.inc(3, node="node00")
    c.inc(node="node01")
    g = registry.gauge("repro_headroom", "headroom")
    g.set(0.25)
    h = registry.histogram("repro_lat", "latency", (1.0, 10.0))
    h.observe(0.5)
    h.observe(4.0)
    return registry


class TestBucketOverrideStability:
    def test_unoverridden_metrics_render_byte_identically(self):
        # Configuring overrides for OTHER metrics must not perturb the
        # exposition of metrics using their declared buckets.
        baseline = render_prometheus(build())

        def build_with_unrelated_override():
            registry = MetricsRegistry(
                bucket_overrides={"repro_unrelated": (1.0, 2.0)}
            )
            c = registry.counter("repro_hops_total", "RPC hops", ("node",))
            c.inc(3, node="node00")
            c.inc(node="node01")
            g = registry.gauge("repro_headroom", "headroom")
            g.set(0.25)
            h = registry.histogram("repro_lat", "latency", (1.0, 10.0))
            h.observe(0.5)
            h.observe(4.0)
            return registry

        assert render_prometheus(build_with_unrelated_override()) == baseline

    def test_overridden_histogram_renders_its_new_buckets(self):
        registry = MetricsRegistry(bucket_overrides={"repro_lat": (5.0,)})
        h = registry.histogram("repro_lat", "latency", (1.0, 10.0))
        h.observe(4.0)
        text = render_prometheus(registry)
        assert 'repro_lat_bucket{le="5"} 1\n' in text
        assert 'le="1"' not in text and 'le="10"' not in text


class TestRendering:
    def test_help_and_type_headers(self):
        text = render_prometheus(build())
        assert "# HELP repro_hops_total RPC hops\n" in text
        assert "# TYPE repro_hops_total counter\n" in text
        assert "# TYPE repro_headroom gauge\n" in text
        assert "# TYPE repro_lat histogram\n" in text

    def test_labelled_samples(self):
        text = render_prometheus(build())
        assert 'repro_hops_total{node="node00"} 3\n' in text
        assert 'repro_hops_total{node="node01"} 1\n' in text
        assert "repro_headroom 0.25\n" in text

    def test_histogram_buckets_sum_count(self):
        text = render_prometheus(build())
        assert 'repro_lat_bucket{le="1"} 1\n' in text
        assert 'repro_lat_bucket{le="10"} 2\n' in text
        assert 'repro_lat_bucket{le="+Inf"} 2\n' in text
        assert "repro_lat_sum 4.5\n" in text
        assert "repro_lat_count 2\n" in text

    def test_unlabelled_empty_counter_renders_zero(self):
        registry = MetricsRegistry()
        registry.counter("repro_nothing_total", "never incremented")
        assert "repro_nothing_total 0\n" in render_prometheus(registry)

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("x", "x", ("detail",)).inc(detail='say "hi"\n')
        assert 'x{detail="say \\"hi\\"\\n"} 1\n' in render_prometheus(registry)

    def test_rendering_is_byte_stable(self):
        assert render_prometheus(build()) == render_prometheus(build())
        assert "\r" not in render_prometheus(build())
