"""Cluster telemetry: registry snapshots, fleet merges, the aggregator's
staleness/ordering discipline, and the broker's observed-load AIMD."""

import pytest

from repro import units
from repro.errors import SimulationError
from repro.obs.analysis.telemetry import (
    MISSES_METRIC,
    QOS_METRIC,
    ObservedLoad,
    TelemetryAggregator,
    TelemetrySnapshot,
    merge_snapshots,
    snapshot_registry,
)
from repro.obs.registry import MetricsRegistry


def registry_with(node_values):
    """A registry holding node-labelled misses/qos series plus one
    unlabelled gauge (which a per-node snapshot must skip)."""
    registry = MetricsRegistry()
    misses = registry.counter(MISSES_METRIC, "misses", ("node",))
    qos = registry.gauge(QOS_METRIC, "qos", ("node",))
    registry.gauge("repro_global_temperature", "no node label")
    for node, (miss_count, qos_value) in node_values.items():
        misses.inc(miss_count, node=node)
        qos.set(qos_value, node=node)
    return registry


class TestSnapshot:
    def test_node_filter_cuts_one_nodes_slice(self):
        registry = registry_with({"n0": (2, 0.5), "n1": (7, 1.0)})
        snap = snapshot_registry(registry, "n0", time=100, node_filter="n0")
        assert snap.metrics[MISSES_METRIC].series == {("n0",): 2}
        assert snap.metrics[QOS_METRIC].series == {("n0",): 0.5}
        # Metrics without a node label cannot be attributed to a node.
        assert "repro_global_temperature" not in snap.metrics

    def test_unfiltered_snapshot_keeps_everything(self):
        registry = registry_with({"n0": (1, 1.0)})
        snap = snapshot_registry(registry, "all", time=5)
        assert "repro_global_temperature" in snap.metrics
        assert snap.metrics[MISSES_METRIC].series == {("n0",): 1}

    def test_snapshot_is_a_frozen_copy(self):
        registry = registry_with({"n0": (1, 1.0)})
        snap = snapshot_registry(registry, "n0", time=5, node_filter="n0")
        registry.get(MISSES_METRIC).inc(10, node="n0")
        assert snap.metrics[MISSES_METRIC].series == {("n0",): 1}

    def test_histogram_series_are_copied(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_lat", "lat", (1.0, 10.0), ("node",))
        hist.observe(0.5, node="n0")
        snap = snapshot_registry(registry, "n0", time=5, node_filter="n0")
        hist.observe(5.0, node="n0")
        counts, inf_count, total = snap.metrics["repro_lat"].series[("n0",)]
        assert counts == [1, 1] and inf_count == 1 and total == 0.5


def snap(node, time, seq=0, misses=None, qos=None):
    registry = registry_with(
        {node: (misses if misses is not None else 0,
                qos if qos is not None else 1.0)}
    )
    return snapshot_registry(registry, node, time=time, seq=seq,
                             node_filter=node)


class TestMerge:
    def test_counters_sum_and_gauges_take_the_freshest(self):
        merged = merge_snapshots([
            snap("n0", time=100, misses=2, qos=0.5),
            snap("n1", time=200, misses=3, qos=0.9),
        ])
        assert merged.node == "fleet" and merged.time == 200
        series = merged.metrics[MISSES_METRIC].series
        assert series == {("n0",): 2, ("n1",): 3}

    def test_same_key_gauges_resolve_by_time(self):
        # Two snapshots write the SAME series key with different values
        # at different times; the merge must be input-order-free.
        a = snap("n0", time=100, qos=0.25)
        b = snap("n0", time=200, seq=1, qos=0.75)
        for order in ([a, b], [b, a]):
            merged = merge_snapshots(order)
            assert merged.metrics[QOS_METRIC].series[("n0",)] == 0.75

    def test_histogram_bucket_mismatch_is_an_error(self):
        def hist_snap(node, buckets):
            registry = MetricsRegistry(
                bucket_overrides={"repro_lat": buckets} if buckets else None
            )
            registry.histogram("repro_lat", "lat", (1.0, 10.0), ("node",))
            registry.get("repro_lat").observe(0.5, node=node)
            return snapshot_registry(registry, node, time=1, node_filter=node)

        with pytest.raises(SimulationError, match="bucket bounds differ"):
            merge_snapshots([
                hist_snap("n0", None),
                hist_snap("n1", (1.0, 5.0, 25.0)),
            ])

    def test_matching_histograms_add_bucket_wise(self):
        def hist_snap(node, value):
            registry = MetricsRegistry()
            registry.histogram("repro_lat", "lat", (1.0, 10.0), ("node",))
            registry.get("repro_lat").observe(value, node=node)
            return snapshot_registry(registry, node, time=1, node_filter=node)

        merged = merge_snapshots([hist_snap("n0", 0.5), hist_snap("n1", 5.0)])
        series = merged.metrics["repro_lat"].series
        assert series[("n0",)][0] == [1, 1]
        assert series[("n1",)][0] == [0, 1]

    def test_kind_conflict_is_an_error(self):
        a = TelemetrySnapshot(node="n0", time=1)
        a.metrics["m"] = snap("n0", 1).metrics[MISSES_METRIC]
        b = TelemetrySnapshot(node="n1", time=2)
        b.metrics["m"] = snap("n1", 2).metrics[QOS_METRIC]
        with pytest.raises(SimulationError, match="counter on one node"):
            merge_snapshots([a, b])


class TestAggregator:
    def test_stale_and_duplicate_sequences_are_rejected(self):
        agg = TelemetryAggregator()
        assert agg.ingest(snap("n0", time=100, seq=1))
        assert agg.ingest(snap("n0", time=200, seq=2))
        assert not agg.ingest(snap("n0", time=150, seq=1))  # reordered
        assert not agg.ingest(snap("n0", time=200, seq=2))  # duplicate
        assert (agg.ingested, agg.rejected_stale) == (2, 2)
        assert agg.latest("n0").seq == 2

    def test_misses_delta_is_against_the_previous_snapshot(self):
        agg = TelemetryAggregator()
        agg.ingest(snap("n0", time=100, seq=1, misses=3))
        load = agg.observed_load("n0")
        assert load.misses_delta == 3  # first snapshot: delta from zero
        agg.ingest(snap("n0", time=200, seq=2, misses=5))
        load = agg.observed_load("n0")
        assert load.misses_delta == 2
        assert load.time == 200

    def test_overloaded_signal(self):
        assert ObservedLoad(node="n", time=0, misses_delta=1).overloaded
        assert ObservedLoad(node="n", time=0, qos_fraction=0.9).overloaded
        assert not ObservedLoad(node="n", time=0).overloaded

    def test_staleness_bound(self):
        agg = TelemetryAggregator()
        agg.ingest(snap("n0", time=100, seq=1))
        assert agg.observed_load("n0", now=150, staleness=100) is not None
        assert agg.observed_load("n0", now=300, staleness=100) is None
        assert agg.observed_load("unknown") is None

    def test_fleet_merges_latest_snapshots(self):
        agg = TelemetryAggregator()
        agg.ingest(snap("n0", time=100, seq=1, misses=1))
        agg.ingest(snap("n1", time=100, seq=1, misses=2))
        fleet = agg.fleet()
        assert sum(fleet.metrics[MISSES_METRIC].series.values()) == 3


def hist_snap(node, time, seq, values):
    """A snapshot holding one node-labelled latency histogram."""
    registry = MetricsRegistry()
    hist = registry.histogram(
        "repro_grant_latency", "lat", (1.0, 10.0), ("node",)
    )
    for value in values:
        hist.observe(value, node=node)
    return snapshot_registry(
        registry, node, time=time, seq=seq, node_filter=node
    )


class TestMergeEdgeCases:
    """Delivery pathologies the bus makes routine: duplicated snapshots,
    collector restarts, and racks the collector only partially sees."""

    def test_duplicate_delivery_cannot_double_count_histograms(self):
        agg = TelemetryAggregator()
        assert agg.ingest(hist_snap("n0", time=100, seq=1, values=[0.5, 5.0]))
        assert agg.ingest(hist_snap("n1", time=100, seq=1, values=[5.0]))
        # The bus redelivers n0's snapshot (retry after a lost ack); the
        # seq discipline absorbs it before it can reach the fleet merge.
        assert not agg.ingest(
            hist_snap("n0", time=100, seq=1, values=[0.5, 5.0])
        )
        series = agg.fleet().metrics["repro_grant_latency"].series
        assert series[("n0",)] == [[1, 2], 2, 5.5]
        assert series[("n1",)] == [[0, 1], 1, 5.0]

    def test_merge_itself_adds_duplicates_bucket_wise(self):
        # merge_snapshots is pure data: fed the duplicate directly it
        # doubles every bucket — the aggregator's seq discipline is the
        # only thing between redelivery and double counting.
        dup = hist_snap("n0", time=100, seq=1, values=[0.5])
        merged = merge_snapshots([dup, dup])
        assert merged.metrics["repro_grant_latency"].series[("n0",)] == [
            [2, 2],
            2,
            1.0,
        ]

    def test_collector_restart_rejects_stale_seq(self):
        # A restarted collector has no seq memory; the first snapshot it
        # sees may be mid-stream.
        agg = TelemetryAggregator()
        assert agg.ingest(snap("n0", time=700, seq=7, misses=9))
        # A jitter-delayed snapshot cut before the restart lands later:
        # rejected, so state cannot roll backwards.
        assert not agg.ingest(snap("n0", time=500, seq=5, misses=6))
        assert agg.latest("n0").seq == 7
        # First post-restart load has no previous: the delta is the full
        # cumulative count (conservative: restarts over-report, never
        # under-report, an overload).
        assert agg.observed_load("n0").misses_delta == 9
        # Once the stream resumes, deltas are against the restart
        # baseline, not zero.
        assert agg.ingest(snap("n0", time=800, seq=8, misses=11))
        assert agg.observed_load("n0").misses_delta == 2
        assert (agg.ingested, agg.rejected_stale) == (2, 1)


class TestPartialRackVisibility:
    """When only part of a rack's telemetry survives the bus, AIMD must
    move weights only for nodes whose snapshots are inside the staleness
    bound — a silent node's weight stays exactly where it was."""

    @staticmethod
    def make_broker():
        from repro.cluster.broker import BrokerConfig, ClusterBroker
        from repro.cluster.placement import make_policy
        from repro.sim.messages import MessageBus
        from repro.sim.rng import RngRegistry

        bus = MessageBus(RngRegistry(7).stream("bus"))
        config = BrokerConfig(
            telemetry_aimd=True, telemetry_staleness_ticks=100
        )
        return ClusterBroker(
            bus, {"n0": 1.0, "n1": 1.0}, make_policy("best-fit"), config
        )

    def test_silent_nodes_weight_does_not_move(self):
        broker = self.make_broker()
        before = {name: view.weight for name, view in broker.views.items()}
        # n0's telemetry arrives fresh and degraded; n1's was dropped.
        broker._on_telemetry(snap("n0", time=100, seq=1, qos=0.5), now=150)
        assert broker.views["n0"].weight < before["n0"]
        assert broker.views["n1"].weight == before["n1"]

    def test_stale_snapshot_is_ingested_but_not_acted_on(self):
        broker = self.make_broker()
        before = broker.views["n0"].weight
        # Delivered 400 ticks after it was cut: outside the bound.  The
        # aggregator still keeps it (it is the freshest view of n0), but
        # the weight stays where it is.
        broker._on_telemetry(snap("n0", time=100, seq=1, qos=0.5), now=500)
        assert broker.telemetry.latest("n0") is not None
        assert broker.views["n0"].weight == before


class TestBrokerIntegration:
    @pytest.fixture(scope="class")
    def rack(self):
        from repro.obs.session import ObsSession
        from repro.scenarios import cluster_rack

        session = ObsSession()
        sim = cluster_rack(
            seed=0, horizon_sec=0.4, obs=session, telemetry=True
        )
        sim.run_until(sim.horizon)
        return sim

    def test_snapshots_flow_to_the_broker(self, rack):
        agg = rack.broker.telemetry
        assert agg.ingested > 0
        assert agg.nodes() == sorted(rack.nodes)

    def test_observed_load_reflects_measured_overload(self, rack):
        loads = [
            rack.broker.telemetry.observed_load(node)
            for node in rack.broker.telemetry.nodes()
        ]
        assert all(load is not None for load in loads)
        # The default rack oversubscribes: somebody is measurably degraded.
        assert any(load.qos_fraction < 1.0 for load in loads)

    def test_aimd_weights_follow_observed_load(self, rack):
        weights = {
            name: view.weight for name, view in rack.broker.views.items()
        }
        overloaded = {
            node
            for node in weights
            if (load := rack.broker.telemetry.observed_load(node))
            and load.qos_fraction < 1.0
        }
        healthy = set(weights) - overloaded
        assert overloaded and healthy
        assert max(weights[n] for n in overloaded) < min(
            weights[n] for n in healthy
        )

    def test_telemetry_requires_an_obs_session(self):
        from repro.scenarios import cluster_rack

        with pytest.raises(SimulationError, match="needs an ObsSession"):
            cluster_rack(seed=0, horizon_sec=0.1, telemetry=True)

    def test_telemetry_run_is_deterministic(self):
        from repro.obs.session import ObsSession
        from repro.scenarios import cluster_rack

        def run():
            session = ObsSession()
            sim = cluster_rack(
                seed=3, horizon_sec=0.2, obs=session, telemetry=True
            )
            sim.run_until(sim.horizon)
            weights = {
                name: view.weight for name, view in sim.broker.views.items()
            }
            return weights, session.events_jsonl()

        assert run() == run()
