"""ObsBus fan-out, ScopedBus node stamping, and the event type table."""

import dataclasses

import pytest

from repro.obs.events import (
    EVENT_TYPES,
    AdmissionEvent,
    ObsBus,
    ObsEvent,
    RpcEvent,
    ScopedBus,
    SwitchEvent,
)


class TestObsBus:
    def test_emit_fans_out_in_subscription_order(self):
        bus = ObsBus()
        seen = []
        bus.subscribe(lambda e: seen.append(("a", e)))
        bus.subscribe(lambda e: seen.append(("b", e)))
        event = SwitchEvent(time=27)
        bus.emit(event)
        assert seen == [("a", event), ("b", event)]

    def test_emit_without_subscribers_is_a_noop(self):
        bus = ObsBus()
        bus.emit(SwitchEvent(time=0))  # must not raise, must not store

    def test_events_are_immutable(self):
        event = AdmissionEvent(time=1, task="stb")
        with pytest.raises(dataclasses.FrozenInstanceError):
            event.task = "other"


class TestScopedBus:
    def test_scoped_bus_stamps_empty_node(self):
        bus = ObsBus()
        seen = []
        bus.subscribe(seen.append)
        ScopedBus(bus, "node03").emit(SwitchEvent(time=5, from_thread=1))
        assert seen[0].node == "node03"
        # The payload fields survive the re-stamp.
        assert seen[0].from_thread == 1

    def test_scoped_bus_keeps_an_explicit_node(self):
        bus = ObsBus()
        seen = []
        bus.subscribe(seen.append)
        ScopedBus(bus, "node03").emit(SwitchEvent(time=5, node="elsewhere"))
        assert seen[0].node == "elsewhere"

    def test_scopes_share_one_underlying_bus(self):
        bus = ObsBus()
        seen = []
        bus.subscribe(seen.append)
        ScopedBus(bus, "node00").emit(SwitchEvent(time=1))
        ScopedBus(bus, "node01").emit(SwitchEvent(time=2))
        assert [e.node for e in seen] == ["node00", "node01"]


class TestEventTypes:
    def test_every_registered_class_matches_its_tag(self):
        for tag, cls in EVENT_TYPES.items():
            assert cls.type == tag
            assert issubclass(cls, ObsEvent)

    def test_taxonomy_covers_the_documented_event_kinds(self):
        assert set(EVENT_TYPES) == {
            "activation",
            "admission",
            "policy-resolution",
            "grant-recompute",
            "grant-change",
            "context-switch",
            "grace-period",
            "period-close",
            "rpc",
            "migration",
            "slo-alert",
            "violation",
        }

    def test_rpc_event_defaults_are_wire_safe(self):
        event = RpcEvent(time=0)
        assert event.type == "rpc"
        assert event.trace_id == ""
        assert event.request_id == ""
