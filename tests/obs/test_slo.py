"""SLO specs: TOML parsing/validation, offline evaluation, the
streaming engine's transition-edge alerting, and burn rates."""

import pytest

from repro.errors import SimulationError
from repro.obs.analysis import (
    SloEngine,
    build_timelines,
    evaluate_slos,
    load_slo_file,
    parse_slo_toml,
)
from repro.obs.analysis.slo import BURN_RATE_CAP, _burn_rate
from repro.obs.events import (
    AdmissionEvent,
    ObsBus,
    PeriodCloseEvent,
    ViolationEvent,
)


def spec_toml(**overrides):
    table = {
        "name": "grants",
        "metric": "grant_delivery_ratio",
        "op": ">=",
        "threshold": 1.0,
        "per": "task",
    }
    table.update(overrides)
    lines = ["[[slo]]"]
    for key, value in table.items():
        if isinstance(value, str):
            lines.append(f'{key} = "{value}"')
        else:
            lines.append(f"{key} = {value}")
    return "\n".join(lines) + "\n"


def close(thread_id, index, start, deadline, *, missed=False, voided=False,
          completion=None, node=""):
    if completion is None:
        completion = -1 if missed or voided else start + (deadline - start) // 2
    return PeriodCloseEvent(
        time=deadline, node=node, thread_id=thread_id, period_index=index,
        start=start, completion=completion, granted=100,
        delivered=40 if missed else 100, missed=missed, voided=voided,
    )


class TestParsing:
    def test_full_spec_round_trips(self):
        (spec,) = parse_slo_toml(
            spec_toml(window_periods=7, description="headline guarantee")
        )
        assert spec.name == "grants"
        assert spec.metric == "grant_delivery_ratio"
        assert (spec.op, spec.threshold) == (">=", 1.0)
        assert spec.window_periods == 7
        assert spec.description == "headline guarantee"

    def test_defaults(self):
        (spec,) = parse_slo_toml(
            '[[slo]]\nname = "n"\nmetric = "deadline_misses"\nthreshold = 0\n'
        )
        assert (spec.op, spec.per, spec.window_periods) == ("<=", "task", 20)

    @pytest.mark.parametrize(
        "toml, match",
        [
            ("", r"expected at least one \[\[slo\]\]"),
            ("not toml [", "invalid TOML"),
            (spec_toml(name=""), "'name' is required"),
            (spec_toml() + spec_toml(), "duplicate slo name"),
            (spec_toml(metric="bogus"), "unknown metric 'bogus'"),
            (spec_toml(op="!="), "unknown op"),
            (spec_toml(per="rack"), "'per' must be task, node, or fleet"),
            (spec_toml(window_periods=0), "positive integer"),
            (spec_toml(window_periods=2.5), "positive integer"),
            (
                spec_toml(metric="violations"),
                "node/fleet-scoped",
            ),
        ],
    )
    def test_invalid_specs_are_rejected(self, toml, match):
        with pytest.raises(SimulationError, match=match):
            parse_slo_toml(toml)

    def test_threshold_must_be_a_number(self):
        bad = '[[slo]]\nname = "n"\nmetric = "deadline_misses"\nthreshold = "x"\n'
        with pytest.raises(SimulationError, match="'threshold' must be a number"):
            parse_slo_toml(bad)

    def test_percentile_metric_names_parse(self):
        text = spec_toml(metric="p95_delivery_latency_ticks", op="<=", threshold=500)
        assert parse_slo_toml(text)[0].metric == "p95_delivery_latency_ticks"

    def test_load_slo_file_missing(self, tmp_path):
        with pytest.raises(SimulationError, match="no SLO spec"):
            load_slo_file(tmp_path / "slo.toml")

    def test_load_slo_file(self, tmp_path):
        path = tmp_path / "slo.toml"
        path.write_text(spec_toml(), encoding="utf-8")
        assert len(load_slo_file(path)) == 1


class TestBurnRate:
    def test_at_objective_is_one(self):
        assert _burn_rate(1.0, 1.0, ">=") == 1.0
        assert _burn_rate(5.0, 5.0, "<=") == 1.0

    def test_direction(self):
        assert _burn_rate(0.5, 1.0, ">=") == 2.0  # delivering half the promise
        assert _burn_rate(4.0, 2.0, "<=") == 2.0  # double the latency budget
        assert _burn_rate(2.0, 1.0, ">=") == 0.5  # over-delivering

    def test_zero_division_is_capped(self):
        assert _burn_rate(0.0, 1.0, ">=") == BURN_RATE_CAP
        assert _burn_rate(3.0, 0.0, "<=") == BURN_RATE_CAP
        assert _burn_rate(0.0, 0.0, "<=") == 1.0


class TestOfflineEvaluation:
    def test_per_task_ratio_flags_the_missing_task(self):
        events = [
            AdmissionEvent(time=0, task="good", thread_id=1),
            AdmissionEvent(time=0, task="bad", thread_id=2),
            close(1, 0, 0, 100),
            close(2, 0, 0, 100, missed=True),
        ]
        specs = parse_slo_toml(spec_toml())
        results = evaluate_slos(specs, build_timelines(events), events)
        by_subject = {r.subject: r for r in results}
        assert by_subject["good"].ok and by_subject["good"].value == 1.0
        assert not by_subject["bad"].ok and by_subject["bad"].value == 0.0
        assert by_subject["bad"].burn_rate == BURN_RATE_CAP

    def test_fleet_scope_pools_every_period(self):
        events = [close(1, 0, 0, 100, node="n0"), close(2, 0, 0, 100, node="n1",
                                                        missed=True)]
        specs = parse_slo_toml(
            spec_toml(metric="deadline_misses", op="<=", threshold=0, per="fleet")
        )
        (result,) = evaluate_slos(specs, build_timelines(events), events)
        assert result.subject == "fleet"
        assert result.value == 1.0
        assert not result.ok

    def test_violations_metric_counts_per_node(self):
        events = [
            ViolationEvent(time=5, node="n0", rule="r", detail="d"),
            ViolationEvent(time=6, node="n0", rule="r", detail="d"),
        ]
        specs = parse_slo_toml(
            spec_toml(metric="violations", op="<=", threshold=0, per="node")
        )
        results = evaluate_slos(specs, [], events)
        by_subject = {r.subject: r for r in results}
        assert by_subject["n0"].value == 2.0 and not by_subject["n0"].ok


class TestStreamingEngine:
    def feed(self, engine_bus, events):
        for event in events:
            engine_bus.emit(event)

    def test_alert_fires_on_transition_only(self):
        bus = ObsBus()
        engine = SloEngine(bus, parse_slo_toml(spec_toml(window_periods=4)))
        self.feed(bus, [
            AdmissionEvent(time=0, task="video", thread_id=1),
            close(1, 0, 0, 100),
            close(1, 1, 100, 200, missed=True),   # ratio drops: one alert
            close(1, 2, 200, 300, missed=True),   # still violating: no new alert
        ])
        assert len(engine.alerts) == 1
        alert = engine.alerts[0]
        assert alert.slo == "grants" and alert.subject == "video"
        assert alert.value == pytest.approx(0.5)
        assert alert.type == "slo-alert"

    def test_alert_lands_on_the_bus_it_watches(self):
        bus = ObsBus()
        seen = []
        bus.subscribe(seen.append)
        SloEngine(bus, parse_slo_toml(spec_toml()))
        self.feed(bus, [close(1, 0, 0, 100, missed=True)])
        assert [e.type for e in seen] == ["period-close", "slo-alert"]

    def test_recovery_rearms_the_alarm(self):
        bus = ObsBus()
        engine = SloEngine(bus, parse_slo_toml(spec_toml(window_periods=1)))
        self.feed(bus, [
            close(1, 0, 0, 100, missed=True),   # violate: alert 1
            close(1, 1, 100, 200),              # window of 1 recovers
            close(1, 2, 200, 300, missed=True),  # violate again: alert 2
        ])
        assert len(engine.alerts) == 2

    def test_rolling_window_forgets_old_misses(self):
        bus = ObsBus()
        engine = SloEngine(bus, parse_slo_toml(spec_toml(window_periods=2)))
        self.feed(bus, [
            close(1, 0, 0, 100, missed=True),
            close(1, 1, 100, 200),
            close(1, 2, 200, 300),  # miss fell out of the 2-period window
        ])
        assert len(engine.alerts) == 1
        assert not engine._violating[("grants", "thread-1")]

    def test_scope_metric_alerts_cumulatively(self):
        bus = ObsBus()
        engine = SloEngine(
            bus,
            parse_slo_toml(
                spec_toml(metric="violations", op="<=", threshold=1, per="fleet")
            ),
        )
        self.feed(bus, [
            ViolationEvent(time=5, rule="r", detail="d"),       # at threshold: ok
            ViolationEvent(time=6, rule="r", detail="d"),       # second: alert
            ViolationEvent(time=7, rule="r", detail="d"),       # still violating
        ])
        assert len(engine.alerts) == 1
        assert engine.alerts[0].value == 2.0

    def test_engine_ignores_its_own_alerts(self):
        bus = ObsBus()
        engine = SloEngine(bus, parse_slo_toml(spec_toml(window_periods=1)))
        self.feed(bus, [close(1, 0, 0, 100, missed=True)])
        # The alert was emitted onto the bus the engine subscribes to; a
        # feedback loop would recurse or double-count.
        assert len(engine.alerts) == 1

    def test_subjects_use_admitted_names_per_node(self):
        bus = ObsBus()
        engine = SloEngine(bus, parse_slo_toml(spec_toml()))
        self.feed(bus, [
            AdmissionEvent(time=0, task="video", thread_id=1, node="n3"),
            close(1, 0, 0, 100, missed=True, node="n3"),
        ])
        assert engine.alerts[0].subject == "n3/video"
