"""Span-tree edge cases on real cluster runs: spans crossing a
migration, traces surviving RPC retries on a lossy bus, and spans still
open when the simulation ends."""

import pytest

from repro.obs.session import ObsSession
from repro.scenarios import cluster_rack


def run_rack(seed=0, horizon_sec=0.4, drop_rate=0.0, **kwargs):
    session = ObsSession()
    sim = cluster_rack(
        seed=seed,
        horizon_sec=horizon_sec,
        drop_rate=drop_rate,
        obs=session,
        **kwargs,
    )
    sim.run_until(sim.horizon)
    return sim, session


class TestMigrationSpans:
    @pytest.fixture(scope="class")
    def migrated(self):
        # The default rack oversubscribes, so the broker migrates tasks
        # off degraded nodes.
        sim, session = run_rack(seed=0, horizon_sec=0.6)
        assert sim.broker.stats.migrations_started > 0
        return sim, session

    def test_migrate_span_crosses_to_the_target_node(self, migrated):
        _, session = migrated
        migrate_roots = [
            s for s in session.spans.spans if s.name.startswith("migrate:")
        ]
        assert migrate_roots
        crossed = 0
        for root in migrate_roots:
            children = session.spans.children_of(root)
            # The re-admission on the target node is a child of the
            # migration: one trace spans both machines.
            admits = [c for c in children if c.name.startswith("admit:")]
            for admit in admits:
                assert admit.trace_id == root.trace_id
                assert admit.parent_id == root.span_id
            crossed += len(admits)
        assert crossed > 0

    def test_migrate_spans_resolve_to_a_terminal_status(self, migrated):
        sim, session = migrated
        sim.broker  # the run completed; ops must not stay 'started'
        statuses = {
            s.status
            for s in session.spans.spans
            if s.name.startswith("migrate:") and s.finished
        }
        assert statuses <= {"completed", "failed", "cancelled", "unfinished"}
        assert "completed" in statuses


class TestRetryTracing:
    @pytest.fixture(scope="class")
    def lossy(self):
        # A third of all messages vanish: the broker's RPC layer has to
        # retry, and every retry must stay inside the original trace.
        sim, session = run_rack(seed=5, horizon_sec=0.4, drop_rate=0.3)
        rpc = [e for e in session.events if e.type == "rpc"]
        assert any(e.action == "retry" for e in rpc)
        return sim, session, rpc

    def test_retries_keep_the_request_id(self, lossy):
        _, _, rpc = lossy
        retries = [e for e in rpc if e.action == "retry"]
        sent_ids = {e.request_id for e in rpc if e.action == "send"}
        for retry in retries:
            assert retry.request_id in sent_ids

    def test_every_send_of_one_rpc_shares_the_trace(self, lossy):
        _, _, rpc = lossy
        traces_by_request = {}
        for event in rpc:
            if event.action != "send" or not event.trace_id:
                continue
            traces_by_request.setdefault(event.request_id, set()).add(
                event.trace_id
            )
        resent = {
            rid: traces
            for rid, traces in traces_by_request.items()
            if sum(1 for e in rpc if e.action == "send" and e.request_id == rid) > 1
        }
        assert resent, "expected at least one resent RPC under 30% drop"
        for traces in resent.values():
            assert len(traces) == 1  # the retry reused the original context

    def test_remote_receive_lands_in_the_senders_trace(self, lossy):
        _, _, rpc = lossy
        send_traces = {
            (e.request_id): e.trace_id
            for e in rpc
            if e.action == "send" and e.trace_id
        }
        received = [
            e for e in rpc
            if e.action == "receive" and e.trace_id and e.request_id in send_traces
        ]
        assert received
        for event in received:
            assert event.trace_id == send_traces[event.request_id]


class TestUnclosedSpans:
    def late_submission_run(self):
        # A task submitted 50 us before the horizon: its admit RPC is
        # still on the wire (100 us bus latency) when the run ends, so
        # the place/admit spans are open at sim end.
        from repro import units
        from repro.tasks.mpeg import MpegDecoder

        session = ObsSession()
        sim = cluster_rack(seed=1, horizon_sec=0.05, sessions=2, obs=session)
        sim.submit_at(
            sim.horizon - units.us_to_ticks(50),
            "late-task",
            MpegDecoder("late-task").definition(),
        )
        sim.run_until(sim.horizon)
        return sim, session

    def test_sim_end_closes_open_spans_as_unfinished(self, tmp_path):
        sim, session = self.late_submission_run()
        open_before = [s for s in session.spans.spans if not s.finished]
        assert open_before, "an in-flight admission must leave spans open"
        session.write(tmp_path, now=sim.now)
        assert all(s.finished for s in session.spans.spans)
        unfinished = [
            s for s in session.spans.spans if s.status == "unfinished"
        ]
        assert len(unfinished) >= len(open_before)
        for span in unfinished:
            assert span.end == sim.now

    def test_write_is_idempotent_on_closed_spans(self, tmp_path):
        sim, session = self.late_submission_run()
        session.write(tmp_path / "a", now=sim.now)
        ends = [s.end for s in session.spans.spans]
        session.write(tmp_path / "b", now=sim.now + 999)
        # finish_open never reopens or re-stamps an already closed span.
        assert [s.end for s in session.spans.spans] == ends
