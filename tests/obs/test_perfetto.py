"""Chrome trace-event export: metadata, segments, span pairs, instants."""

import json
from dataclasses import dataclass

from repro.obs.events import AdmissionEvent, MigrationEvent, SwitchEvent
from repro.obs.perfetto import perfetto_trace, perfetto_trace_json
from repro.obs.spans import SpanTracker


@dataclass
class Seg:
    thread_id: int
    start: int
    end: int
    kind: str


def sample_inputs():
    tracker = SpanTracker()
    root = tracker.start("place:x", 0, task="x")
    child = tracker.start("admit:node00", 0, parent=root)
    tracker.finish(child, 54, status="ok")
    tracker.finish(root, 54, status="admitted")
    schedules = {
        "node00": (
            [Seg(1, 0, 270, "granted"), Seg(0, 270, 540, "idle")],
            {1: "stb-video"},
        )
    }
    events = [
        AdmissionEvent(time=27, node="node00", task="x", outcome="accepted"),
        MigrationEvent(time=54, task="x", source="node00", target="node01"),
        SwitchEvent(time=1, node="node00"),  # not an instant type
    ]
    return tracker.spans, schedules, events


class TestDocument:
    def test_process_and_thread_metadata(self):
        doc = perfetto_trace(*sample_inputs())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {(e["name"], e["pid"], e["tid"]): e["args"]["name"] for e in meta}
        assert names[("process_name", 0, 0)] == "cluster (spans + decisions)"
        assert names[("process_name", 1, 0)] == "node00"
        assert names[("thread_name", 1, 1)] == "stb-video"

    def test_empty_node_name_renders_as_machine(self):
        doc = perfetto_trace(schedules={"": ([], {})})
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(e["args"]["name"] == "machine" for e in meta)

    def test_run_segments_skip_idle(self):
        doc = perfetto_trace(*sample_inputs())
        segments = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(segments) == 1
        (seg,) = segments
        # 270 ticks at 27 ticks/us is a 10us slice starting at t=0.
        assert seg["ts"] == 0
        assert seg["dur"] == 10.0
        assert seg["name"] == "stb-video [granted]"
        assert "granted" in seg["cat"]

    def test_span_pairs_share_trace_id(self):
        spans, _, _ = sample_inputs()
        doc = perfetto_trace(spans=spans)
        begins = [e for e in doc["traceEvents"] if e["ph"] == "b"]
        ends = [e for e in doc["traceEvents"] if e["ph"] == "e"]
        assert len(begins) == len(ends) == 2
        assert {e["id"] for e in begins + ends} == {"t0001"}
        by_name = {e["name"]: e for e in begins}
        assert by_name["admit:node00"]["args"]["parent_id"] == 1
        assert by_name["place:x"]["args"]["status"] == "admitted"

    def test_zero_length_span_still_orders_b_before_e(self):
        tracker = SpanTracker()
        tracker.finish(tracker.start("instant", 100), 100)
        doc = perfetto_trace(spans=tracker.spans)
        b = next(e for e in doc["traceEvents"] if e["ph"] == "b")
        e = next(e for e in doc["traceEvents"] if e["ph"] == "e")
        assert e["ts"] > b["ts"]

    def test_decision_events_become_instants_on_their_node(self):
        doc = perfetto_trace(*sample_inputs())
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["admission", "migration"]
        admission, migration = instants
        assert admission["pid"] == 1  # node00's track group
        assert migration["pid"] == 0  # no node: cluster track
        # Empty-string / sentinel fields are elided from the marker args.
        assert "error" not in admission["args"]

    def test_json_is_canonical_and_loads(self):
        text = perfetto_trace_json(*sample_inputs())
        assert text == perfetto_trace_json(*sample_inputs())
        doc = json.loads(text)
        assert doc["otherData"]["timebase"] == "27 ticks per microsecond"
        assert doc["displayTimeUnit"] == "ms"
