"""ObsSession: event->metric bookkeeping, artifact writing, summaries."""

import json

import pytest

from repro.obs.events import (
    AdmissionEvent,
    GraceEvent,
    GrantRecomputeEvent,
    MigrationEvent,
    PeriodCloseEvent,
    RpcEvent,
    SwitchEvent,
    ViolationEvent,
)
from repro.obs.session import ObsSession


@pytest.fixture
def session():
    return ObsSession()


class TestMetricsSubscriber:
    def test_switch_events_feed_count_and_cost(self, session):
        session.bus.emit(SwitchEvent(time=1, kind="preempt", cost_ticks=189))
        session.bus.emit(SwitchEvent(time=2, kind="preempt", cost_ticks=189))
        assert session.m_switches.value(node="", kind="preempt") == 2
        assert session.m_switch_cost.value(node="", kind="preempt") == 378

    def test_admission_events_feed_outcomes_and_headroom(self, session):
        session.bus.emit(AdmissionEvent(time=1, outcome="accepted", headroom=0.4))
        session.bus.emit(AdmissionEvent(time=2, outcome="denied", headroom=0.4))
        assert session.m_admissions.value(node="", outcome="accepted") == 1
        assert session.m_admissions.value(node="", outcome="denied") == 1
        assert session.m_headroom.value(node="") == pytest.approx(0.4)

    def test_recompute_events_feed_gauges_and_histograms(self, session):
        session.bus.emit(
            GrantRecomputeEvent(
                time=1, requests=3, degraded=1, qos_fraction=0.8, headroom=0.1
            )
        )
        assert session.m_recomputes.value(node="") == 1
        assert session.m_recompute_size.count(node="") == 1
        assert session.m_degraded.value(node="") == 1
        assert session.m_qos.value(node="") == pytest.approx(0.8)

    def test_period_close_counts_only_misses_and_voids(self, session):
        session.bus.emit(PeriodCloseEvent(time=1, missed=True))
        session.bus.emit(PeriodCloseEvent(time=2, voided=True))
        session.bus.emit(PeriodCloseEvent(time=3))
        assert session.m_misses.value(node="") == 1
        assert session.m_voided.value(node="") == 1

    def test_rpc_retry_attempts_feed_the_histogram(self, session):
        session.bus.emit(RpcEvent(time=1, action="send", kind="admit"))
        session.bus.emit(RpcEvent(time=2, action="retry", kind="admit", attempt=2))
        assert session.m_rpc.value(action="send", kind="admit") == 1
        assert session.m_rpc.value(action="retry", kind="admit") == 1
        assert session.m_rpc_attempts.count() == 1
        assert session.m_rpc_attempts.sum() == 2

    def test_grace_migration_violation_counters(self, session):
        session.bus.emit(GraceEvent(time=1, honoured=False))
        session.bus.emit(MigrationEvent(time=2, outcome="completed"))
        session.bus.emit(ViolationEvent(time=3, rule="edf-order"))
        assert session.m_grace.value(node="", honoured="false") == 1
        assert session.m_migrations.value(outcome="completed") == 1
        assert session.m_violations.value(node="", rule="edf-order") == 1


class TestExports:
    def test_events_jsonl_matches_collected_events(self, session):
        session.bus.emit(SwitchEvent(time=5))
        assert len(session.events) == 1
        line = session.events_jsonl().strip()
        assert json.loads(line)["type"] == "context-switch"

    def test_write_emits_the_three_artifacts(self, session, tmp_path):
        session.bus.emit(AdmissionEvent(time=1, task="a"))
        paths = session.write(tmp_path / "obs", now=100)
        assert paths["events"].name == "events.jsonl"
        assert paths["metrics"].name == "metrics.prom"
        assert paths["trace"].name == "trace.perfetto.json"
        for path in paths.values():
            assert path.exists()
        assert "repro_admissions_total" in paths["metrics"].read_text()
        json.loads(paths["trace"].read_text())  # well-formed

    def test_write_closes_open_spans_at_now(self, session, tmp_path):
        session.spans.start("place:x", 10)
        session.write(tmp_path, now=250)
        assert session.spans.spans[0].end == 250

    def test_schedule_names_may_be_deferred(self, session):
        """A zero-arg callable resolves at export time — threads are
        created mid-run, after the schedule is registered."""
        names = {}
        session.add_schedule("node00", [], lambda: names)
        names[1] = "late-thread"
        doc = json.loads(session.perfetto_json(now=0))
        thread_meta = [
            e for e in doc["traceEvents"] if e.get("name") == "thread_name"
        ]
        assert thread_meta[0]["args"]["name"] == "late-thread"

    def test_summary_counts_by_type(self, session):
        session.bus.emit(SwitchEvent(time=1))
        session.bus.emit(SwitchEvent(time=2))
        session.bus.emit(AdmissionEvent(time=3))
        text = session.summary()
        assert "3 events" in text
        assert "context-switch=2" in text
        assert "admission=1" in text
