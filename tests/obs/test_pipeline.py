"""Unit tests for the columnar obs pipeline: arenas, shipping, the
colfile format, the drop-in session, and the query/explain engine."""

import json

import pytest

from repro.errors import SimulationError
from repro.obs.colfile import (
    ColumnarFormatError,
    columnar_payload,
    encode_columnar,
    load_columnar,
    read_columnar,
    write_columnar,
)
from repro.obs.events import (
    AdmissionEvent,
    GrantChangeEvent,
    GrantRecomputeEvent,
    PeriodCloseEvent,
    SwitchEvent,
)
from repro.obs.log import events_to_jsonl
from repro.obs.pipeline import (
    ArenaBus,
    ChunkShipper,
    EventArena,
    PipelineObsSession,
    Query,
    RackCollector,
    RootCollector,
    SeqTracker,
    causal_chain,
    check_loss_invariant,
    describe,
    explain_miss,
    find_misses,
    format_line,
    select,
)


def switches(n, node="", start=0):
    return [
        SwitchEvent(
            time=start + i * 27,
            from_thread=i % 4,
            to_thread=(i + 1) % 4,
            cost_ticks=54,
            node=node,
        )
        for i in range(n)
    ]


class TestEventArena:
    def test_append_and_materialize_preserves_order(self):
        arena = EventArena(node="n0")
        events = switches(3, node="n0") + [
            AdmissionEvent(time=100, task="v", thread_id=1, node="n0")
        ]
        for event in events:
            arena.append_event(event)
        assert len(arena) == 4
        assert arena.materialize() == events

    def test_ring_overwrite_counts_evicted_rows(self):
        arena = EventArena(node="n0", capacity=2)
        for event in switches(5, node="n0"):
            arena.append_event(event)
        assert len(arena) == 2
        assert arena.overwritten == {"context-switch": 3}
        # The two survivors are the newest two.
        assert [e.time for e in arena.materialize()] == [81, 108]

    def test_capacity_below_one_is_rejected(self):
        with pytest.raises(SimulationError):
            EventArena(capacity=0)

    def test_cut_head_tail_sampling_is_deterministic(self):
        arena = EventArena(node="n0")
        for event in switches(10, node="n0"):
            arena.append_event(event)
        order, columns, cum = arena.cut(max_events=4)
        assert order == ["context-switch"] * 4
        # Head 2 + tail 2 survive; the middle 6 are sampled out.
        assert columns["context-switch"]["time"] == [0, 27, 216, 243]
        assert arena.sampled_out == {"context-switch": 6}
        assert cum["emitted"] == {"context-switch": 10}
        assert cum["sampled_out"] == {"context-switch": 6}

    def test_cut_is_incremental(self):
        arena = EventArena(node="n0")
        for event in switches(2, node="n0"):
            arena.append_event(event)
        first, _, _ = arena.cut()
        arena.append_event(
            AdmissionEvent(time=999, task="v", thread_id=1, node="n0")
        )
        second, columns, cum = arena.cut()
        assert first == ["context-switch"] * 2
        assert second == ["admission"]
        assert columns["admission"]["time"] == [999]
        assert cum["emitted"] == {"admission": 1, "context-switch": 2}

    def test_cut_max_events_below_two_is_rejected(self):
        with pytest.raises(SimulationError):
            EventArena().cut(max_events=1)


class TestArenaBus:
    def test_empty_bus_is_truthy(self):
        assert ArenaBus()
        assert len(ArenaBus().arena()) == 0

    def test_snapshot_columns_matches_eager_encoding(self):
        events = switches(3, node="a") + switches(2, node="b", start=1000)
        bus = ArenaBus()
        for event in events:
            bus.emit(event)
        columns, order = bus.snapshot_columns()
        assert columnar_payload(columns, order) == encode_columnar(events)

    def test_subscribers_still_see_typed_events_from_fast_paths(self):
        bus = ArenaBus()
        seen = []
        bus.subscribe(seen.append)
        bus.emit_switch(27, 1, 2, "involuntary", 54, node="n0")
        assert seen == [
            SwitchEvent(
                time=27,
                from_thread=1,
                to_thread=2,
                kind="involuntary",
                cost_ticks=54,
                node="n0",
            )
        ]
        assert bus.materialize() == seen


class TestColfile:
    def test_disk_round_trip(self, tmp_path):
        events = switches(4, node="n0")
        path = write_columnar(tmp_path / "events.col.json", encode_columnar(events))
        assert load_columnar(path) == events
        assert read_columnar(path)["count"] == 4

    def test_wrong_format_is_rejected_with_location(self, tmp_path):
        path = tmp_path / "events.col.json"
        path.write_text(json.dumps({"format": "not-columnar"}))
        with pytest.raises(ColumnarFormatError, match="events.col.json"):
            load_columnar(path)

    def test_unknown_version_is_rejected(self):
        payload = encode_columnar(switches(1))
        payload["version"] = 999
        with pytest.raises(ColumnarFormatError, match="version"):
            from repro.obs.colfile import decode_columnar

            decode_columnar(payload)

    def test_loss_accounting_rides_the_payload(self):
        payload = encode_columnar(switches(1), loss={"totals": {"dropped": 3}})
        assert payload["loss"] == {"totals": {"dropped": 3}}


class TestSeqTracker:
    def test_in_order_stream_has_no_loss(self):
        tracker = SeqTracker()
        assert all(tracker.accept(i) for i in range(4))
        assert tracker.lost() == 0
        assert tracker.received() == 4

    def test_duplicates_are_rejected(self):
        tracker = SeqTracker()
        assert tracker.accept(0)
        assert not tracker.accept(0)
        assert tracker.received() == 1

    def test_gap_counts_as_lost_until_the_late_chunk_lands(self):
        tracker = SeqTracker()
        assert tracker.accept(0)
        assert tracker.accept(2)  # 1 is in flight or gone
        assert tracker.lost() == 1
        assert tracker.accept(1)  # jitter-reordered, not lost after all
        assert tracker.lost() == 0


class _DirectToRoot:
    """Transport stub: chunk sends land straight on a RootCollector."""

    def __init__(self, root, drop_seqs=()):
        self.root = root
        self.drop_seqs = set(drop_seqs)

    def send(self, src, dst, kind, payload, now):
        if payload["seq"] not in self.drop_seqs:
            self.root.on_node_chunk(payload)


class TestShipping:
    def test_empty_flush_keeps_the_seq_stream_and_counters(self):
        bus = ArenaBus()
        root = RootCollector()
        shipper = ChunkShipper(bus.arena("n0"), _DirectToRoot(root), "rack0")
        chunk = shipper.flush(0)
        assert chunk["count"] == 0 and chunk["seq"] == 0
        accounting = root.accounting(chunks_sent={"n0": shipper.seq})
        assert check_loss_invariant(accounting) == []
        assert accounting["chunks"]["node_lost"] == 0

    def test_lost_chunk_rows_are_counted_not_silent(self):
        bus = ArenaBus()
        root = RootCollector()
        shipper = ChunkShipper(
            bus.arena("n0"), _DirectToRoot(root, drop_seqs={0}), "rack0"
        )
        for event in switches(3, node="n0"):
            bus.emit(event)
        shipper.flush(100)  # seq 0: dropped in flight, carries 3 rows
        bus.emit_switch(999, 0, 1, "voluntary", 54, node="n0")
        shipper.flush(200)  # seq 1: delivered, carries the truth counters
        accounting = root.accounting(
            truth=bus.cum(), chunks_sent={"n0": shipper.seq}
        )
        assert check_loss_invariant(accounting) == []
        row = accounting["kinds"]["context-switch"]
        assert row == {
            "emitted": 4,
            "delivered": 1,
            "dropped": 3,
            "sampled_out": 0,
            "overwritten": 0,
        }
        assert accounting["nodes"]["n0"]["chunks"]["lost"] == 1

    def test_rack_batches_reach_the_root_intact(self):
        bus = ArenaBus()
        root = RootCollector()

        class _ToRack:
            def __init__(self, rack):
                self.rack = rack

            def send(self, src, dst, kind, payload, now):
                self.rack.on_chunk(payload)

        class _Sink:
            def send(self, src, dst, kind, payload, now):
                pass

        rack = RackCollector("rack0", _Sink())
        shipper = ChunkShipper(bus.arena("n0"), _ToRack(rack), "rack0")
        for event in switches(2, node="n0"):
            bus.emit(event)
        shipper.flush(50)
        batch = rack.flush(60)
        assert [c["seq"] for c in batch["chunks"]] == [0]
        root.on_rack_batch(batch)
        accounting = root.accounting(truth=bus.cum())
        assert check_loss_invariant(accounting) == []
        assert accounting["totals"]["delivered"] == 2
        assert accounting["chunks"]["rack_batches_delivered"] == 1


class TestPipelineObsSession:
    def test_write_emits_the_columnar_artifacts_too(self, tmp_path):
        session = PipelineObsSession()
        for event in switches(3, node="n0"):
            session.bus.emit(event)
        session.write(tmp_path, now=1000)
        for name in (
            "events.jsonl",
            "metrics.prom",
            "trace.perfetto.json",
            "events.col.json",
            "pipeline.json",
            "pipeline.prom",
        ):
            assert (tmp_path / name).is_file(), name
        assert load_columnar(tmp_path / "events.col.json") == session.events
        report = json.loads((tmp_path / "pipeline.json").read_text())
        assert report["totals"]["emitted"] == 3

    def test_events_jsonl_matches_an_eager_session_byte_for_byte(self):
        from repro.obs.session import ObsSession

        eager, pipeline = ObsSession(), PipelineObsSession()
        for session in (eager, pipeline):
            for event in switches(5, node="n0"):
                session.bus.emit(event)
        assert pipeline.events_jsonl() == eager.events_jsonl()

    def test_registry_derives_on_read_mid_run(self):
        session = PipelineObsSession()
        session.bus.emit_switch(27, 0, 1, "voluntary", 54, node="n0")
        registry = session.registry  # derive now
        before = registry
        session.bus.emit_switch(54, 1, 0, "voluntary", 54, node="n0")
        # Same object (mid-run readers hold the reference), fresh counts.
        assert session.registry is before
        series = session.registry.get("repro_context_switches_total").series()
        assert sum(value for _, value in series) == 2


def miss_stream():
    """A synthetic stream with one attributable miss for n0/video."""
    events = [
        AdmissionEvent(
            time=0, task="video", outcome="accepted", thread_id=1, node="n0"
        ),
        AdmissionEvent(
            time=0, task="other", outcome="accepted", thread_id=2, node="n0"
        ),
        GrantChangeEvent(
            time=100,
            thread_id=1,
            period=1000,
            cpu_ticks=120,
            entry_index=1,
            reason="degraded",
            node="n0",
        ),
        GrantRecomputeEvent(
            time=100,
            requests=2,
            granted=2,
            degraded=1,
            qos_fraction=0.5,
            node="n0",
        ),
    ]
    events += [
        SwitchEvent(
            time=150 + i * 50,
            from_thread=1,
            to_thread=2,
            kind="involuntary",
            cost_ticks=54,
            node="n0",
        )
        for i in range(8)
    ]
    events += [
        PeriodCloseEvent(
            time=1000,
            thread_id=1,
            period_index=0,
            start=50,
            completion=-1,
            granted=200,
            delivered=120,
            missed=True,
            node="n0",
        ),
        PeriodCloseEvent(
            time=2000,
            thread_id=2,
            period_index=0,
            start=1050,
            completion=1900,
            granted=200,
            delivered=200,
            node="n0",
        ),
    ]
    return events


class TestQuery:
    def test_kind_and_window_filters_preserve_stream_order(self):
        events = miss_stream()
        matched = select(
            events,
            Query(kinds=frozenset({"context-switch"}), window=(150, 300)),
        )
        assert [e.time for e in matched] == [150, 200, 250, 300]

    def test_unknown_kind_is_an_actionable_error(self):
        with pytest.raises(SimulationError, match="unknown event kind"):
            select(miss_stream(), Query(kinds=frozenset({"nope"})))

    def test_task_filter_resolves_threads_via_admission(self):
        matched = select(miss_stream(), Query(task="video"))
        kinds = [e.type for e in matched]
        # The admission, its grant change, every preemption of thread 1,
        # and the period-close — but not thread 2's records.
        assert kinds.count("admission") == 1
        assert kinds.count("grant-change") == 1
        assert kinds.count("context-switch") == 8
        assert kinds.count("period-close") == 1

    def test_node_filter(self):
        events = miss_stream() + switches(2, node="n1")
        assert select(events, Query(nodes=frozenset({"n1"}))) == events[-2:]

    def test_format_line_is_stable(self):
        line = format_line(miss_stream()[0])
        assert line == (
            "           0 n0       admission: accepted 'video' -> "
            "thread 1 (min_rate=0.000, committed=0.000)"
        )
        assert describe(miss_stream()[-2]).endswith("delivered 120/200 MISSED")


class TestExplain:
    def test_causal_chain_walks_admission_to_miss(self):
        events = miss_stream()
        (miss,) = find_misses(events, "video")
        chain = causal_chain(events, miss)
        kinds = [e.type for e in chain]
        assert kinds[0] == "admission"
        assert kinds[-1] == "period-close"
        assert "grant-change" in kinds and "grant-recompute" in kinds
        assert kinds.count("context-switch") == 8

    def test_report_elides_the_preemption_storm_middle(self):
        rendered = explain_miss(miss_stream(), "video")
        assert "miss 0 of 1 for n0/video (thread 1), period 0" in rendered
        # 8 preemptions, 6 shown (first/last 3): the middle 2 are elided.
        assert "... 2 more involuntary preemptions ..." in rendered
        assert "qos-degraded" in rendered and "preemption-storm" in rendered

    def test_loss_section_names_the_missing_links(self):
        loss = {
            "totals": {
                "emitted": 20,
                "delivered": 15,
                "dropped": 5,
                "sampled_out": 0,
            },
            "nodes": {
                "n0": {
                    "kinds": {
                        "grant-change": {
                            "emitted": 3,
                            "delivered": 1,
                            "dropped": 2,
                            "sampled_out": 0,
                        }
                    }
                }
            },
        }
        rendered = explain_miss(miss_stream(), "video", loss=loss)
        assert "15/20 events delivered, 5 dropped" in rendered
        assert "n0 lost telemetry" in rendered
        assert "grant-change: 2 dropped" in rendered

    def test_complete_chain_says_so(self):
        loss = {"totals": {"emitted": 1, "delivered": 1}, "nodes": {}}
        rendered = explain_miss(miss_stream(), "video", loss=loss)
        assert "no loss — the chain is complete" in rendered

    def test_missing_task_and_missing_miss_are_actionable(self):
        with pytest.raises(SimulationError, match="known: n0/other, n0/video"):
            explain_miss(miss_stream(), "nope")
        with pytest.raises(SimulationError, match="missed no periods"):
            explain_miss(miss_stream(), "other")
        with pytest.raises(SimulationError, match=r"\[0, 0\]"):
            explain_miss(miss_stream(), "video", miss_index=3)
