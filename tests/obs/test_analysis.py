"""The offline analysis layer: loader, timelines, attribution, episodes,
overheads, and the assembled report — over synthetic streams (where we
control every tick) and a real instrumented run (acceptance)."""

import json

import pytest

from repro import units
from repro.errors import SimulationError
from repro.obs.analysis import (
    AttributedMiss,
    SchemaVersionError,
    analysis_to_json,
    analyze,
    attribute_misses,
    build_timelines,
    decode_record,
    detect_episodes,
    load_events,
    load_events_text,
    overhead_breakdown,
    percentile,
    render_markdown,
    top_causes,
)
from repro.obs.events import (
    AdmissionEvent,
    GraceEvent,
    GrantChangeEvent,
    GrantRecomputeEvent,
    MigrationEvent,
    PeriodCloseEvent,
    SwitchEvent,
    ViolationEvent,
)
from repro.obs.log import events_to_jsonl
from repro.obs.session import ObsSession
from repro.scenarios import figure5


# -- loader / schema versioning ---------------------------------------------


class TestLoader:
    def test_current_writer_round_trips(self):
        events = [
            AdmissionEvent(time=10, task="video", outcome="accepted", thread_id=1),
            PeriodCloseEvent(time=500, thread_id=1, period_index=0, start=50,
                             completion=200, granted=100, delivered=100),
        ]
        decoded = load_events_text(events_to_jsonl(events))
        assert decoded == events

    def test_missing_schema_version_is_version_1(self):
        record = {"type": "admission", "time": 3, "task": "a"}
        event = decode_record(record)
        assert event.task == "a"
        # The payload is not mutated by decoding.
        assert record == {"type": "admission", "time": 3, "task": "a"}

    def test_future_schema_version_is_rejected_loudly(self):
        line = json.dumps({"type": "admission", "time": 0, "schema_version": 3})
        with pytest.raises(SchemaVersionError) as excinfo:
            load_events_text(line, source="events.jsonl")
        message = str(excinfo.value)
        assert "schema_version 3" in message
        assert "versions 1, 2" in message
        assert "events.jsonl line 1" in message

    def test_unknown_type_tag_names_the_known_tags(self):
        with pytest.raises(SimulationError, match="unknown event type 'nope'"):
            decode_record({"type": "nope", "time": 0})

    def test_missing_type_tag(self):
        with pytest.raises(SimulationError, match="no 'type' tag"):
            decode_record({"time": 0})

    def test_malformed_record_names_line_and_tag(self):
        line = json.dumps({"type": "admission", "time": 0, "bogus_field": 1})
        with pytest.raises(SimulationError, match="line 1: malformed 'admission'"):
            load_events_text(line)

    def test_invalid_json_names_the_line(self):
        with pytest.raises(SimulationError, match="line 2: not valid JSON"):
            load_events_text('{"type": "admission", "time": 0}\n{oops\n')

    def test_load_events_accepts_a_directory(self, tmp_path):
        (tmp_path / "events.jsonl").write_text(
            events_to_jsonl([AdmissionEvent(time=1, task="x", thread_id=0)]),
            encoding="utf-8",
        )
        assert len(load_events(tmp_path)) == 1

    def test_load_events_missing_file(self, tmp_path):
        with pytest.raises(SimulationError, match="no event log"):
            load_events(tmp_path / "nope")


# -- percentiles and timelines ----------------------------------------------


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))  # 1..100
        assert percentile(values, 50) == 50
        assert percentile(values, 95) == 95
        assert percentile(values, 99) == 99
        assert percentile(values, 100) == 100

    def test_small_populations_and_edges(self):
        assert percentile([], 99) == -1
        assert percentile([7], 50) == 7
        assert percentile([3, 9], 99) == 9
        assert percentile([3, 9], 0) == 3


def _period(thread_id, index, start, completion, deadline, *, missed=False,
            voided=False, node="", granted=100, delivered=None):
    return PeriodCloseEvent(
        time=deadline, node=node, thread_id=thread_id, period_index=index,
        start=start, completion=completion, granted=granted,
        delivered=granted if delivered is None else delivered,
        missed=missed, voided=voided,
    )


class TestTimelines:
    def test_periods_group_by_node_and_thread(self):
        events = [
            AdmissionEvent(time=0, task="video", thread_id=1, node="n0"),
            AdmissionEvent(time=0, task="video", thread_id=1, node="n1"),
            _period(1, 0, 0, 40, 100, node="n0"),
            _period(1, 1, 100, 150, 200, node="n0"),
            _period(1, 0, 0, 90, 100, node="n1"),
        ]
        lines = build_timelines(events)
        assert [line.label for line in lines] == ["n0/video", "n1/video"]
        assert [line.closed for line in lines] == [2, 1]
        assert lines[0].latencies() == [40, 50]

    def test_delivery_ratio_excludes_voided_periods(self):
        events = [
            _period(2, 0, 0, 50, 100),
            _period(2, 1, 100, -1, 200, voided=True),
            _period(2, 2, 200, -1, 300, missed=True, delivered=30),
            _period(2, 3, 300, 350, 400),
        ]
        (line,) = build_timelines(events)
        assert line.closed == 4
        assert line.accountable == 3
        assert line.misses == 1
        assert line.delivery_ratio == pytest.approx(2 / 3)

    def test_no_accountable_periods_reports_ratio_one(self):
        events = [AdmissionEvent(time=0, task="idle", thread_id=5)]
        (line,) = build_timelines(events)
        assert line.closed == 0
        assert line.delivery_ratio == 1.0
        assert line.latency_percentile(99) == -1


# -- deadline-miss attribution ----------------------------------------------


def overload_stream():
    """A synthetic overloaded node: every attributable mechanism fires
    inside one missed period's [start, deadline] window."""
    return [
        AdmissionEvent(time=0, task="video", outcome="accepted", thread_id=1),
        AdmissionEvent(time=0, task="other", outcome="accepted", thread_id=2),
        GrantRecomputeEvent(time=120, requests=2, granted=2, degraded=1,
                            qos_fraction=0.75),
        GrantChangeEvent(time=150, thread_id=1, period=100_000, cpu_ticks=10_000,
                         reason="recompute"),
        GraceEvent(time=200, thread_id=2, honoured=False, grace_ticks=2_700),
        SwitchEvent(time=220, from_thread=1, to_thread=2, kind="involuntary"),
        SwitchEvent(time=240, from_thread=1, to_thread=2, kind="involuntary"),
        SwitchEvent(time=260, from_thread=1, to_thread=2, kind="involuntary"),
        MigrationEvent(time=300, task="video", source="n0", target="n1",
                       outcome="started"),
        ViolationEvent(time=350, rule="grant-sum", detail="sum exceeds capacity"),
        _period(1, 4, 100, -1, 500, missed=True, delivered=60),
        _period(2, 4, 100, 450, 500),
    ]


class TestAttribution:
    def test_overloaded_period_collects_every_cause(self):
        events = overload_stream()
        misses = attribute_misses(events, build_timelines(events))
        assert len(misses) == 1
        miss = misses[0]
        assert miss.task == "video"
        assert miss.period_index == 4
        kinds = {cause.kind for cause in miss.causes}
        assert kinds == {
            "qos-degraded",
            "grant-shrunk",
            "burned-grace",
            "preemption-storm",
            "migration",
            "invariant-violation",
        }

    def test_at_least_one_attributed_cause_under_overload(self):
        # The ISSUE acceptance: an overloaded stream yields >= 1 attributed
        # (non-"unattributed") deadline-miss cause.
        events = overload_stream()
        misses = attribute_misses(events, build_timelines(events))
        attributed = [
            c for m in misses for c in m.causes if c.kind != "unattributed"
        ]
        assert attributed

    def test_events_outside_the_window_do_not_attribute(self):
        events = [
            GrantRecomputeEvent(time=90, degraded=1, qos_fraction=0.5),
            _period(1, 0, 100, -1, 200, missed=True),
            GrantRecomputeEvent(time=201, degraded=1, qos_fraction=0.5),
        ]
        (miss,) = attribute_misses(events, build_timelines(events))
        assert [c.kind for c in miss.causes] == ["unattributed"]
        assert "investigate" in miss.causes[0].detail

    def test_two_preemptions_are_not_a_storm(self):
        events = [
            SwitchEvent(time=110, from_thread=1, to_thread=2, kind="involuntary"),
            SwitchEvent(time=120, from_thread=1, to_thread=2, kind="involuntary"),
            _period(1, 0, 100, -1, 200, missed=True),
        ]
        (miss,) = attribute_misses(events, build_timelines(events))
        assert [c.kind for c in miss.causes] == ["unattributed"]

    def test_other_threads_grant_changes_do_not_attribute(self):
        events = [
            GrantChangeEvent(time=150, thread_id=9, period=100, cpu_ticks=1),
            _period(1, 0, 100, -1, 200, missed=True),
        ]
        (miss,) = attribute_misses(events, build_timelines(events))
        assert [c.kind for c in miss.causes] == ["unattributed"]

    def test_top_causes_ranks_by_miss_count(self):
        events = overload_stream()
        misses = attribute_misses(events, build_timelines(events))
        ranked = top_causes(misses)
        assert all(count == 1 for _, count in ranked)
        assert [kind for kind, _ in ranked] == sorted(k for k, _ in ranked)


# -- overload episodes -------------------------------------------------------


class TestEpisodes:
    def test_entry_exit_and_denials(self):
        events = [
            GrantRecomputeEvent(time=100, qos_fraction=1.0),
            GrantRecomputeEvent(time=200, degraded=2, qos_fraction=0.8),
            AdmissionEvent(time=250, task="late", outcome="denied"),
            GrantRecomputeEvent(time=300, degraded=1, qos_fraction=0.6,
                                minimum_fallback=True),
            GrantRecomputeEvent(time=400, qos_fraction=1.0),
            AdmissionEvent(time=450, task="fine", outcome="denied"),
        ]
        (episode,) = detect_episodes(events)
        assert (episode.entry, episode.exit) == (200, 400)
        assert episode.resolved and episode.duration == 200
        assert episode.recomputes == 2
        assert episode.min_qos_fraction == pytest.approx(0.6)
        assert episode.max_degraded == 2
        assert episode.minimum_fallback
        # The denial at 450 falls outside the episode.
        assert episode.denied_admissions == 1

    def test_unresolved_episode_at_stream_end(self):
        events = [GrantRecomputeEvent(time=100, degraded=1, qos_fraction=0.9)]
        (episode,) = detect_episodes(events)
        assert not episode.resolved
        assert episode.duration == -1

    def test_nodes_track_independent_episodes(self):
        events = [
            GrantRecomputeEvent(time=100, node="n1", degraded=1, qos_fraction=0.9),
            GrantRecomputeEvent(time=150, node="n0", degraded=1, qos_fraction=0.8),
            GrantRecomputeEvent(time=200, node="n1", qos_fraction=1.0),
        ]
        episodes = detect_episodes(events)
        assert [(e.node, e.resolved) for e in episodes] == [
            ("n0", False), ("n1", True),
        ]


# -- overhead breakdown -------------------------------------------------------


class TestOverhead:
    def test_switch_and_grace_totals_by_kind(self):
        events = [
            SwitchEvent(time=10, kind="voluntary", cost_ticks=189),
            SwitchEvent(time=20, kind="involuntary", cost_ticks=513),
            SwitchEvent(time=30, kind="involuntary", cost_ticks=513),
            GraceEvent(time=40, honoured=True, grace_ticks=2_700),
            GraceEvent(time=50, honoured=False, grace_ticks=2_700),
        ]
        (b,) = overhead_breakdown(events)
        assert b.switches == {"voluntary": 1, "involuntary": 2}
        assert b.total_switch_cost == 189 + 2 * 513
        assert b.grace_total == 2
        assert b.grace_burned_ticks == 2_700
        assert b.grace_honour_ratio == pytest.approx(0.5)


# -- the assembled report -----------------------------------------------------


class TestReport:
    @pytest.fixture(scope="class")
    def real_events(self):
        session = ObsSession()
        figure5(seed=11, obs=session).run_for(units.ms_to_ticks(150))
        return session.events

    def test_real_run_delivers_every_grant(self, real_events):
        analysis = analyze(real_events)
        assert analysis.timelines
        for line in analysis.timelines:
            assert line.delivery_ratio == 1.0
        assert analysis.misses == []

    def test_markdown_report_is_deterministic_and_complete(self, real_events):
        analysis = analyze(real_events)
        text = render_markdown(analysis)
        assert text == render_markdown(analyze(real_events))
        assert "# Observability report" in text
        assert "## Grant delivery per task" in text
        assert "## Scheduling overhead" in text

    def test_json_report_round_trips(self, real_events):
        payload = json.loads(analysis_to_json(analyze(real_events)))
        assert payload["tasks"]
        assert all(t["delivery_ratio"] == 1.0 for t in payload["tasks"])

    def test_synthetic_misses_render_with_causes(self):
        analysis = analyze(overload_stream())
        text = render_markdown(analysis)
        assert "## Deadline misses" in text
        assert "qos-degraded" in text
        assert isinstance(analysis.misses[0], AttributedMiss)
