"""Canonical JSONL encoding: one sorted-key object per line, stable bytes."""

import json

from repro.obs.events import EVENT_TYPES, AdmissionEvent, RpcEvent, SwitchEvent
from repro.obs.log import (
    SCHEMA_VERSION,
    EventCollector,
    event_to_dict,
    event_to_json,
    events_to_jsonl,
)


class TestEncoding:
    def test_event_dict_carries_the_wire_type_tag(self):
        payload = event_to_dict(AdmissionEvent(time=27, task="stb", outcome="denied"))
        assert payload["type"] == "admission"
        assert payload["task"] == "stb"
        assert payload["time"] == 27

    def test_json_is_canonical(self):
        text = event_to_json(SwitchEvent(time=1, from_thread=2, to_thread=3))
        # Compact separators, sorted keys — byte-stable across runs.
        assert " " not in text
        keys = list(json.loads(text))
        assert keys == sorted(keys)

    def test_jsonl_round_trips_through_the_type_table(self):
        events = [
            AdmissionEvent(time=1, task="a"),
            RpcEvent(time=2, action="send", src="broker", dst="node00"),
        ]
        lines = events_to_jsonl(events).splitlines()
        assert len(lines) == 2
        for line, original in zip(lines, events):
            decoded = json.loads(line)
            assert decoded.pop("schema_version") == SCHEMA_VERSION
            cls = EVENT_TYPES[decoded.pop("type")]
            assert cls(**decoded) == original

    def test_jsonl_ends_each_line_with_newline_only(self):
        text = events_to_jsonl([SwitchEvent(time=0)])
        assert text.endswith("\n")
        assert "\r" not in text


class TestCollector:
    def test_collector_preserves_emission_order(self):
        collector = EventCollector()
        first, second = SwitchEvent(time=1), SwitchEvent(time=2)
        collector(first)
        collector(second)
        assert collector.events == [first, second]
        assert len(collector) == 2

    def test_of_type_filters_by_wire_tag(self):
        collector = EventCollector()
        collector(SwitchEvent(time=1))
        collector(AdmissionEvent(time=2))
        assert [e.time for e in collector.of_type("admission")] == [2]
