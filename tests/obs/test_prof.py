"""The two-tier profiler: deterministic phase books, sampler exports,
report/diff rendering, and the determinism contracts the CI gate relies
on (same-seed count tables byte-diff equal; ``--profile`` never
perturbs the obs artifacts)."""

import json
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.prof import (
    PROF_SCHEMA_VERSION,
    PhaseProfiler,
    ProfSession,
    StackSampler,
    collapsed,
    diff_profiles,
    load_profile,
    render_diff_json,
    render_diff_markdown,
    render_json,
    render_markdown,
    speedscope,
)
from repro.obs.session import ObsSession
from repro.scenarios import cluster_rack


class ScriptedClock:
    """A clock the test advances by hand, in nanoseconds."""

    def __init__(self):
        self.now = 0

    def __call__(self):
        return self.now


class TestPhaseProfiler:
    def test_counts_and_flat_timing(self):
        clock = ScriptedClock()
        prof = PhaseProfiler(clock=clock)
        prof.begin("a")
        clock.now += 100
        prof.end("a")
        prof.begin("a")
        clock.now += 50
        prof.end("a")
        assert prof.count_table() == {"a": 2}
        assert prof.self_ns["a"] == 150
        assert prof.cum_ns["a"] == 150

    def test_nested_phase_splits_self_and_cumulative(self):
        clock = ScriptedClock()
        prof = PhaseProfiler(clock=clock)
        prof.begin("outer")
        clock.now += 10
        prof.begin("inner")
        clock.now += 30
        prof.end("inner")
        clock.now += 5
        prof.end("outer")
        # outer: 45 elapsed, 30 of it inside inner.
        assert prof.self_ns == {"outer": 15, "inner": 30}
        assert prof.cum_ns == {"outer": 45, "inner": 30}

    def test_recursion_counts_cumulative_once(self):
        clock = ScriptedClock()
        prof = PhaseProfiler(clock=clock)
        prof.begin("f")
        clock.now += 10
        prof.begin("f")
        clock.now += 20
        prof.end("f")
        clock.now += 10
        prof.end("f")
        assert prof.counts["f"] == 2
        # Self time sums both frames; cumulative only the outermost.
        assert prof.self_ns["f"] == 40
        assert prof.cum_ns["f"] == 40

    def test_unbalanced_inner_frames_are_unwound(self):
        clock = ScriptedClock()
        prof = PhaseProfiler(clock=clock)
        prof.begin("outer")
        prof.begin("leaked")  # its hook never reached end()
        clock.now += 10
        prof.end("outer")
        assert prof.count_table() == {"leaked": 1, "outer": 1}
        assert not prof._stack

    def test_finish_settles_open_frames(self):
        clock = ScriptedClock()
        prof = PhaseProfiler(clock=clock)
        prof.begin("open")
        clock.now += 7
        prof.finish()
        assert prof.cum_ns["open"] == 7
        assert prof.timing_table()["open"]["calls"] == 1

    def test_profiler_is_truthy_for_the_hook_guard(self):
        assert PhaseProfiler()

    def test_snapshot_reports_open_frames(self):
        prof = PhaseProfiler(clock=ScriptedClock())
        prof.begin("a")
        snap = prof.snapshot()
        assert snap["open_frames"] == 1
        assert snap["phases"]["a"]["calls"] == 1


class TestStackSampler:
    def test_sampler_captures_this_thread(self):
        sampler = StackSampler(interval_s=0.001)
        sampler.start()
        deadline = time.monotonic() + 2.0
        while sampler.sample_count == 0 and time.monotonic() < deadline:
            sum(range(2000))
        sampler.stop()
        assert sampler.sample_count > 0
        assert sampler.samples
        stack = next(iter(sampler.samples))
        assert all(":" in frame for frame in stack)
        # The daemon thread is gone after stop().
        names = [t.name for t in threading.enumerate()]
        assert "repro-prof-sampler" not in names


class TestFlameExports:
    SAMPLES = {
        ("main.py:main", "engine.py:commit"): 3,
        ("main.py:main",): 2,
    }

    def test_collapsed_folds_and_sorts(self):
        text = collapsed(self.SAMPLES)
        assert text.splitlines() == [
            "main.py:main 2",
            "main.py:main;engine.py:commit 3",
        ]

    def test_collapsed_empty(self):
        assert collapsed({}) == ""

    def test_speedscope_document_shape(self):
        doc = speedscope(self.SAMPLES, name="t", interval_s=0.01)
        assert doc["$schema"].startswith("https://www.speedscope.app")
        frames = [f["name"] for f in doc["shared"]["frames"]]
        assert sorted(frames) == sorted(set(frames))  # deduplicated
        profile = doc["profiles"][0]
        assert profile["type"] == "sampled"
        assert profile["unit"] == "milliseconds"
        assert len(profile["samples"]) == len(profile["weights"]) == 2
        # Every sample indexes into the shared frame table.
        for sample in profile["samples"]:
            assert all(0 <= i < len(frames) for i in sample)
        assert profile["endValue"] == pytest.approx(sum(profile["weights"]))


class TestProfSession:
    def _write(self, tmp_path, clock=None):
        session = ProfSession(sampling=False, clock=clock, name="test")
        session.phases.begin("kernel.dispatch")
        session.phases.end("kernel.dispatch")
        session.stop()
        return session.write(tmp_path / "prof", sim_ticks=27_000_000)

    def test_write_lays_down_all_four_artifacts(self, tmp_path):
        out = self._write(tmp_path)
        names = sorted(p.name for p in out.iterdir())
        assert names == [
            "flame.folded",
            "prof_counts.json",
            "prof_times.json",
            "profile.speedscope.json",
        ]

    def test_counts_artifact_is_timing_free(self, tmp_path):
        out = self._write(tmp_path, clock=ScriptedClock())
        counts = json.loads((out / "prof_counts.json").read_text())
        assert counts == {
            "schema_version": PROF_SCHEMA_VERSION,
            "sim_ticks": 27_000_000,
            "phases": {"kernel.dispatch": 1},
        }

    def test_load_profile_round_trips(self, tmp_path):
        out = self._write(tmp_path)
        profile = load_profile(out)
        assert profile["counts"]["phases"] == {"kernel.dispatch": 1}
        assert "kernel.dispatch" in profile["times"]["phases"]

    def test_load_profile_rejects_non_profile_dir(self, tmp_path):
        with pytest.raises(ValueError, match="missing"):
            load_profile(tmp_path)

    def test_load_profile_rejects_unknown_schema(self, tmp_path):
        out = self._write(tmp_path)
        counts = json.loads((out / "prof_counts.json").read_text())
        counts["schema_version"] = 99
        (out / "prof_counts.json").write_text(json.dumps(counts))
        with pytest.raises(ValueError, match="schema_version"):
            load_profile(out)


def _profiled_rack(seed, horizon_sec=0.1, obs=None):
    sim = cluster_rack(seed=seed, horizon_sec=horizon_sec, obs=obs)
    prof = ProfSession(sampling=False)
    sim.attach_prof(prof)
    sim.run_until(sim.horizon)
    prof.stop()
    return sim, prof


class TestDeterminism:
    @settings(deadline=None, max_examples=5)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_same_seed_runs_have_identical_count_tables(self, seed):
        _, a = _profiled_rack(seed)
        _, b = _profiled_rack(seed)
        assert a.phases.count_table() == b.phases.count_table()
        assert a.phases.count_table()  # the rack exercises the hooks

    @settings(deadline=None, max_examples=3)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_profile_leaves_obs_artifacts_byte_identical(self, seed):
        bare = ObsSession()
        sim = cluster_rack(seed=seed, horizon_sec=0.1, obs=bare)
        sim.run_until(sim.horizon)
        profiled = ObsSession()
        sim2, _ = _profiled_rack(seed, obs=profiled)
        assert bare.events_jsonl() == profiled.events_jsonl()
        assert bare.metrics_prom() == profiled.metrics_prom()
        assert bare.perfetto_json(sim.now) == profiled.perfetto_json(sim2.now)

    def test_all_core_phases_fire_on_the_rack(self):
        sim = cluster_rack(seed=7, horizon_sec=0.2)
        prof = ProfSession(sampling=False)
        sim.attach_prof(prof)
        sim.run_until(sim.horizon)
        sim.settle()
        prof.stop()
        phases = set(prof.phases.count_table())
        assert {
            "kernel.dispatch",
            "sched.notify",
            "rm.recompute",
            "grant.compute",
            "bus.rpc",
            "broker.rpc",
            "broker.epoch",
            "cluster.settle",
        } <= phases


class TestReport:
    @pytest.fixture(scope="class")
    def profile_dir(self, tmp_path_factory):
        _, prof = _profiled_rack(7, horizon_sec=0.2)
        out = tmp_path_factory.mktemp("prof") / "p"
        prof.write(out, sim_ticks=5_400_000)
        return out

    def test_markdown_report_renders_deterministically(self, profile_dir):
        profile = load_profile(profile_dir)
        text = render_markdown(profile)
        assert text == render_markdown(load_profile(profile_dir))
        assert text.startswith("# Profile report")
        assert "| kernel.dispatch |" in text
        assert "self ms" in text

    def test_markdown_top_n_cuts_the_table(self, profile_dir):
        profile = load_profile(profile_dir)
        text = render_markdown(profile, top=2)
        assert "## Top 2 phases" in text
        assert "more phases below the cut" in text

    def test_json_report_shape(self, profile_dir):
        doc = json.loads(render_json(load_profile(profile_dir)))
        assert doc["schema_version"] == PROF_SCHEMA_VERSION
        assert doc["total_calls"] > 0
        phases = {r["phase"] for r in doc["phases"]}
        assert "kernel.dispatch" in phases
        self_ms = [r["self_ms"] for r in doc["phases"]]
        assert self_ms == sorted(self_ms, reverse=True)

    def test_diff_of_same_seed_runs_has_zero_call_deltas(self, profile_dir):
        _, other = _profiled_rack(7, horizon_sec=0.2)
        out_b = profile_dir.parent / "q"
        other.write(out_b, sim_ticks=5_400_000)
        diff = diff_profiles(load_profile(profile_dir), load_profile(out_b))
        assert all(r["calls_delta"] == 0 for r in diff["phases"])
        md = render_diff_markdown(diff)
        assert "+0" in md and md.startswith("# Profile diff")
        doc = json.loads(render_diff_json(diff))
        assert {r["phase"] for r in doc["phases"]} == {
            r["phase"] for r in diff["phases"]
        }

    def test_diff_attributes_call_deltas(self):
        profile = lambda calls: {  # noqa: E731 — tiny literal builder
            "counts": {"phases": {"a": calls}},
            "times": {"phases": {"a": {"self_ns": calls * 1000}}},
        }
        diff = diff_profiles(profile(10), profile(25))
        row = diff["phases"][0]
        assert row["calls_delta"] == 15
        assert row["self_ms_delta"] == pytest.approx(0.015)
