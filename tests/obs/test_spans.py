"""Span trees: deterministic ids, parenting, contexts, end-of-run close."""

from repro.obs.spans import SpanTracker, TraceContext


class TestIds:
    def test_ids_are_sequential_never_random(self):
        tracker = SpanTracker()
        a = tracker.start("place:x", 0)
        b = tracker.start("place:y", 5)
        assert (a.trace_id, a.span_id) == ("t0001", 1)
        assert (b.trace_id, b.span_id) == ("t0002", 2)

    def test_two_trackers_produce_identical_ids(self):
        def run():
            tracker = SpanTracker()
            root = tracker.start("op", 0)
            tracker.start("step", 1, parent=root)
            return [(s.trace_id, s.span_id, s.parent_id) for s in tracker.spans]

        assert run() == run()


class TestTree:
    def test_child_joins_parent_trace(self):
        tracker = SpanTracker()
        root = tracker.start("place:x", 0, task="x")
        child = tracker.start("admit:node00", 0, parent=root)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert tracker.roots() == [root]
        assert tracker.children_of(root) == [child]
        assert tracker.by_trace() == {root.trace_id: [root, child]}

    def test_context_propagates_across_a_hop(self):
        """A TraceContext (what the MessageBus envelope carries) parents
        the remote side into the same tree."""
        tracker = SpanTracker()
        local = tracker.start("admit:node00", 10)
        context = local.context()
        assert context == TraceContext(local.trace_id, local.span_id)
        assert context.as_tuple() == (local.trace_id, local.span_id)
        remote = tracker.start("handle", 12, parent=context)
        assert remote.trace_id == local.trace_id
        assert remote.parent_id == local.span_id


class TestLifecycle:
    def test_finish_records_end_status_and_attrs(self):
        tracker = SpanTracker()
        span = tracker.start("admit:node00", 10, task="x")
        tracker.finish(span, 37, status="denied", error="no headroom")
        assert span.finished
        assert (span.start, span.end, span.status) == (10, 37, "denied")
        assert span.attrs == {"task": "x", "error": "no headroom"}

    def test_finish_open_closes_only_unfinished_spans(self):
        tracker = SpanTracker()
        done = tracker.start("a", 0)
        tracker.finish(done, 5)
        tracker.start("b", 1)
        assert tracker.finish_open(100) == 1
        assert done.end == 5  # untouched
        assert tracker.spans[1].end == 100
        assert tracker.spans[1].status == "unfinished"

    def test_to_dict_is_plain_data_with_sorted_attrs(self):
        tracker = SpanTracker()
        span = tracker.start("op", 3, zebra=1, alpha=2)
        payload = span.to_dict()
        assert payload["name"] == "op"
        assert list(payload["attrs"]) == ["alpha", "zebra"]
