"""Counter / gauge / histogram semantics and registry bookkeeping."""

import pytest

from repro.errors import SimulationError
from repro.obs.registry import MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_accumulates_per_label_set(self, registry):
        c = registry.counter("hops", "hops", ("node",))
        c.inc(node="a")
        c.inc(2, node="a")
        c.inc(node="b")
        assert c.value(node="a") == 3
        assert c.value(node="b") == 1
        assert c.value(node="missing") == 0

    def test_counters_cannot_decrease(self, registry):
        c = registry.counter("hops", "hops")
        with pytest.raises(SimulationError, match="cannot decrease"):
            c.inc(-1)

    def test_label_mismatch_is_rejected(self, registry):
        c = registry.counter("hops", "hops", ("node",))
        with pytest.raises(SimulationError, match="expected labels"):
            c.inc(nod="typo")

    def test_series_sorted_by_label_values(self, registry):
        c = registry.counter("hops", "hops", ("node",))
        c.inc(node="b")
        c.inc(node="a")
        assert [key for key, _ in c.series()] == [("a",), ("b",)]


class TestGauge:
    def test_set_and_add(self, registry):
        g = registry.gauge("headroom", "headroom", ("node",))
        g.set(0.5, node="a")
        g.add(-0.2, node="a")
        assert g.value(node="a") == pytest.approx(0.3)


class TestHistogram:
    def test_cumulative_le_buckets(self, registry):
        h = registry.histogram("lat", "lat", (1.0, 5.0, 10.0))
        for value in (0.5, 3.0, 7.0, 100.0):
            h.observe(value)
        ((_, (counts, inf_count, total)),) = h.series()
        assert counts == [1, 2, 3]  # cumulative: le=1, le=5, le=10
        assert inf_count == 4
        assert total == pytest.approx(110.5)
        assert h.count() == 4
        assert h.sum() == pytest.approx(110.5)

    def test_unsorted_buckets_are_rejected(self, registry):
        with pytest.raises(SimulationError, match="sorted"):
            registry.histogram("lat", "lat", (5.0, 1.0))


class TestBucketOverrides:
    def test_override_replaces_declared_buckets(self):
        registry = MetricsRegistry(bucket_overrides={"lat": (2.0, 20.0, 200.0)})
        h = registry.histogram("lat", "lat", (1.0, 10.0))
        assert h.buckets == (2.0, 20.0, 200.0)

    def test_only_the_named_metric_is_overridden(self):
        registry = MetricsRegistry(bucket_overrides={"lat": (2.0, 20.0)})
        other = registry.histogram("other", "other", (1.0, 10.0))
        assert other.buckets == (1.0, 10.0)

    def test_override_for_an_unregistered_metric_is_inert(self):
        registry = MetricsRegistry(bucket_overrides={"never_declared": (1.0,)})
        h = registry.histogram("lat", "lat", (1.0, 10.0))
        assert h.buckets == (1.0, 10.0)

    def test_unsorted_override_is_rejected_at_registration(self):
        registry = MetricsRegistry(bucket_overrides={"lat": (5.0, 1.0)})
        with pytest.raises(SimulationError, match="sorted"):
            registry.histogram("lat", "lat", (1.0, 10.0))

    def test_default_construction_is_unchanged(self):
        h = MetricsRegistry().histogram("lat", "lat", (1.0, 10.0))
        assert h.buckets == (1.0, 10.0)


class TestRegistry:
    def test_duplicate_names_are_rejected(self, registry):
        registry.counter("x", "x")
        with pytest.raises(SimulationError, match="already registered"):
            registry.gauge("x", "x")

    def test_get_unknown_metric_raises(self, registry):
        with pytest.raises(SimulationError, match="no metric"):
            registry.get("nope")

    def test_all_metrics_sorted_by_name(self, registry):
        registry.counter("b", "b")
        registry.gauge("a", "a")
        assert [m.name for m in registry.all_metrics()] == ["a", "b"]
