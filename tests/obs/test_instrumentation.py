"""End to end through the core hooks: one ResourceDistributor run with an
ObsSession attached — event streams, metrics, sanitizer round-trip,
and byte-identical same-seed artifacts."""

import json

import pytest

from repro import units
from repro.config import MachineConfig, SimConfig
from repro.core.distributor import ResourceDistributor
from repro.errors import AdmissionError
from repro.obs.session import ObsSession
from repro.scenarios import figure5
from repro.sim.trace import DeadlineRecord
from repro.workloads import single_entry_definition


def ms(x):
    return units.ms_to_ticks(x)


def observed_rd(**kwargs):
    session = ObsSession()
    rd = ResourceDistributor(
        machine=MachineConfig(), sim=SimConfig(seed=7), obs=session, **kwargs
    )
    return session, rd


class TestCoreHooks:
    def test_admissions_and_grants_become_events(self):
        session, rd = observed_rd()
        rd.admit(single_entry_definition("video", 30, 0.4))
        rd.admit(single_entry_definition("audio", 30, 0.2))
        rd.run_for(ms(100))
        admissions = session.collector.of_type("admission")
        assert [e.task for e in admissions] == ["video", "audio"]
        assert all(e.outcome == "accepted" for e in admissions)
        assert session.collector.of_type("grant-recompute")
        assert session.collector.of_type("grant-change")
        assert session.collector.of_type("context-switch")
        # The built-in subscriber kept the registry current.
        assert session.m_admissions.value(node="", outcome="accepted") == 2
        switches = session.m_switches
        total = sum(value for _, value in switches.series())
        assert total == len(session.collector.of_type("context-switch"))

    def test_denied_admission_is_recorded_before_the_raise(self):
        session, rd = observed_rd()
        rd.admit(single_entry_definition("big0", 30, 0.6))
        with pytest.raises(AdmissionError):
            rd.admit(single_entry_definition("big1", 30, 0.6))
        denied = [
            e for e in session.collector.of_type("admission") if e.outcome == "denied"
        ]
        assert len(denied) == 1
        assert denied[0].task == "big1"
        assert denied[0].error != ""
        assert session.m_admissions.value(node="", outcome="denied") == 1

    def test_unobserved_distributor_has_no_hooks_armed(self):
        rd = ResourceDistributor(machine=MachineConfig(), sim=SimConfig(seed=7))
        assert rd.kernel.obs is None
        assert rd.resource_manager.obs is None
        assert rd.policy_box.obs is None


class TestViolationRoundTrip:
    def test_injected_violation_reaches_events_jsonl(self):
        """Satellite: a sanitizer violation becomes a structured obs
        event (severity=error) and survives into events.jsonl."""
        session, rd = observed_rd(sanitize=True, sanitize_strict=False)
        thread = rd.admit(single_entry_definition("video", 30, 0.4))
        # Inject through the public hook: a period that closed with the
        # grant undelivered breaks the per-period guarantee.
        record = DeadlineRecord(
            thread_id=thread.tid,
            period_index=0,
            period_start=0,
            deadline=ms(30),
            granted=ms(12),
            delivered=ms(5),
            missed=True,
            voided=False,
        )
        rd.sanitizer.on_period_close(thread, record)
        assert not rd.sanitizer.ok  # non-strict: collected, not raised
        violations = session.collector.of_type("violation")
        assert len(violations) == 1
        assert violations[0].rule == "grant-delivery"
        assert violations[0].severity == "error"
        assert violations[0].time == ms(30)
        lines = [json.loads(l) for l in session.events_jsonl().splitlines()]
        wire = [d for d in lines if d["type"] == "violation"]
        assert len(wire) == 1
        assert "guarantee" in wire[0]["detail"]
        assert session.m_violations.value(node="", rule="grant-delivery") == 1


class TestDeterminism:
    def test_same_seed_runs_write_identical_artifacts(self):
        def run():
            session = ObsSession()
            scenario = figure5(seed=11, obs=session)
            scenario.run_for(ms(120))
            session.add_schedule(
                "",
                scenario.rd.trace.segments,
                {t.tid: t.name for t in scenario.rd.kernel.threads.values()},
            )
            return (
                session.events_jsonl(),
                session.metrics_prom(),
                session.perfetto_json(scenario.rd.kernel.now),
            )

        assert run() == run()
