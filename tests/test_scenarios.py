"""Scenario library: each canonical scenario builds and behaves."""

import pytest

from repro import units
from repro.metrics import miss_rate, run_report
from repro.scenarios import (
    av_pipeline,
    dual_stream,
    figure4,
    figure5,
    settop,
    table4_trio,
)


def ms(x):
    return units.ms_to_ticks(x)


class TestTable4Trio:
    def test_grant_rates(self):
        scenario = table4_trio()
        gs = scenario.rd.current_grant_set
        assert gs[scenario.threads["Modem"].tid].rate == pytest.approx(0.10)
        assert gs[scenario.threads["MPEG"].tid].rate == pytest.approx(1 / 3)

    def test_runs_clean(self):
        scenario = table4_trio().run_for(ms(100))
        assert not scenario.trace.misses()

    def test_names_map(self):
        scenario = table4_trio()
        names = scenario.names()
        assert set(names.values()) == {"Modem", "3D", "MPEG"}


class TestFigure4:
    def test_buggy_variant_spins(self):
        scenario = figure4(fixed=False).run_for(ms(200))
        assert scenario.extras["workload"].stats.spin_ticks > 0

    def test_fixed_variant_blocks(self):
        scenario = figure4(fixed=True).run_for(ms(200))
        assert scenario.extras["workload"].stats.spin_ticks == 0

    def test_five_threads_named(self):
        scenario = figure4()
        assert set(scenario.threads) == {"p7", "dm8", "p9", "dm10", "SporadicServer"}


class TestFigure5:
    def test_staircase_reproduces(self):
        from repro.metrics import allocation_series

        scenario = figure5().run_for(ms(150))
        t2 = scenario.threads["thread2"]
        series = [
            round(units.ticks_to_ms(v))
            for _, v in allocation_series(scenario.trace, t2.tid)
        ]
        assert series[:8] == [9, 9, 4, 4, 3, 3, 2, 2]


class TestSettop:
    def test_modem_wakes(self):
        from repro.core.threads import ThreadState

        scenario = settop(ring_ms=100.0).run_for(ms(400))
        assert scenario.threads["Modem"].state is ThreadState.ACTIVE
        assert not scenario.trace.misses()


class TestAvPipeline:
    def test_runs_within_reserve(self):
        scenario = av_pipeline().run_for(units.sec_to_ticks(1))
        assert miss_rate(scenario.trace) == 0.0
        assert scenario.rd.kernel.reserve.within_reserve(scenario.rd.now)


class TestDualStream:
    def test_second_stream_stays_locked(self):
        scenario = dual_stream(skew_ppm=2000.0, horizon_sec=6.0)
        scenario.rd.run_until(units.sec_to_ticks(6))
        stream2 = scenario.extras["stream2"]
        assert stream2.stats.total_overflow == 0
        assert not scenario.trace.misses()


class TestRunReport:
    def test_report_covers_the_run(self):
        scenario = settop(ring_ms=100.0).run_for(ms(400))
        report = run_report(scenario.rd, scenario.names())
        assert "run report" in report
        assert "Modem" in report
        assert "grant changes" in report
        assert "trace audit: OK" in report
        assert "miss rate: 0.00%" in report

    def test_report_counts_crashes(self, ideal_rd):
        from repro.core.resource_list import ResourceList, ResourceListEntry
        from repro.tasks.base import Compute, TaskDefinition

        def boom(ctx):
            yield Compute(ms(1))
            raise RuntimeError("x")

        ideal_rd.admit(
            TaskDefinition(
                name="boom",
                resource_list=ResourceList([ResourceListEntry(ms(10), ms(2), boom)]),
            )
        )
        ideal_rd.run_for(ms(30))
        assert "task crashes: 1" in run_report(ideal_rd)


class TestFuzzed:
    def test_core_builder_runs_clean(self):
        from repro.scenarios import fuzzed

        scenario = fuzzed(3)
        scenario.run_for(ms(100))
        assert scenario.rd.sanitizer.ok
        assert scenario.extras["spec"].seed == 3
        # Threads admitted at t=0 are named; later arrivals are scripted.
        for name in scenario.threads:
            assert name in {t.name for t in scenario.extras["spec"].tasks}

    def test_cluster_builder_returns_a_simulation(self):
        from repro.scenarios import fuzzed

        sim = fuzzed(2, cluster=True)
        sim.run_until(sim.horizon)
        sim.settle()
        assert sim.all_sanitizers_ok

    def test_same_seed_same_mix(self):
        from repro.scenarios import fuzzed

        a, b = fuzzed(7), fuzzed(7)
        assert a.extras["spec"] == b.extras["spec"]
