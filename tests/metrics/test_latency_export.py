"""Latency stats (2P-2C bound) and trace export formats."""

import csv
import io
import json

import pytest

from repro import units
from repro.metrics import (
    completion_times,
    deadlines_to_csv,
    latency_stats,
    segments_to_csv,
    trace_to_json,
)

from tests.conftest import admit_simple


def ms(x):
    return units.ms_to_ticks(x)


@pytest.fixture
def busy_run(ideal_rd):
    thread = admit_simple(ideal_rd, "t", period_ms=10, rate=0.3)
    admit_simple(ideal_rd, "noise", period_ms=7, rate=0.5, greedy=True)
    ideal_rd.run_for(ms(300))
    return ideal_rd, thread


class TestLatency:
    def test_completions_one_per_period(self, busy_run):
        rd, thread = busy_run
        times = completion_times(rd.trace, thread.tid)
        assert len(times) == len(rd.trace.deadlines_for(thread.tid))
        assert times == sorted(times)

    def test_gaps_respect_the_paper_bound(self, busy_run):
        rd, thread = busy_run
        stats = latency_stats(rd.trace, thread.tid, period=ms(10), cpu=ms(3))
        assert stats is not None
        assert stats.bound == 2 * ms(10) - 2 * ms(3)
        assert stats.completion_bound == 2 * ms(10) - ms(3)
        assert stats.max_service_gap <= stats.bound
        assert stats.max_gap <= stats.completion_bound
        assert stats.within_bound

    def test_service_intervals_cover_the_grant(self, busy_run):
        from repro.metrics import max_service_gap, service_intervals

        rd, thread = busy_run
        intervals = service_intervals(rd.trace, thread.tid)
        assert intervals == sorted(intervals)
        assert all(a < b for a, b in intervals)
        delivered = sum(b - a for a, b in intervals)
        assert delivered == sum(d.delivered for d in rd.trace.deadlines_for(thread.tid))
        gap = max_service_gap(rd.trace, thread.tid)
        assert gap == max(
            b[0] - a[1] for a, b in zip(intervals, intervals[1:])
        )

    def test_mean_gap_close_to_period(self, busy_run):
        rd, thread = busy_run
        stats = latency_stats(rd.trace, thread.tid, period=ms(10), cpu=ms(3))
        assert stats.mean_gap == pytest.approx(ms(10), rel=0.05)

    def test_none_without_two_completions(self, ideal_rd):
        thread = admit_simple(ideal_rd, "t", period_ms=100, rate=0.1)
        ideal_rd.run_for(ms(50))  # period 0 not even closed
        assert latency_stats(ideal_rd.trace, thread.tid, ms(100), ms(10)) is None


class TestCsvExport:
    def test_segments_csv_parses(self, busy_run):
        rd, thread = busy_run
        rows = list(csv.DictReader(io.StringIO(segments_to_csv(rd.trace))))
        assert rows
        assert {r["kind"] for r in rows} >= {"granted"}
        covered = sum(int(r["end"]) - int(r["start"]) for r in rows)
        assert covered == rd.now

    def test_deadlines_csv_parses(self, busy_run):
        rd, thread = busy_run
        rows = list(csv.DictReader(io.StringIO(deadlines_to_csv(rd.trace))))
        assert rows
        assert all(r["missed"] == "0" for r in rows)

    def test_csv_exports_use_unix_line_endings(self, busy_run):
        """Regression: ``csv.writer`` defaults to ``\\r\\n`` row endings,
        which made the exports differ byte-for-byte across platforms."""
        rd, thread = busy_run
        for text in (segments_to_csv(rd.trace), deadlines_to_csv(rd.trace)):
            assert "\r" not in text
            assert text.endswith("\n")


class TestJsonExport:
    def test_round_trips_counts(self, busy_run):
        rd, thread = busy_run
        doc = json.loads(trace_to_json(rd.trace))
        assert len(doc["segments"]) == len(rd.trace.segments)
        assert len(doc["deadlines"]) == len(rd.trace.deadlines)
        assert len(doc["switches"]) == len(rd.trace.switches)
        assert doc["grant_changes"]

    def test_json_is_plain_data(self, busy_run):
        rd, thread = busy_run
        doc = json.loads(trace_to_json(rd.trace))
        first = doc["segments"][0]
        assert set(first) == {
            "thread_id", "start", "end", "kind", "period_index", "charged_to",
        }
