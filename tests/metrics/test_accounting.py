"""Metrics: utilization, miss rates, allocation series."""

import pytest

from repro import units
from repro.metrics import (
    allocation_series,
    delivered_per_period,
    miss_rate,
    qos_timeline,
    utilization,
)
from repro.sim.trace import (
    DeadlineRecord,
    GrantChangeRecord,
    RunSegment,
    SegmentKind,
    TraceRecorder,
)


@pytest.fixture
def trace():
    t = TraceRecorder()
    t.record_segment(RunSegment(1, 0, 60, SegmentKind.GRANTED, period_index=0))
    t.record_segment(RunSegment(2, 60, 80, SegmentKind.GRANTED, period_index=0))
    t.record_segment(RunSegment(1, 80, 100, SegmentKind.OVERTIME, period_index=0))
    t.record_deadline(
        DeadlineRecord(1, 0, 0, 100, granted=60, delivered=60, missed=False)
    )
    t.record_deadline(
        DeadlineRecord(2, 0, 0, 100, granted=40, delivered=20, missed=True)
    )
    t.record_deadline(
        DeadlineRecord(2, 1, 100, 200, granted=40, delivered=0, missed=False, voided=True)
    )
    return t


class TestUtilization:
    def test_shares_sum_to_one_over_busy_window(self, trace):
        u = utilization(trace, 0, 100)
        assert sum(u.values()) == pytest.approx(1.0)
        assert u[1] == pytest.approx(0.8)
        assert u[2] == pytest.approx(0.2)

    def test_window_clipping(self, trace):
        u = utilization(trace, 50, 70)
        assert u[1] == pytest.approx(0.5)
        assert u[2] == pytest.approx(0.5)

    def test_empty_window(self, trace):
        assert utilization(trace, 100, 100) == {}


class TestMissRate:
    def test_per_thread(self, trace):
        assert miss_rate(trace, 1) == 0.0
        assert miss_rate(trace, 2) == 1.0  # the voided period is excluded

    def test_global(self, trace):
        assert miss_rate(trace) == pytest.approx(0.5)

    def test_no_deadlines_is_zero(self):
        assert miss_rate(TraceRecorder()) == 0.0


class TestPerPeriod:
    def test_delivered_per_period_ordered(self, trace):
        outcomes = delivered_per_period(trace, 2)
        assert [o.period_index for o in outcomes] == [0, 1]
        assert outcomes[0].missed and not outcomes[0].voided
        assert outcomes[1].voided

    def test_allocation_series_counts_granted_only(self, trace):
        series = allocation_series(trace, 1)
        assert series == [(0, 60)]  # overtime excluded by default

    def test_allocation_series_with_overtime(self, trace):
        series = allocation_series(
            trace, 1, kinds=frozenset({SegmentKind.GRANTED, SegmentKind.OVERTIME})
        )
        assert series == [(0, 80)]


class TestQosTimeline:
    def test_timeline_from_grant_changes(self):
        t = TraceRecorder()
        t.record_grant_change(GrantChangeRecord(0, 1, 100, 50, entry_index=0))
        t.record_grant_change(GrantChangeRecord(500, 1, 100, 20, entry_index=2))
        t.record_grant_change(GrantChangeRecord(700, 2, 100, 10, entry_index=1))
        timeline = qos_timeline(t, 1)
        assert timeline == [(0, 0, 0.5), (500, 2, 0.2)]
