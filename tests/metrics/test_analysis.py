"""Switch-cost analysis (section 6.1 metrics)."""

import pytest

from repro import units
from repro.metrics import SwitchStats, overhead_fraction, preemptions_per_thread, summarize_switches
from repro.metrics.analysis import switches_per_second
from repro.sim.trace import ContextSwitchRecord, SwitchKind, TraceRecorder


def switch(time, kind, cost_us, frm=1, to=2):
    return ContextSwitchRecord(
        time=time,
        from_thread=frm,
        to_thread=to,
        kind=kind,
        cost_ticks=units.us_to_ticks(cost_us),
    )


@pytest.fixture
def trace():
    t = TraceRecorder()
    t.record_switch(switch(100, SwitchKind.VOLUNTARY, 12.0))
    t.record_switch(switch(200, SwitchKind.VOLUNTARY, 20.0))
    t.record_switch(switch(300, SwitchKind.INVOLUNTARY, 30.0, frm=2, to=1))
    return t


class TestSummaries:
    def test_summarize_voluntary(self, trace):
        stats = summarize_switches(trace, SwitchKind.VOLUNTARY)
        assert stats.count == 2
        assert stats.min_us == pytest.approx(12.0, abs=0.1)
        assert stats.mean_us == pytest.approx(16.0, abs=0.1)
        assert stats.median_us == pytest.approx(16.0, abs=0.1)

    def test_empty_summary(self):
        stats = summarize_switches(TraceRecorder(), SwitchKind.VOLUNTARY)
        assert stats == SwitchStats.empty(SwitchKind.VOLUNTARY)


class TestOverhead:
    def test_overhead_fraction(self, trace):
        # 62 us of cost across a 27,000-tick (1 ms) window.
        frac = overhead_fraction(trace, 0, units.ms_to_ticks(1))
        assert frac == pytest.approx(62 / 1000, rel=0.01)

    def test_zero_window(self):
        assert overhead_fraction(TraceRecorder(), 0, 0) == 0.0


class TestCounting:
    def test_preemptions_per_thread(self, trace):
        assert preemptions_per_thread(trace) == {2: 1}

    def test_switches_per_second(self, trace):
        rate = switches_per_second(trace, 0, units.sec_to_ticks(1))
        assert rate == pytest.approx(3.0)

    def test_switches_per_second_empty(self):
        assert switches_per_second(TraceRecorder()) == 0.0
