"""Trace validator: catches exactly the broken invariants."""

import pytest

from repro import units
from repro.metrics import validate_trace
from repro.sim.trace import DeadlineRecord, RunSegment, SegmentKind, TraceRecorder


def seg(tid, start, end, kind=SegmentKind.GRANTED, period=0, charged=None):
    return RunSegment(
        thread_id=tid,
        start=start,
        end=end,
        kind=kind,
        period_index=period,
        charged_to=charged,
    )


def deadline(tid, idx, start, end, granted, delivered, missed=False, voided=False):
    return DeadlineRecord(
        thread_id=tid,
        period_index=idx,
        period_start=start,
        deadline=end,
        granted=granted,
        delivered=delivered,
        missed=missed,
        voided=voided,
    )


class TestCleanTrace:
    def test_real_run_validates(self, ideal_rd):
        from tests.conftest import admit_simple

        admit_simple(ideal_rd, "a", period_ms=10, rate=0.4)
        admit_simple(ideal_rd, "b", period_ms=20, rate=0.3, greedy=True)
        ideal_rd.run_for(units.ms_to_ticks(100))
        report = validate_trace(ideal_rd.trace, end_time=ideal_rd.now)
        assert report.ok, report.summary()
        assert report.checked_segments > 0
        assert report.checked_deadlines > 0

    def test_empty_trace_is_clean_except_conservation(self):
        report = validate_trace(TraceRecorder())
        assert report.ok


class TestViolationDetection:
    def test_cpu_overlap_detected(self):
        trace = TraceRecorder()
        trace.segments.append(seg(1, 0, 100))
        trace.segments.append(seg(2, 50, 150))
        report = validate_trace(trace)
        assert any(v.rule == "cpu-overlap" for v in report.violations)

    def test_over_delivery_detected(self):
        trace = TraceRecorder()
        trace.record_deadline(deadline(1, 0, 0, 100, granted=50, delivered=60))
        report = validate_trace(trace)
        assert any(v.rule == "over-delivery" for v in report.violations)

    def test_phantom_miss_detected(self):
        trace = TraceRecorder()
        trace.record_deadline(
            deadline(1, 0, 0, 100, granted=50, delivered=50, missed=True)
        )
        report = validate_trace(trace)
        assert any(v.rule == "phantom-miss" for v in report.violations)

    def test_miss_and_void_conflict_detected(self):
        trace = TraceRecorder()
        trace.record_deadline(
            deadline(1, 0, 0, 100, granted=50, delivered=0, missed=True, voided=True)
        )
        report = validate_trace(trace)
        assert any(v.rule == "miss-and-void" for v in report.violations)

    def test_grant_overrun_detected(self):
        trace = TraceRecorder()
        trace.segments.append(seg(1, 0, 80, period=0))
        trace.record_deadline(deadline(1, 0, 0, 100, granted=50, delivered=50))
        report = validate_trace(trace)
        assert any(v.rule == "grant-overrun" for v in report.violations)

    def test_period_index_gap_detected(self):
        trace = TraceRecorder()
        trace.record_deadline(deadline(1, 0, 0, 100, 50, 50))
        trace.record_deadline(deadline(1, 2, 200, 300, 50, 50))
        report = validate_trace(trace)
        assert any(v.rule == "period-index-gap" for v in report.violations)

    def test_period_pulled_in_detected(self):
        trace = TraceRecorder()
        trace.record_deadline(deadline(1, 0, 0, 100, 50, 50))
        trace.record_deadline(deadline(1, 1, 90, 190, 50, 50))
        report = validate_trace(trace)
        assert any(v.rule == "period-pulled-in" for v in report.violations)

    def test_conservation_gap_detected(self):
        trace = TraceRecorder()
        trace.segments.append(seg(1, 0, 40))
        report = validate_trace(trace, end_time=100)
        assert any(v.rule == "conservation" for v in report.violations)

    def test_assigned_without_charge_detected(self):
        trace = TraceRecorder()
        trace.segments.append(seg(3, 0, 10, kind=SegmentKind.ASSIGNED))
        report = validate_trace(trace)
        assert any(v.rule == "assigned-charge" for v in report.violations)


class TestReport:
    def test_summary_mentions_status(self):
        trace = TraceRecorder()
        trace.segments.append(seg(1, 0, 40))
        ok = validate_trace(trace)
        assert "OK" in ok.summary()
        bad = validate_trace(trace, end_time=100)
        assert "violation" in bad.summary()
        assert "conservation" in bad.summary()
