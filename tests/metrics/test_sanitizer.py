"""Runtime invariant sanitizer: catches seeded violations, stays quiet
on correct runs."""

import pytest

from repro import MachineConfig, SanitizerViolation, SimConfig, units
from repro.core.distributor import ResourceDistributor
from repro.core.grant_control import GrantSetResult
from repro.core.grants import Grant, GrantSet
from repro.core.resource_list import ResourceListEntry
from repro.core.threads import ThreadState
from repro.sim.trace import DeadlineRecord
from repro.workloads import grant_follower

from tests.conftest import admit_simple


def ms(x):
    return units.ms_to_ticks(x)


def over_capacity_result(tid: int) -> GrantSetResult:
    """A grant set claiming 99% of the CPU — legal against a capacity of
    1.0 (so GrantSet's own constructor accepts it) but violating the
    default machine's 96% schedulable capacity."""
    period = ms(10)
    entry = ResourceListEntry(period, round(period * 0.99), grant_follower)
    grant = Grant(thread_id=tid, entry=entry, entry_index=0)
    return GrantSetResult(
        grant_set=GrantSet({tid: grant}, capacity=1.0),
        policy=None,
        passes=0,
    )


class TestGrantConservation:
    def test_detects_seeded_over_capacity_grant_set(self):
        """Acceptance: sanitize=True catches a grant set that commits
        more than the schedulable capacity (capacity minus reserve)."""
        rd = ResourceDistributor(sim=SimConfig(seed=1), sanitize=True)
        rd.resource_manager.grant_control.compute = (
            lambda requests: over_capacity_result(1)
        )
        with pytest.raises(SanitizerViolation, match="grant-conservation"):
            admit_simple(rd, "victim", period_ms=10, rate=0.2)

    def test_violation_carries_a_trace_excerpt(self):
        rd = ResourceDistributor(sim=SimConfig(seed=1), sanitize=True)
        admit_simple(rd, "warmup", period_ms=10, rate=0.2)
        rd.run_for(ms(30))
        rd.resource_manager.grant_control.compute = (
            lambda requests: over_capacity_result(1)
        )
        with pytest.raises(SanitizerViolation) as exc:
            admit_simple(rd, "victim", period_ms=10, rate=0.2)
        assert "trace excerpt" in str(exc.value)

    def test_clean_grant_sets_pass(self, ideal_rd):
        ideal_rd.kernel.sanitizer = _sanitizer_for(ideal_rd)
        admit_simple(ideal_rd, "a", period_ms=10, rate=0.4)
        admit_simple(ideal_rd, "b", period_ms=20, rate=0.4)
        assert ideal_rd.kernel.sanitizer.ok
        assert ideal_rd.kernel.sanitizer.grant_sets_checked == 2


def _sanitizer_for(rd, strict=True):
    from repro.metrics.sanitizer import InvariantSanitizer

    return InvariantSanitizer(rd.kernel, rd.resource_manager, strict=strict)


class TestEdfOrdering:
    def test_detects_wrong_pick(self):
        """Sabotage the scheduler to run the later-deadline thread."""
        rd = ResourceDistributor(
            machine=MachineConfig.ideal(), sim=SimConfig(seed=1), sanitize=True
        )
        admit_simple(rd, "short", period_ms=10, rate=0.3)
        admit_simple(rd, "long", period_ms=40, rate=0.3)
        real_pick = rd.scheduler.pick

        def anti_edf_pick(now):
            real_pick(now)  # run activations as the real policy would
            remaining = rd.scheduler.time_remaining_queue(now)
            if len(remaining) > 1:
                return remaining[-1]
            return real_pick(now)

        rd.scheduler.pick = anti_edf_pick
        rd.kernel.policy = rd.scheduler
        with pytest.raises(SanitizerViolation, match="edf-order"):
            rd.run_for(ms(50))

    def test_correct_edf_run_is_silent(self):
        rd = ResourceDistributor(
            machine=MachineConfig.ideal(), sim=SimConfig(seed=2), sanitize=True
        )
        admit_simple(rd, "a", period_ms=10, rate=0.4)
        admit_simple(rd, "b", period_ms=25, rate=0.4, greedy=True)
        rd.run_for(ms(200))
        assert rd.sanitizer.ok
        assert rd.sanitizer.decisions_checked > 0


class TestNeverTerminated:
    def test_detects_admitted_thread_terminated(self):
        rd = ResourceDistributor(sim=SimConfig(seed=1), sanitize=True)
        thread = admit_simple(rd, "victim", period_ms=10, rate=0.3)
        rd.run_for(ms(20))
        # Kill the thread behind the Resource Manager's back.
        thread.state = ThreadState.EXITED
        with pytest.raises(SanitizerViolation, match="never-terminated"):
            rd.run_for(ms(20))

    def test_clean_exit_through_rm_is_fine(self):
        rd = ResourceDistributor(sim=SimConfig(seed=1), sanitize=True)
        thread = admit_simple(rd, "leaver", period_ms=10, rate=0.3)
        rd.run_for(ms(20))
        rd.exit_thread(thread.tid)
        rd.run_for(ms(30))
        assert rd.sanitizer.ok


class TestGrantDelivery:
    def test_detects_missed_period(self):
        rd = ResourceDistributor(sim=SimConfig(seed=1), sanitize=True)
        thread = admit_simple(rd, "t", period_ms=10, rate=0.3)
        record = DeadlineRecord(
            thread_id=thread.tid,
            period_index=0,
            period_start=0,
            deadline=ms(10),
            granted=ms(3),
            delivered=ms(1),
            missed=True,
            voided=False,
        )
        with pytest.raises(SanitizerViolation, match="grant-delivery"):
            rd.sanitizer.on_period_close(thread, record)

    def test_detects_over_delivery(self):
        rd = ResourceDistributor(sim=SimConfig(seed=1), sanitize=True)
        thread = admit_simple(rd, "t", period_ms=10, rate=0.3)
        record = DeadlineRecord(
            thread_id=thread.tid,
            period_index=0,
            period_start=0,
            deadline=ms(10),
            granted=ms(3),
            delivered=ms(4),
            missed=False,
            voided=False,
        )
        with pytest.raises(SanitizerViolation, match="grant-delivery"):
            rd.sanitizer.on_period_close(thread, record)

    def test_every_period_checked_on_a_real_run(self):
        rd = ResourceDistributor(sim=SimConfig(seed=3), sanitize=True)
        admit_simple(rd, "a", period_ms=10, rate=0.4)
        rd.run_for(ms(100))
        assert rd.sanitizer.periods_checked == len(rd.trace.deadlines)
        assert rd.sanitizer.ok


class TestNonStrictMode:
    def test_collects_instead_of_raising(self):
        rd = ResourceDistributor(
            sim=SimConfig(seed=1), sanitize=True, sanitize_strict=False
        )
        rd.resource_manager.grant_control.compute = (
            lambda requests: over_capacity_result(1)
        )
        admit_simple(rd, "victim", period_ms=10, rate=0.2)  # does not raise
        assert not rd.sanitizer.ok
        assert any(
            v.rule == "grant-conservation" for v in rd.sanitizer.report.violations
        )
        assert "grant-conservation" in rd.sanitizer.summary()

    def test_summary_counts_checks(self):
        rd = ResourceDistributor(
            sim=SimConfig(seed=4), sanitize=True, sanitize_strict=False
        )
        admit_simple(rd, "a", period_ms=10, rate=0.5)
        rd.run_for(ms(50))
        head = rd.sanitizer.summary().splitlines()[0]
        assert "OK" in head
        assert "decisions" in head


class TestWiring:
    def test_sanitize_false_installs_nothing(self, ideal_rd):
        assert ideal_rd.sanitizer is None
        assert ideal_rd.kernel.sanitizer is None

    def test_trickier_scenarios_stay_clean(self):
        """Quiescent wake + greedy noise: no false positives."""
        rd = ResourceDistributor(sim=SimConfig(seed=5), sanitize=True)
        sleeper = admit_simple(rd, "sleeper", period_ms=10, rate=0.3)
        admit_simple(rd, "noise", period_ms=7, rate=0.4, greedy=True)
        rd.run_for(ms(30))
        rd.enter_quiescent(sleeper.tid)
        rd.run_for(ms(30))
        rd.wake(sleeper.tid)
        rd.run_for(ms(30))
        assert rd.sanitizer.ok
