"""Test package."""
