"""Tests for the serving control plane (repro.serve)."""
