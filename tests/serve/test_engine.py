"""ServeEngine: admission, withdrawal, group commit, replay equality."""

import pytest

from repro.errors import SimulationError
from repro.serve.engine import ServeEngine


def engine(**kwargs):
    kwargs.setdefault("nodes", 2)
    kwargs.setdefault("seed", 7)
    kwargs.setdefault("policy", "first-fit")
    return ServeEngine(**kwargs)


def spec(name, rate=0.1, period_ms=10.0):
    return {"name": name, "rate": rate, "period_ms": period_ms}


class TestSubmit:
    def test_admitted_task_reports_node(self):
        eng = engine()
        result = eng.submit(spec("a"))
        assert result["status"] == "admitted"
        assert result["node"] == "node00"
        assert result["resolved_at"] == eng.sim.now

    def test_oversized_task_is_denied_with_reason(self):
        eng = engine()
        result = eng.submit(spec("whale", rate=0.99))
        assert result["status"] == "denied"
        assert result["error"]

    def test_bad_specs_are_rejected_without_touching_the_broker(self):
        eng = engine()
        for bad in (
            {},  # no name, no rate
            {"name": "x"},  # no rate
            {"name": "", "rate": 0.1},  # empty name
            {"name": "x", "rate": -1.0},  # nonpositive rate
            {"name": "x", "rate": 0.1, "period_ms": 0},  # nonpositive period
            {"name": "x", "rate": "much"},  # non-numeric
        ):
            assert eng.submit(bad)["status"] == "rejected"
        assert eng.stats()["submitted"] == 0
        assert eng.oplog == []

    def test_duplicate_name_rejected_while_placed(self):
        eng = engine()
        assert eng.submit(spec("a"))["status"] == "admitted"
        dup = eng.submit(spec("a"))
        assert dup["status"] == "rejected"
        assert "already placed" in dup["error"]

    def test_name_reusable_after_removal(self):
        eng = engine()
        eng.submit(spec("a"))
        assert eng.remove("a")["removed"]
        assert eng.submit(spec("a"))["status"] == "admitted"


class TestRemove:
    def test_remove_round_trip(self):
        eng = engine()
        eng.submit(spec("a"))
        result = eng.remove("a")
        assert result == {"task": "a", "status": "removed", "removed": True}
        assert eng.task("a")["status"] == "removed"
        assert eng.sim.broker.node_of("a") is None

    def test_remove_unknown_task(self):
        eng = engine()
        result = eng.remove("ghost")
        assert result == {"task": "ghost", "status": "absent", "removed": False}

    def test_remove_is_idempotent(self):
        eng = engine()
        eng.submit(spec("a"))
        assert eng.remove("a")["removed"]
        again = eng.remove("a")
        assert again["removed"] is False
        assert again["status"] == "removed"

    def test_remove_denied_task_does_not_withdraw(self):
        eng = engine()
        eng.submit(spec("whale", rate=0.99))
        result = eng.remove("whale")
        assert result["removed"] is False
        assert result["status"] == "denied"


class TestBatch:
    def test_batch_settles_together(self):
        eng = engine()
        result = eng.submit_batch([spec("a"), spec("b", rate=0.99), {"bogus": 1}])
        statuses = [t["status"] for t in result["tasks"]]
        assert statuses == ["admitted", "denied", "rejected"]
        assert len(eng.oplog) == 1
        assert eng.oplog[0]["op"] == "batch"


class TestCommit:
    def test_single_op_commit_behaves_like_apply(self):
        eng = engine()
        [result] = eng.commit([{"op": "submit", "spec": spec("a")}])
        assert result["status"] == "admitted"
        assert eng.oplog[0]["op"] == "submit"  # no commit wrapper for one op

    def test_group_commit_returns_per_op_results_in_order(self):
        eng = engine()
        eng.submit(spec("old"))
        results = eng.commit(
            [
                {"op": "submit", "spec": spec("a")},
                {"op": "remove", "task": "old"},
                {"op": "submit", "spec": spec("whale", rate=0.99)},
                {"op": "remove", "task": "ghost"},
                {"op": "submit", "spec": {"name": "", "rate": 0.1}},
                {"op": "batch", "specs": [spec("b"), spec("c")]},
            ]
        )
        assert results[0]["status"] == "admitted"
        assert results[1] == {"task": "old", "status": "removed", "removed": True}
        assert results[2]["status"] == "denied"
        assert results[3] == {"task": "ghost", "status": "absent", "removed": False}
        assert results[4]["status"] == "rejected"
        assert [t["status"] for t in results[5]["tasks"]] == ["admitted", "admitted"]

    def test_group_commit_is_one_oplog_entry(self):
        eng = engine()
        eng.commit(
            [
                {"op": "submit", "spec": spec("a")},
                {"op": "submit", "spec": spec("b")},
            ]
        )
        assert len(eng.oplog) == 1
        assert eng.oplog[0]["op"] == "commit"
        assert [op["op"] for op in eng.oplog[0]["ops"]] == ["submit", "submit"]

    def test_rejected_ops_do_not_enter_the_commit_record(self):
        eng = engine()
        eng.commit(
            [
                {"op": "submit", "spec": {"name": "", "rate": 0.1}},
                {"op": "remove", "task": "ghost"},
                {"op": "submit", "spec": spec("a")},
            ]
        )
        # Only the one op that actually fired an RPC is replayable; a
        # lone survivor is recorded bare, not wrapped in a commit.
        assert len(eng.oplog) == 1
        assert eng.oplog[0] == {"op": "submit", "spec": spec("a")}

    def test_duplicate_submit_within_one_commit_rejected(self):
        eng = engine()
        results = eng.commit(
            [
                {"op": "submit", "spec": spec("a")},
                {"op": "submit", "spec": spec("a", rate=0.2)},
            ]
        )
        assert results[0]["status"] == "admitted"
        assert results[1]["status"] == "rejected"

    def test_unknown_op_kind_rejected(self):
        eng = engine()
        [a, b] = eng.commit(
            [{"op": "warp"}, {"op": "submit", "spec": spec("a")}]
        )
        assert a["status"] == "rejected"
        assert b["status"] == "admitted"
        with pytest.raises(SimulationError):
            eng.apply({"op": "warp"})


class TestDrain:
    def test_drain_withdraws_everything(self):
        eng = engine()
        for i in range(3):
            eng.submit(spec(f"t{i}"))
        result = eng.drain()
        assert result["status"] == "drained"
        assert result["withdrawn"] == 3
        assert eng.sim.broker.placements == {}
        assert all(eng.task(f"t{i}")["status"] == "removed" for i in range(3))
        assert eng.draining


class TestViews:
    def test_nodes_view_counts_placements(self):
        eng = engine()
        eng.submit(spec("a"))
        view = eng.nodes()
        assert [n["name"] for n in view] == ["node00", "node01"]
        assert view[0]["tasks"] == 1
        assert view[1]["tasks"] == 0
        assert all(
            set(n) == {"name", "capacity", "headroom", "weight", "tasks"}
            for n in view
        )

    def test_nodes_view_memoized_per_generation(self):
        eng = engine()
        eng.submit(spec("a"))
        first = eng.nodes()
        assert eng.nodes() is first  # no mutation: cached object
        eng.submit(spec("b"))
        assert eng.nodes() is not first

    def test_stats_counts(self):
        eng = engine()
        eng.submit(spec("a"))
        eng.submit(spec("whale", rate=0.99))
        eng.remove("a")
        stats = eng.stats()
        assert stats["submitted"] == 2
        assert stats["admitted"] == 1
        assert stats["denied"] == 1
        assert stats["withdrawals"] == 1
        assert stats["placements"] == 0
        assert stats["operations"] == len(eng.oplog) == 3

    def test_slo_disabled_by_default(self):
        assert engine().slo_status() == {
            "enabled": False,
            "objectives": [],
            "alerts": [],
        }


class TestReplay:
    def test_state_digest_changes_with_state(self):
        eng = engine()
        before = eng.state_digest()
        eng.submit(spec("a"))
        after = eng.state_digest()
        assert before != after
        assert eng.state_digest() == after  # digest is a pure read

    def test_replay_reproduces_digest(self):
        live = engine()
        live.submit(spec("a"))
        live.commit(
            [
                {"op": "submit", "spec": spec("b")},
                {"op": "remove", "task": "a"},
                {"op": "submit", "spec": spec("whale", rate=0.99)},
            ]
        )
        live.submit_batch([spec("c"), spec("d", rate=0.99)])
        live.remove("b")
        twin = engine()
        twin.replay(live.oplog)
        assert twin.state_digest() == live.state_digest()
        assert twin.oplog == live.oplog
