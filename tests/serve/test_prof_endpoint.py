"""Profiling visibility at the serving boundary: the ``/debug/prof``
snapshot endpoint and the backpressure gauges/histograms on
``/metrics``."""

import asyncio

from repro.obs.prof import ProfSession
from repro.serve.app import ServeApp
from repro.serve.engine import ServeEngine

from tests.serve.test_http import call, spec


def run_with_app(scenario, prof=None, **engine_kwargs):
    async def main():
        engine = ServeEngine(
            nodes=2, seed=7, policy="first-fit", prof=prof, **engine_kwargs
        )
        app = ServeApp(engine, port=0)
        await app.start()
        try:
            return await scenario(app)
        finally:
            await app.stop()

    return asyncio.run(main())


class TestDebugProfEndpoint:
    def test_404_when_profiling_is_off(self):
        async def scenario(app):
            status, body = await call(app, "GET", "/debug/prof")
            assert status == 404
            assert "--profile" in body["error"]

        run_with_app(scenario)

    def test_live_snapshot_when_profiling_is_on(self):
        prof = ProfSession(sampling=False, name="test")

        async def scenario(app):
            await call(app, "POST", "/v1/tasks", spec("a"))
            status, body = await call(app, "GET", "/debug/prof")
            assert status == 200
            assert body["open_frames"] == 0
            phases = body["phases"]
            # The commit path and the HTTP parser both showed up.
            assert phases["serve.commit"]["calls"] >= 1
            assert phases["serve.http-parse"]["calls"] >= 1
            assert all(
                set(row) == {"calls", "self_ns", "cum_ns"}
                for row in phases.values()
            )

        run_with_app(scenario, prof=prof)

    def test_engine_phases_reach_the_cluster_hooks(self):
        prof = ProfSession(sampling=False, name="test")

        async def scenario(app):
            await call(app, "POST", "/v1/tasks", spec("a"))
            _, body = await call(app, "GET", "/debug/prof")
            assert "cluster.settle" in body["phases"]
            assert "kernel.dispatch" in body["phases"]

        run_with_app(scenario, prof=prof)


class TestBackpressureMetrics:
    def test_queue_depth_and_batch_size_on_metrics(self):
        async def scenario(app):
            await asyncio.gather(
                *(call(app, "POST", "/v1/tasks", spec(f"t{i}")) for i in range(6))
            )
            status, text = await call(app, "GET", "/metrics")
            assert status == 200
            assert "repro_http_op_queue_depth" in text
            assert "repro_http_commit_batch_size_bucket" in text
            assert "repro_http_commit_batch_size_count" in text

        run_with_app(scenario)

    def test_batch_size_histogram_counts_every_commit_group(self):
        async def scenario(app):
            for i in range(3):
                await call(app, "POST", "/v1/tasks", spec(f"t{i}"))
            # Each sequential mutation drains as its own commit group.
            assert app.m_batch_size.count() == 3
            assert app.m_batch_size.sum() == 3
            assert app.m_queue_depth.value() == 0

        run_with_app(scenario)
