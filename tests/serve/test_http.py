"""ServeApp over a real socket: routes, statuses, backpressure, drain."""

import asyncio
import json

from repro.serve.app import ServeApp
from repro.serve.engine import ServeEngine
from repro.serve.http import Request, Response
from repro.serve.loadgen import PlannedRequest, _Connection


def run_with_app(scenario, **app_kwargs):
    """Boot a ServeApp on an ephemeral port, run ``scenario(app)``, stop."""

    async def main():
        engine = ServeEngine(nodes=2, seed=7, policy="first-fit")
        app = ServeApp(engine, port=0, **app_kwargs)
        await app.start()
        try:
            return await scenario(app)
        finally:
            await app.stop()

    return asyncio.run(main())


async def call(app, method, path, body=None):
    """One request over a fresh keep-alive connection; parsed JSON body."""
    conn = _Connection("127.0.0.1", app.server.port)
    payload = b"" if body is None else json.dumps(body).encode()
    try:
        status, data = await conn.request(
            PlannedRequest(at_s=0.0, method=method, path=path, body=payload)
        )
    finally:
        conn.close()
    text = data.decode()
    parsed = json.loads(text) if text.lstrip().startswith(("{", "[")) else text
    return status, parsed


def spec(name, rate=0.1):
    return {"name": name, "rate": rate, "period_ms": 10.0}


class TestRoutes:
    def test_health_and_readiness(self):
        async def scenario(app):
            assert await call(app, "GET", "/healthz") == (200, "ok\n")
            assert await call(app, "GET", "/readyz") == (200, "ready\n")

        run_with_app(scenario)

    def test_task_lifecycle_over_http(self):
        async def scenario(app):
            status, body = await call(app, "POST", "/v1/tasks", spec("a"))
            assert (status, body["status"], body["node"]) == (201, "admitted", "node00")

            status, body = await call(app, "GET", "/v1/tasks/a")
            assert status == 200 and body["status"] == "admitted"

            status, body = await call(app, "GET", "/v1/tasks")
            assert status == 200 and body["tasks"] == ["a"]

            status, body = await call(app, "DELETE", "/v1/tasks/a")
            assert status == 200 and body["removed"]

            # Deleting again is idempotent: 200, removed=False.
            status, body = await call(app, "DELETE", "/v1/tasks/a")
            assert status == 200 and not body["removed"]

        run_with_app(scenario)

    def test_denied_and_rejected_status_codes(self):
        async def scenario(app):
            status, body = await call(app, "POST", "/v1/tasks", spec("w", rate=0.99))
            assert status == 200 and body["status"] == "denied"
            status, body = await call(app, "POST", "/v1/tasks", {"rate": 0.1})
            assert status == 400 and body["status"] == "rejected"
            status, body = await call(app, "POST", "/v1/tasks", "nonsense")
            assert status == 400 and "error" in body

        run_with_app(scenario)

    def test_batch_body(self):
        async def scenario(app):
            status, body = await call(
                app, "POST", "/v1/tasks", [spec("a"), spec("w", rate=0.99)]
            )
            assert status == 200
            assert [t["status"] for t in body["tasks"]] == ["admitted", "denied"]

        run_with_app(scenario)

    def test_unknown_task_and_route_and_method(self):
        async def scenario(app):
            assert (await call(app, "GET", "/v1/tasks/ghost"))[0] == 404
            assert (await call(app, "DELETE", "/v1/tasks/ghost"))[0] == 404
            assert (await call(app, "GET", "/v1/warp"))[0] == 404
            assert (await call(app, "PUT", "/v1/tasks"))[0] == 405

        run_with_app(scenario)

    def test_read_views(self):
        async def scenario(app):
            await call(app, "POST", "/v1/tasks", spec("a"))
            status, body = await call(app, "GET", "/v1/nodes")
            assert status == 200 and len(body["nodes"]) == 2
            status, body = await call(app, "GET", "/v1/stats")
            assert status == 200 and body["admitted"] == 1
            status, body = await call(app, "GET", "/v1/state")
            assert status == 200 and body["digest"] == app.engine.state_digest()
            status, body = await call(app, "GET", "/v1/slo")
            assert status == 200 and body["enabled"] is False

        run_with_app(scenario)

    def test_metrics_exposes_request_counters(self):
        async def scenario(app):
            await call(app, "POST", "/v1/tasks", spec("a"))
            status, text = await call(app, "GET", "/metrics")
            assert status == 200
            assert 'repro_http_requests_total{route="/v1/tasks"' in text
            assert "repro_http_request_latency_seconds_bucket" in text

        run_with_app(scenario)

    def test_events_stream_delivers_ndjson(self):
        async def scenario(app):
            port = app.server.port
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(
                b"GET /v1/events?limit=1&timeout_s=5 HTTP/1.1\r\n"
                b"Host: t\r\nContent-Length: 0\r\n\r\n"
            )
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            assert b"200" in head.split(b"\r\n", 1)[0]
            assert b"chunked" in head.lower()
            # Now cause an event; the subscribed stream must emit it.
            await call(app, "POST", "/v1/tasks", spec("a"))
            size_line = await asyncio.wait_for(reader.readline(), 5)
            size = int(size_line.strip(), 16)
            chunk = await reader.readexactly(size)
            event = json.loads(chunk)
            assert event["type"]
            writer.close()

        run_with_app(scenario)


class TestBackpressureAndDrain:
    def test_full_queue_answers_429(self):
        # No writer running: the queue cannot drain, so the second
        # mutation must be refused with Retry-After.
        async def main():
            engine = ServeEngine(nodes=2, seed=7)
            app = ServeApp(engine, port=0, queue_limit=1)
            app._ops.put_nowait(({"op": "remove", "task": "x"}, asyncio.Future()))
            response = await app._mutate({"op": "submit", "spec": spec("a")})
            assert response.status == 429
            assert response.headers["Retry-After"] == "1"
            assert app.m_backpressure.value() == 1

        asyncio.run(main())

    def test_drain_refuses_new_mutations(self):
        async def scenario(app):
            await call(app, "POST", "/v1/tasks", spec("a"))
            status, body = await call(app, "POST", "/admin/drain")
            assert status == 200 and body["status"] == "drained"
            assert body["withdrawn"] == 1
            assert (await call(app, "GET", "/readyz"))[0] == 503
            assert (await call(app, "POST", "/v1/tasks", spec("b")))[0] == 503
            # Reads still work while draining.
            assert (await call(app, "GET", "/v1/stats"))[0] == 200

        run_with_app(scenario)

    def test_handler_exception_becomes_counted_500(self):
        async def main():
            engine = ServeEngine(nodes=2, seed=7)
            app = ServeApp(engine, port=0)

            async def boom(request):
                raise RuntimeError("kaboom")

            app._route = boom
            response = await app._handle(
                Request(method="GET", path="/x", query={}, headers={})
            )
            assert isinstance(response, Response)
            assert response.status == 500

        asyncio.run(main())


class TestWriterBatching:
    def test_concurrent_mutations_group_commit(self):
        async def scenario(app):
            results = await asyncio.gather(
                *(call(app, "POST", "/v1/tasks", spec(f"t{i}")) for i in range(8))
            )
            assert all(status == 201 for status, _ in results)
            # The writer coalesced at least some ops: fewer oplog
            # entries than mutations, and at least one commit group.
            ops = app.engine.oplog
            assert len(ops) <= 8
            assert app.engine.stats()["admitted"] == 8

        run_with_app(scenario)
