"""Loadgen: seeded planning, digests, and a small end-to-end run."""

import asyncio

from repro.bench.runner import SCHEMA_VERSION
from repro.serve.app import ServeApp
from repro.serve.engine import ServeEngine
from repro.serve.loadgen import (
    WHALE_EVERY,
    WHALE_RATE,
    _percentile,
    plan_client,
    run_loadgen,
    schedule_digest,
)


class TestPlanning:
    def test_same_seed_same_plan(self):
        a = plan_client(3, seed=11, duration_s=2.0, rps=4.0)
        b = plan_client(3, seed=11, duration_s=2.0, rps=4.0)
        assert a == b

    def test_different_seed_different_schedule(self):
        a = plan_client(3, seed=11, duration_s=2.0, rps=4.0)
        b = plan_client(3, seed=12, duration_s=2.0, rps=4.0)
        assert schedule_digest([a]) != schedule_digest([b])

    def test_whale_clients_expect_denial(self):
        whale = plan_client(WHALE_EVERY, seed=1, duration_s=1.0, rps=4.0)
        normal = plan_client(WHALE_EVERY + 1, seed=1, duration_s=1.0, rps=4.0)
        assert whale[0].expect == "denied"
        assert str(WHALE_RATE) in whale[0].body.decode()
        assert normal[0].expect == "admitted"

    def test_cycle_shape(self):
        plan = plan_client(1, seed=1, duration_s=1.0, rps=4.0)
        assert [p.method for p in plan] == ["POST", "GET", "DELETE", "GET"]
        assert plan[1].path == plan[2].path  # get and remove hit the same task
        assert plan[3].path == "/v1/nodes"

    def test_schedule_digest_covers_bodies(self):
        plan = plan_client(0, seed=1, duration_s=1.0, rps=4.0)
        tweaked = [
            type(p)(at_s=p.at_s, method=p.method, path=p.path, body=p.body + b"x")
            if p.body
            else p
            for p in plan
        ]
        assert schedule_digest([plan]) != schedule_digest([tweaked])


class TestPercentile:
    def test_empty(self):
        assert _percentile([], 0.5) == 0.0

    def test_picks_order_statistics(self):
        values = [float(i) for i in range(10)]
        assert _percentile(values, 0.0) == 0.0
        assert _percentile(values, 0.5) == 5.0
        assert _percentile(values, 0.99) == 9.0


class TestEndToEnd:
    def test_small_run_against_live_app(self):
        async def main():
            engine = ServeEngine(nodes=2, seed=0, policy="aimd")
            app = ServeApp(engine, port=0)
            await app.start()
            try:
                return await run_loadgen(
                    host="127.0.0.1",
                    port=app.server.port,
                    clients=4,
                    duration_s=1.0,
                    seed=5,
                    rps_per_client=8.0,
                )
            finally:
                await app.stop()

        report = asyncio.run(main())
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["suites"] == ["serve-loadgen"]
        assert "serve.loadgen" in report["benches"]
        det = report["loadgen"]["deterministic"]
        measured = report["loadgen"]["measured"]
        assert measured["completed"] == det["planned_requests"] == 4 * 8
        assert measured["failures"] == 0
        assert measured["statuses"].get("5xx", 0) == 0
        # Client 0 is a whale: its submits are denied, its removes 404.
        assert det["outcomes"]["post:denied"] == 2
        assert det["outcomes"]["post:admitted"] == 6
        assert measured["statuses"]["4xx"] == 2  # the whale's two DELETEs

    def test_outcome_digest_reproducible_across_runs(self):
        async def once():
            engine = ServeEngine(nodes=2, seed=0, policy="aimd")
            app = ServeApp(engine, port=0)
            await app.start()
            try:
                return await run_loadgen(
                    host="127.0.0.1",
                    port=app.server.port,
                    clients=3,
                    duration_s=0.5,
                    seed=9,
                    rps_per_client=8.0,
                )
            finally:
                await app.stop()

        first = asyncio.run(once())
        second = asyncio.run(once())
        assert (
            first["loadgen"]["deterministic"]["schedule_digest"]
            == second["loadgen"]["deterministic"]["schedule_digest"]
        )
        assert (
            first["loadgen"]["deterministic"]["outcome_digest"]
            == second["loadgen"]["deterministic"]["outcome_digest"]
        )
