"""The serialization property (satellite of the serving control plane).

The service promises that any concurrent client interleaving of
mutations produces broker state *byte-identical* to a sequential
replay of the oplog the single writer recorded — the oplog IS the
serialization, group-commit boundaries included.  Two angles:

* a hypothesis property over the engine alone: arbitrary op sequences
  chopped into arbitrary commit groups replay to the same digest;
* a live-wire test: genuinely concurrent HTTP POST/DELETE clients
  racing into one app, whose captured oplog replays to the same
  digest on a fresh engine.
"""

import asyncio
import json
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.app import ServeApp
from repro.serve.engine import ServeEngine
from repro.serve.loadgen import PlannedRequest, _Connection

NAMES = ("alpha", "beta", "gamma", "delta")
#: Rates chosen so some mixes fit and some force denials (node
#: schedulable capacity is 0.96), making admission order-sensitive.
RATES = (0.1, 0.4, 0.7, 0.99)


def fresh_engine():
    return ServeEngine(nodes=2, seed=7, policy="first-fit")


ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("submit"),
            st.sampled_from(NAMES),
            st.sampled_from(RATES),
        ),
        st.tuples(st.just("remove"), st.sampled_from(NAMES)),
    ),
    min_size=1,
    max_size=24,
)


def to_op(step):
    if step[0] == "submit":
        _, name, rate = step
        return {"op": "submit", "spec": {"name": name, "rate": rate, "period_ms": 5.0}}
    return {"op": "remove", "task": step[1]}


class TestEngineCommitGrouping:
    @settings(max_examples=25, deadline=None)
    @given(ops=ops_strategy, data=st.data())
    def test_any_commit_grouping_replays_to_same_digest(self, ops, data):
        live = fresh_engine()
        queue = [to_op(step) for step in ops]
        while queue:
            size = data.draw(
                st.integers(min_value=1, max_value=len(queue)), label="batch"
            )
            live.commit(queue[:size])
            queue = queue[size:]
        twin = fresh_engine()
        twin.replay(live.oplog)
        assert twin.state_digest() == live.state_digest()

    @settings(max_examples=25, deadline=None)
    @given(ops=ops_strategy)
    def test_per_op_sequential_replay_matches(self, ops):
        live = fresh_engine()
        for step in ops:
            live.apply(to_op(step))
        twin = fresh_engine()
        twin.replay(live.oplog)
        assert twin.state_digest() == live.state_digest()
        assert twin.oplog == live.oplog


class TestLiveWireInterleaving:
    def test_concurrent_http_clients_equal_sequential_replay(self):
        """Racing POST/DELETE clients == sequential replay, byte for byte."""
        rng = random.Random(1234)
        client_scripts = []
        for c in range(8):
            script = []
            for i in range(12):
                name = f"c{c}-{rng.randrange(4)}"
                if rng.random() < 0.6:
                    script.append(
                        PlannedRequest(
                            at_s=0.0,
                            method="POST",
                            path="/v1/tasks",
                            body=json.dumps(
                                {
                                    "name": name,
                                    "rate": rng.choice(RATES),
                                    "period_ms": 5.0,
                                }
                            ).encode(),
                        )
                    )
                else:
                    script.append(
                        PlannedRequest(
                            at_s=0.0, method="DELETE", path=f"/v1/tasks/{name}"
                        )
                    )
            client_scripts.append(script)

        async def run_client(port, script):
            conn = _Connection("127.0.0.1", port)
            try:
                for planned in script:
                    status, _ = await conn.request(planned)
                    assert status < 500
                    await asyncio.sleep(0)  # maximize interleaving
            finally:
                conn.close()

        async def main():
            engine = fresh_engine()
            app = ServeApp(engine, port=0)
            await app.start()
            try:
                await asyncio.gather(
                    *(run_client(app.server.port, s) for s in client_scripts)
                )
                await app._ops.join()
                # Snapshot before stop(): shutdown drains the cluster,
                # which is deliberately not an oplog mutation.
                return list(engine.oplog), engine.state_digest()
            finally:
                await app.stop()

        oplog, live_digest = asyncio.run(main())
        assert oplog, "the run must have recorded mutations"
        twin = fresh_engine()
        twin.replay(oplog)
        assert twin.state_digest() == live_digest
